//! The full authorisation/cohesion decision matrix of §IV-D, including the
//! stacked Bell-LaPadula and Brewer-Nash automatic models and quorum
//! master signatures.

use selective_deletion::codec::DataRecord;
use selective_deletion::core::{BellLaPadula, BrewerNash, MasterKeySet, Role, RoleTable};
use selective_deletion::crypto::SigningKey;
use selective_deletion::prelude::*;

fn key(seed: u8) -> SigningKey {
    SigningKey::from_seed([seed; 32])
}

fn seal_one(ledger: &mut SelectiveLedger, t: u64) -> BlockNumber {
    ledger.seal_block(Timestamp(t)).expect("monotone time")
}

#[test]
fn owner_yes_stranger_no_admin_yes_auditor_no() {
    let owner = key(1);
    let stranger = key(2);
    let admin = key(3);
    let auditor = key(4);
    let roles = RoleTable::new()
        .with(admin.verifying_key(), Role::Admin)
        .with(auditor.verifying_key(), Role::Auditor);
    let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
        .roles(roles)
        .build();

    for i in 0..4u64 {
        ledger
            .submit_entry(Entry::sign_data(&owner, DataRecord::new("d").with("n", i)))
            .unwrap();
    }
    let block = seal_one(&mut ledger, 10);
    let id = |e: u32| EntryId::new(block, EntryNumber(e));

    // Owner: allowed.
    ledger.request_deletion(&owner, id(0), "").unwrap();
    // Stranger: refused.
    assert!(matches!(
        ledger.request_deletion(&stranger, id(1), ""),
        Err(CoreError::NotAuthorized(_))
    ));
    // Admin: allowed on foreign data.
    ledger.request_deletion(&admin, id(1), "").unwrap();
    // Auditor: refused even on... everything.
    assert!(matches!(
        ledger.request_deletion(&auditor, id(2), ""),
        Err(CoreError::NotAuthorized(_))
    ));
}

#[test]
fn master_signature_overrides_ownership() {
    let owner = key(1);
    let requester = key(2);
    let q: Vec<SigningKey> = (10..13).map(key).collect();
    let master = MasterKeySet::new(q.iter().map(|k| k.verifying_key()).collect(), 2);
    let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
        .master_keys(master)
        .build();

    ledger
        .submit_entry(Entry::sign_data(
            &owner,
            DataRecord::new("d").with("n", 1u64),
        ))
        .unwrap();
    let block = seal_one(&mut ledger, 10);
    let target = EntryId::new(block, EntryNumber(0));

    // Without co-signatures the threshold is unmet.
    assert!(matches!(
        ledger.request_deletion(&requester, target, "takedown"),
        Err(CoreError::NotAuthorized(_))
    ));

    // With 2-of-3 quorum co-signatures it is granted.
    let mut request = DeleteRequest::new(target, "takedown");
    let message = request.cosign_message();
    request = request
        .with_cosignature(q[0].verifying_key(), q[0].sign(&message))
        .with_cosignature(q[2].verifying_key(), q[2].sign(&message));
    ledger.request_deletion_with(&requester, request).unwrap();
}

#[test]
fn bell_lapadula_blocks_low_clearance() {
    let officer = key(1); // clearance 3
    let clerk = key(2); // clearance 1
    let blp = BellLaPadula::new()
        .with_clearance(officer.verifying_key(), 3)
        .with_clearance(clerk.verifying_key(), 1);
    // Both users share data ownership via admin role to isolate the BLP
    // effect (otherwise ownership would already refuse the clerk).
    let roles = RoleTable::new()
        .with(officer.verifying_key(), Role::Admin)
        .with(clerk.verifying_key(), Role::Admin);
    let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
        .roles(roles)
        .cohesion_policy(blp)
        .build();

    // A classified record (level 2).
    ledger
        .submit_entry(Entry::sign_data(
            &officer,
            DataRecord::new("intel")
                .with("classification", 2u64)
                .with("text", "secret"),
        ))
        .unwrap();
    let block = seal_one(&mut ledger, 10);
    let target = EntryId::new(block, EntryNumber(0));

    assert!(matches!(
        ledger.request_deletion(&clerk, target, ""),
        Err(CoreError::Cohesion(_))
    ));
    ledger.request_deletion(&officer, target, "").unwrap();
}

#[test]
fn brewer_nash_blocks_conflicting_class() {
    let consultant = key(1);
    let bank_a_clerk = key(2);
    let wall = BrewerNash::new().with_class("banks", ["bank-a", "bank-b"]);
    let roles = RoleTable::new().with(consultant.verifying_key(), Role::Admin);
    let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
        .roles(roles)
        .cohesion_policy(wall)
        .build();

    // The consultant has produced entries for bank-b; bank-a's data comes
    // from its own clerk.
    ledger
        .submit_entry(Entry::sign_data(
            &consultant,
            DataRecord::new("bank-b").with("doc", 1u64),
        ))
        .unwrap();
    ledger
        .submit_entry(Entry::sign_data(
            &bank_a_clerk,
            DataRecord::new("bank-a").with("doc", 2u64),
        ))
        .unwrap();
    let block = seal_one(&mut ledger, 10);

    // The consultant (admin) deleting bank-a data while having bank-b
    // history breaches the Chinese wall.
    let bank_a = EntryId::new(block, EntryNumber(1));
    assert!(matches!(
        ledger.request_deletion(&consultant, bank_a, ""),
        Err(CoreError::Cohesion(_))
    ));
    // Deleting inside the consultant's own class side is fine.
    let bank_b = EntryId::new(block, EntryNumber(0));
    ledger.request_deletion(&consultant, bank_b, "").unwrap();
}

#[test]
fn dependency_chain_requires_all_dependents() {
    let a = key(1);
    let b = key(2);
    let c = key(3);
    let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());

    ledger
        .submit_entry(Entry::sign_data(&a, DataRecord::new("d").with("n", 0u64)))
        .unwrap();
    let b0 = seal_one(&mut ledger, 10);
    let root = EntryId::new(b0, EntryNumber(0));

    // Two dependents by different parties.
    ledger
        .submit_entry(Entry::sign_data_with(
            &b,
            DataRecord::new("d").with("n", 1u64),
            None,
            vec![root],
        ))
        .unwrap();
    ledger
        .submit_entry(Entry::sign_data_with(
            &c,
            DataRecord::new("d").with("n", 2u64),
            None,
            vec![root],
        ))
        .unwrap();
    seal_one(&mut ledger, 20);

    // One co-signature is not enough.
    let mut partial = DeleteRequest::new(root, "");
    let msg = partial.cosign_message();
    partial = partial.with_cosignature(b.verifying_key(), b.sign(&msg));
    assert!(matches!(
        ledger.request_deletion_with(&a, partial),
        Err(CoreError::Cohesion(_))
    ));

    // Both dependents approving unlocks the deletion.
    let mut full = DeleteRequest::new(root, "");
    let msg = full.cosign_message();
    full = full
        .with_cosignature(b.verifying_key(), b.sign(&msg))
        .with_cosignature(c.verifying_key(), c.sign(&msg));
    ledger.request_deletion_with(&a, full).unwrap();
}

#[test]
fn deleting_dependent_first_unlocks_root() {
    let a = key(1);
    let b = key(2);
    let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());

    ledger
        .submit_entry(Entry::sign_data(&a, DataRecord::new("d").with("n", 0u64)))
        .unwrap();
    let b0 = seal_one(&mut ledger, 10);
    let root = EntryId::new(b0, EntryNumber(0));
    ledger
        .submit_entry(Entry::sign_data_with(
            &b,
            DataRecord::new("d").with("n", 1u64),
            None,
            vec![root],
        ))
        .unwrap();
    let b2 = seal_one(&mut ledger, 20);
    let dependent = EntryId::new(b2, EntryNumber(0));

    // Root blocked by the dependent.
    assert!(ledger.request_deletion(&a, root, "").is_err());
    // B deletes their own dependent; after it is *physically* gone the
    // root becomes deletable (marks alone already unblock new attempts
    // once the dependent is dropped from the live chain).
    ledger.request_deletion(&b, dependent, "").unwrap();
    seal_one(&mut ledger, 30);
    for i in 4..=14u64 {
        seal_one(&mut ledger, i * 10);
        if ledger.record(dependent).is_none() {
            break;
        }
    }
    assert!(
        ledger.record(dependent).is_none(),
        "dependent never dropped"
    );
    ledger.request_deletion(&a, root, "").unwrap();
}

#[test]
fn wrong_requests_have_no_effect_on_chain_state() {
    // §V: "wrong request of deletions can be included in the blockchain,
    // but these have no further effects."
    let owner = key(1);
    let stranger = key(2);
    let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
    ledger
        .submit_entry(Entry::sign_data(
            &owner,
            DataRecord::new("d").with("n", 1u64),
        ))
        .unwrap();
    let block = seal_one(&mut ledger, 10);
    let target = EntryId::new(block, EntryNumber(0));

    // Raw (unvalidated) submission of a bogus delete entry.
    ledger
        .submit_entry(Entry::sign_delete(
            &stranger,
            DeleteRequest::new(target, ""),
        ))
        .unwrap();
    seal_one(&mut ledger, 20);

    // Included but ineffective: target stays live through merges.
    for i in 3..=14u64 {
        seal_one(&mut ledger, i * 10);
    }
    assert!(ledger.is_live(target));
    assert!(ledger.record(target).is_some());
    assert!(ledger.deletion_status(target).is_none());
}

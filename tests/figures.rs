//! Golden tests for the paper's figures (DESIGN.md rows F1–F8).
//!
//! Each test checks the *behavioural* content of a figure: block numbering
//! and timestamps (F1), sequence partitioning (F2), the round-robin merge
//! (F3), the summary record layout (F4), selective non-copying (F5), and
//! the three console outputs (F6–F8).

use selective_deletion::prelude::*;
use selective_deletion::sim::LoginAudit;

#[test]
fn f1_summary_block_insertion() {
    let mut sim = LoginAudit::paper_setup();
    sim.login("ALPHA", 1).unwrap();
    sim.seal().unwrap();
    let chain = sim.ledger().chain();
    let block1 = chain.get(BlockNumber(1)).unwrap();
    let sigma2 = chain.get(BlockNumber(2)).unwrap();
    // "the block number αΣ of the summary block is increased by one as
    // normal blocks. The summary block has the same timestamp τ as the
    // block before."
    assert_eq!(sigma2.number(), block1.number().next());
    assert_eq!(sigma2.timestamp(), block1.timestamp());
    assert_eq!(sigma2.kind(), BlockKind::Summary);
    assert_eq!(sigma2.header().prev_hash, block1.hash());
}

#[test]
fn f2_sequences_partition_the_chain() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    let spans = selective_deletion::core::live_sequences(sim.ledger().chain());
    assert_eq!(spans.len(), 2);
    for span in &spans {
        assert!(span.closed);
        assert_eq!(span.len(), 3, "l = 3 sequences");
    }
    assert_eq!(spans[0].start, BlockNumber(0));
    assert_eq!(spans[0].end, BlockNumber(2));
    assert_eq!(spans[1].start, BlockNumber(3));
    assert_eq!(spans[1].end, BlockNumber(5));
}

#[test]
fn f3_round_robin_merge_and_marker_shift() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    assert_eq!(sim.ledger().chain().marker(), BlockNumber(0));
    sim.run_fig7().unwrap();
    let chain = sim.ledger().chain();
    assert_eq!(chain.marker(), BlockNumber(6));
    // Old blocks physically gone.
    for n in 0..6u64 {
        assert!(chain.get(BlockNumber(n)).is_none(), "block {n} still live");
    }
    // Their content lives in Σ8.
    let sigma8 = chain.get(BlockNumber(8)).unwrap();
    assert!(!sigma8.summary_records().is_empty());
}

#[test]
fn f4_summary_records_keep_original_position_fields() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    sim.run_fig7().unwrap();
    let chain = sim.ledger().chain();
    let sigma8 = chain.get(BlockNumber(8)).unwrap();
    // "the block number, the timestamp and the entry number are keeped the
    // same as initially integrated."
    let expected: Vec<(u64, u32, u64)> = vec![
        (1, 0, 10),
        (1, 1, 10),
        (1, 2, 10),
        (3, 0, 20),
        (3, 2, 20), // 3:1 deleted
        (4, 0, 30),
        (4, 1, 30),
        (4, 2, 30),
    ];
    let actual: Vec<(u64, u32, u64)> = sigma8
        .summary_records()
        .iter()
        .map(|r| {
            (
                r.origin().block.value(),
                r.origin().entry.value(),
                r.origin_timestamp().millis(),
            )
        })
        .collect();
    assert_eq!(actual, expected);
    // Carried signatures still verify (authorship preserved).
    for record in sigma8.summary_records() {
        record.verify().unwrap();
    }
}

#[test]
fn f5_marked_entry_not_copied() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    let target = LoginAudit::bravo_target();
    assert!(sim.ledger().record(target).is_some());
    sim.run_fig7().unwrap();
    assert!(sim.ledger().record(target).is_none());
    // The executed registry record compacts away with its retired
    // sequence; the merging Σ's tombstone is the durable proof.
    assert!(sim.ledger().deletion_status(target).is_none());
    let tombstoned = sim
        .ledger()
        .chain()
        .iter()
        .any(|block| block.deletions().contains(&target));
    assert!(tombstoned, "the merge must tombstone the marked entry");
}

#[test]
fn f6_console_output() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    let rendered = sim.render();
    // Genesis with predecessor DEADB.
    assert!(rendered.contains("0; 0; DEADB; "), "{rendered}");
    // Blocks 1, 3, 4 carry one entry per user.
    for user in ["ALPHA", "BRAVO", "CHARLIE"] {
        assert_eq!(
            rendered.matches(&format!("K {user} S")).count(),
            3,
            "{user} should appear three times\n{rendered}"
        );
    }
    // Summary blocks S2 and S5 present and empty.
    assert!(rendered.contains("\nS2; 10; "), "{rendered}");
    assert!(rendered.contains("\nS5; 30; "), "{rendered}");
    assert_eq!(rendered.matches("(empty)").count(), 2, "{rendered}");
    assert!(rendered.starts_with("marker m = 0\n"));
}

#[test]
fn f7_console_output() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    sim.run_fig7().unwrap();
    let rendered = sim.render();
    // Marker moved to 6 (paper: "The maker for the Genesis Block is
    // changed to block number 6. All information before block 6 is
    // deleted.").
    assert!(rendered.starts_with("marker m = 6\n"), "{rendered}");
    assert!(
        !rendered.contains("DEADB"),
        "genesis must be gone\n{rendered}"
    );
    // The deletion request is visible in block 6.
    assert!(rendered.contains("0: DEL 3:1 K BRAVO"), "{rendered}");
    // Σ8 holds the merged records; BRAVO's 3:1 entry was not copied.
    assert!(rendered.contains("\nS8; 50; "), "{rendered}");
    assert!(rendered.contains("1:1@τ10"), "{rendered}");
    assert!(!rendered.contains("3:1@τ20"), "{rendered}");
}

#[test]
fn f8_console_output() {
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().unwrap();
    sim.run_fig7().unwrap();
    sim.run_fig8().unwrap();
    let rendered = sim.render();
    // One merge cycle ahead: marker at 12, no deletion request anywhere
    // ("deletion entries are never transferred").
    assert!(rendered.starts_with("marker m = 12\n"), "{rendered}");
    assert!(!rendered.contains("DEL"), "{rendered}");
    // The eight surviving records are still listed, ids intact.
    for origin in [
        "1:0@τ10", "1:1@τ10", "1:2@τ10", "3:0@τ20", "3:2@τ20", "4:0@τ30", "4:1@τ30", "4:2@τ30",
    ] {
        assert!(rendered.contains(origin), "missing {origin}\n{rendered}");
    }
    assert!(!rendered.contains("3:1@τ20"), "{rendered}");
}

#[test]
fn figures_are_deterministic() {
    let run = || {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        sim.run_fig7().unwrap();
        sim.run_fig8().unwrap();
        sim.render()
    };
    assert_eq!(run(), run());
}

//! Ablation tests for the design choices DESIGN.md calls out: retire mode,
//! anchoring policy, idle filler, and sequence length.

use selective_deletion::codec::DataRecord;
use selective_deletion::crypto::SigningKey;
use selective_deletion::prelude::*;

fn drive(config: ChainConfig, blocks: u64) -> SelectiveLedger {
    let key = SigningKey::from_seed([0x77; 32]);
    let mut ledger = SelectiveLedger::new(config);
    for i in 1..=blocks {
        ledger
            .submit_entry(Entry::sign_data(&key, DataRecord::new("log").with("n", i)))
            .expect("valid entry");
        ledger.seal_block(Timestamp(i * 10)).expect("monotone time");
    }
    ledger
}

fn config(mode: RetireMode, anchoring: AnchorPolicy) -> ChainConfig {
    ChainConfig {
        sequence_length: 3,
        retention: RetentionPolicy {
            max_live_blocks: Some(9),
            min_live_blocks: 3,
            min_live_summaries: 1,
            min_timespan: None,
            mode,
        },
        anchoring,
        ..Default::default()
    }
}

#[test]
fn retire_mode_full_compaction_keeps_chain_shorter() {
    let minimal = drive(config(RetireMode::MinimumNeeded, AnchorPolicy::None), 40);
    let compact = drive(config(RetireMode::FullCompaction, AnchorPolicy::None), 40);
    // Both bounded…
    assert!(minimal.stats().live_blocks <= 12);
    assert!(compact.stats().live_blocks <= 12);
    // …but compaction leaves fewer live blocks on average (it cuts to the
    // open tail + Σ whenever it trips).
    assert!(
        compact.stats().live_blocks <= minimal.stats().live_blocks,
        "compaction ({}) vs minimal ({})",
        compact.stats().live_blocks,
        minimal.stats().live_blocks
    );
    // Conservation holds in both modes.
    assert_eq!(minimal.stats().live_records, 40);
    assert_eq!(compact.stats().live_records, 40);
}

#[test]
fn retire_modes_agree_on_content() {
    // Same workload, different retirement aggressiveness: the *live data*
    // (by origin id) must be identical; only block layout differs.
    let minimal = drive(config(RetireMode::MinimumNeeded, AnchorPolicy::None), 30);
    let compact = drive(config(RetireMode::FullCompaction, AnchorPolicy::None), 30);
    let mut ids_a: Vec<EntryId> = minimal
        .chain()
        .live_records()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    let mut ids_b: Vec<EntryId> = compact
        .chain()
        .live_records()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    ids_a.sort();
    ids_b.sort();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn anchoring_costs_bytes_but_adds_confirmations() {
    let plain = drive(config(RetireMode::MinimumNeeded, AnchorPolicy::None), 40);
    let anchored = drive(
        config(RetireMode::MinimumNeeded, AnchorPolicy::MiddleSequence),
        40,
    );
    let anchors = anchored
        .chain()
        .iter()
        .filter(|b| b.anchor().is_some())
        .count();
    assert!(anchors > 0, "anchoring produced no anchors");
    assert_eq!(
        plain
            .chain()
            .iter()
            .filter(|b| b.anchor().is_some())
            .count(),
        0
    );
    // The anchored chain pays a small, bounded byte overhead (one digest +
    // two block numbers per merging summary).
    let overhead = anchored.stats().live_bytes as i64 - plain.stats().live_bytes as i64;
    assert!(overhead >= 0);
    assert!(overhead < 200 * anchors as i64);
}

#[test]
fn sequence_length_trades_summary_frequency_for_latency() {
    // Short sequences → more summaries (overhead) but lower deletion
    // latency; long sequences → the reverse.
    let short = drive(
        ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy::bounded(12),
            ..Default::default()
        },
        60,
    );
    let long = drive(
        ChainConfig {
            sequence_length: 6,
            retention: RetentionPolicy::bounded(12),
            ..Default::default()
        },
        60,
    );
    assert!(
        short.stats().summaries_created > long.stats().summaries_created,
        "short {} vs long {}",
        short.stats().summaries_created,
        long.stats().summaries_created
    );
}

#[test]
fn idle_filler_ablation_bounds_latency_only_when_enabled() {
    let key = SigningKey::from_seed([0x78; 32]);
    let run = |filler: Option<u64>| -> Option<u64> {
        let mut config = ChainConfig::paper_evaluation();
        config.idle_fill = filler.map(|ms| IdleFillPolicy { max_idle_ms: ms });
        let mut ledger = SelectiveLedger::new(config);
        ledger
            .submit_entry(Entry::sign_data(&key, DataRecord::new("d").with("n", 1u64)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        ledger.request_deletion(&key, target, "").unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        // Silence: only time passes (no traffic).
        for step in 1..=100u64 {
            ledger.tick(Timestamp(20 + step * 100));
            if ledger.record(target).is_none() {
                return Some(step * 100);
            }
        }
        None
    };
    let with_filler = run(Some(50));
    let without = run(None);
    assert!(with_filler.is_some(), "filler must flush the deletion");
    assert!(
        without.is_none(),
        "without filler and traffic, deletion latency is unbounded (the paper's trade-off)"
    );
}

#[test]
fn min_timespan_retention_preserves_audit_window() {
    // §IV-D3: "a minimum time span coverage" — with the constraint, the
    // live chain always covers at least the configured window.
    let mut config = ChainConfig {
        sequence_length: 3,
        retention: RetentionPolicy {
            max_live_blocks: Some(6),
            min_live_blocks: 3,
            min_live_summaries: 1,
            min_timespan: Some(100),
            mode: RetireMode::MinimumNeeded,
        },
        ..Default::default()
    };
    config.chain_note = "windowed".into();
    let ledger = drive(config, 40);
    assert!(
        ledger.stats().covered_timespan >= 100,
        "covered {} < 100",
        ledger.stats().covered_timespan
    );
    // The trade-off: the chain may exceed l_max to honour the window.
    assert!(ledger.stats().live_blocks >= 6);
}

//! Property-based tests for the DESIGN.md invariants (I1–I10), spanning
//! all workspace crates.

use std::collections::BTreeMap;

use proptest::prelude::*;

use selective_deletion::chain::{validate_chain, ValidationOptions};
use selective_deletion::codec::{Codec, DataRecord, Value};
use selective_deletion::crypto::{MerkleTree, SigningKey};
use selective_deletion::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
    ]
}

fn record_strategy() -> impl Strategy<Value = DataRecord> {
    (
        "[a-z][a-z0-9_]{0,11}",
        proptest::collection::btree_map("[a-z][a-z0-9]{0,7}", value_strategy(), 0..6),
    )
        .prop_map(|(schema, fields)| {
            let mut record = DataRecord::new(schema);
            for (name, value) in fields {
                record.insert(name, value);
            }
            record
        })
}

/// One step of the random ledger workload.
#[derive(Debug, Clone)]
enum Op {
    /// Submit a data entry as user `user % USERS`, with optional TTL.
    Submit { user: u8, ttl: Option<u8> },
    /// Seal a block, advancing time.
    Seal,
    /// Request deletion of the `pick`-th previously submitted entry by its
    /// own author (always authorised; may still fail for other reasons).
    Delete { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), proptest::option::of(1u8..20)).prop_map(|(user, ttl)| Op::Submit { user, ttl }),
        2 => Just(Op::Seal),
        1 => any::<u8>().prop_map(|pick| Op::Delete { pick }),
    ]
}

// ---------------------------------------------------------------------------
// I9: codec round-trips
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn i9_value_codec_round_trip(value in value_strategy()) {
        let bytes = value.to_canonical_bytes();
        let decoded = Value::from_canonical_bytes(&bytes).expect("round trip");
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn i9_record_codec_round_trip(record in record_strategy()) {
        let bytes = record.to_canonical_bytes();
        let decoded = DataRecord::from_canonical_bytes(&bytes).expect("round trip");
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn i9_encoding_is_deterministic(record in record_strategy()) {
        prop_assert_eq!(record.to_canonical_bytes(), record.to_canonical_bytes());
    }

    #[test]
    fn i9_truncated_input_never_panics(record in record_strategy(), cut in 0usize..64) {
        let bytes = record.to_canonical_bytes();
        let cut = cut.min(bytes.len());
        // Must error or produce a value, never panic.
        let _ = DataRecord::from_canonical_bytes(&bytes[..cut]);
    }
}

// ---------------------------------------------------------------------------
// I8: signatures
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn i8_sign_verify_round_trip(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn i8_bit_flip_rejected(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 1..128), flip in any::<u16>()) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let idx = (flip as usize) % tampered.len();
        tampered[idx] ^= 1 << (flip % 8) as u8;
        if tampered != msg {
            prop_assert!(key.verifying_key().verify(&tampered, &sig).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Merkle proofs
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merkle_proofs_hold_for_every_leaf(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..40)
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("in bounds");
            prop_assert!(proof.verify(leaf, &tree.root()));
        }
    }

    #[test]
    fn merkle_rejects_cross_leaf_proofs(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 2..20),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let a = (a as usize) % leaves.len();
        let b = (b as usize) % leaves.len();
        if leaves[a] != leaves[b] {
            let proof = tree.prove(a).expect("in bounds");
            prop_assert!(!proof.verify(&leaves[b], &tree.root()));
        }
    }
}

// ---------------------------------------------------------------------------
// I1–I6: ledger invariants under random workloads
// ---------------------------------------------------------------------------

fn users() -> Vec<SigningKey> {
    (1..=4u8).map(|i| SigningKey::from_seed([i; 32])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ledger_invariants_under_random_workload(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let users = users();
        let config = ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy {
                max_live_blocks: Some(9),
                min_live_blocks: 3,
                min_live_summaries: 1,
                min_timespan: None,
                mode: RetireMode::MinimumNeeded,
            },
            ..Default::default()
        };
        let mut ledger = SelectiveLedger::new(config);
        let mut now = Timestamp(0);
        // (id, owner index, record) of every successfully placed data entry.
        let mut placed: Vec<(EntryId, usize, DataRecord)> = Vec::new();
        // Pending mempool slots in submission order; None = deletion
        // request (occupies an entry number but is not a data record).
        let mut pending_batch: Vec<Option<(usize, DataRecord)>> = Vec::new();
        let mut requested_deletions: Vec<EntryId> = Vec::new();
        let mut last_marker = BlockNumber(0);
        let mut submitted = 0u64;

        for op in ops {
            match op {
                Op::Submit { user, ttl } => {
                    let user = (user as usize) % users.len();
                    submitted += 1;
                    let record = DataRecord::new("log").with("n", submitted).with("u", user as u64);
                    let expiry = ttl.map(|t| Expiry::AtTimestamp(now + (t as u64) * 10));
                    let entry = Entry::sign_data_with(&users[user], record.clone(), expiry, vec![]);
                    ledger.submit_entry(entry).expect("valid entries accepted");
                    pending_batch.push(Some((user, record)));
                }
                Op::Seal => {
                    now += 10;
                    let number = ledger.seal_block(now).expect("monotone time");
                    for (i, slot) in pending_batch.drain(..).enumerate() {
                        if let Some((user, record)) = slot {
                            placed.push((EntryId::new(number, EntryNumber(i as u32)), user, record));
                        }
                    }
                }
                Op::Delete { pick } => {
                    if placed.is_empty() { continue; }
                    let (id, owner, _) = placed[(pick as usize) % placed.len()].clone();
                    // Owners delete their own entries; duplicates and gone
                    // targets are allowed to fail.
                    match ledger.request_deletion(&users[owner], id, "prop") {
                        Ok(()) => {
                            requested_deletions.push(id);
                            pending_batch.push(None);
                        }
                        // DuplicatePending: the sharded mempool dedups a
                        // byte-identical request already waiting.
                        Err(CoreError::DuplicatePending) |
                        Err(CoreError::DuplicateDeletion(_)) |
                        Err(CoreError::TargetNotFound(_)) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            }

            // I4: marker monotonicity + bounded length.
            let stats = ledger.stats();
            prop_assert!(stats.marker >= last_marker, "marker went backwards");
            last_marker = stats.marker;
            prop_assert!(
                stats.live_blocks <= 9 + 3,
                "live blocks {} exceed l_max + l", stats.live_blocks
            );
        }

        // Seal whatever is still in the mempool (with bookkeeping), then
        // flush pending deletions through enough merge cycles.
        if !pending_batch.is_empty() {
            now += 10;
            let number = ledger.seal_block(now).expect("monotone time");
            for (i, slot) in pending_batch.drain(..).enumerate() {
                if let Some((user, record)) = slot {
                    placed.push((EntryId::new(number, EntryNumber(i as u32)), user, record));
                }
            }
        }
        for _ in 0..12 {
            now += 10;
            ledger.seal_block(now).expect("monotone time");
        }

        // I1: the chain validates fully.
        validate_chain(ledger.chain(), &ValidationOptions::default()).expect("valid chain");

        // I5: executed deletions never resurface.
        for id in &requested_deletions {
            prop_assert!(ledger.record(*id).is_none(), "deleted {id} still present");
        }

        // I3 (conservation) and I6 (stable origins): every placed entry is
        // either live with its original content, deleted on request, or
        // expired.
        let stats = ledger.stats();
        let live: BTreeMap<EntryId, DataRecord> = ledger
            .chain()
            .live_records()
            .into_iter()
            .map(|(id, r)| (id, r.clone()))
            .collect();
        let mut accounted = 0u64;
        for (id, _, original) in &placed {
            if let Some(found) = live.get(id) {
                prop_assert_eq!(found, original, "content of {} changed", id);
                accounted += 1;
            }
        }
        let vanished = placed.len() as u64 - accounted;
        prop_assert_eq!(
            vanished,
            stats.executed_deletions as u64 + stats.expired_records,
            "conservation violated: {} vanished, {} deleted, {} expired",
            vanished, stats.executed_deletions, stats.expired_records
        );
    }
}

// ---------------------------------------------------------------------------
// Storage layer: maintained entry index and sealed-hash cache.
//
// The EntryIndex and the per-block digest cache are *derived* state: they
// must stay exactly reconstructible from the blocks at all times, or the
// invariants they serve break silently — I1 (chain validity: every linkage
// check reads the cached digests, so a stale cache would let an invalid
// chain validate) and I3 (conservation: locate/is_live answer through the
// index, so a drifted index would lose or resurrect data sets).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn index_and_hash_cache_agree_with_full_rebuild(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        use selective_deletion::chain::SegStore;

        let users = users();
        let config = || ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy {
                max_live_blocks: Some(9),
                min_live_blocks: 3,
                min_live_summaries: 1,
                min_timespan: None,
                mode: RetireMode::MinimumNeeded,
            },
            ..Default::default()
        };
        // The same random workload drives both storage backends.
        let mut mem = SelectiveLedger::builder(config()).build();
        let mut seg = SelectiveLedger::builder(config())
            .store_backend::<SegStore>()
            .build();
        let mut now = Timestamp(0);
        // Every id ever observed live, as (id, owner index) — deletion
        // candidates and, at the end, lookup-agreement probes.
        let mut seen: Vec<(EntryId, usize)> = Vec::new();
        let mut submitted = 0u64;

        for op in ops {
            match op {
                Op::Submit { user, ttl } => {
                    let user = (user as usize) % users.len();
                    submitted += 1;
                    let record = DataRecord::new("log").with("n", submitted);
                    let expiry = ttl.map(|t| Expiry::AtTimestamp(now + (t as u64) * 10));
                    let entry = Entry::sign_data_with(&users[user], record, expiry, vec![]);
                    mem.submit_entry(entry.clone()).expect("valid entries accepted");
                    seg.submit_entry(entry).expect("valid entries accepted");
                }
                Op::Seal => {
                    now += 10;
                    mem.seal_block(now).expect("monotone time");
                    seg.seal_block(now).expect("monotone time");
                    for (id, record) in mem.chain().live_records() {
                        if !seen.iter().any(|(s, _)| *s == id) {
                            let owner = record.get("n").and_then(|v| v.as_u64());
                            // Recover the owner from the author key.
                            let author = mem.chain().locate(id).expect("live").author();
                            let owner = users
                                .iter()
                                .position(|k| k.verifying_key() == author)
                                .unwrap_or_else(|| panic!("unknown author for n={owner:?}"));
                            seen.push((id, owner));
                        }
                    }

                    // After every chain mutation (seal, automatic Σ, merge,
                    // truncate) the maintained index must equal a fresh
                    // full-scan rebuild, and every cached digest must equal
                    // recomputation (I1).
                    let chain = mem.chain();
                    prop_assert_eq!(chain.entry_index(), &chain.rebuilt_index());
                    prop_assert!(chain.verify_cached_hashes());
                    prop_assert_eq!(
                        chain.record_count() as usize,
                        chain.live_records().len(),
                        "index cardinality drifted from the live data sets (I3)"
                    );
                }
                Op::Delete { pick } => {
                    if seen.is_empty() { continue; }
                    let (id, owner) = seen[(pick as usize) % seen.len()];
                    match mem.request_deletion(&users[owner], id, "prop") {
                        Ok(()) => {
                            // Identical state on both backends → same verdict.
                            seg.request_deletion(&users[owner], id, "prop")
                                .expect("backends agree on deletion verdicts");
                        }
                        // DuplicatePending: the sharded mempool dedups a
                        // byte-identical request already waiting.
                        Err(CoreError::DuplicatePending) |
                        Err(CoreError::DuplicateDeletion(_)) |
                        Err(CoreError::TargetNotFound(_)) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            }
        }
        now += 10;
        mem.seal_block(now).expect("monotone time");
        seg.seal_block(now).expect("monotone time");

        let chain = mem.chain();
        prop_assert_eq!(chain.entry_index(), &chain.rebuilt_index());
        prop_assert!(chain.verify_cached_hashes());

        // The indexed lookup and the reference full scan agree on every id
        // ever observed, live or since gone (I3: nothing extra, nothing
        // missing), plus a never-existing probe.
        for (id, _) in &seen {
            prop_assert_eq!(chain.locate(*id), chain.locate_scan(*id), "id {}", id);
        }
        let ghost = EntryId::new(BlockNumber(u64::MAX - 1), EntryNumber(0));
        prop_assert_eq!(chain.locate(ghost), chain.locate_scan(ghost));

        // Backends are an implementation detail: bit-identical live chains.
        prop_assert_eq!(chain.export_bytes(), seg.chain().export_bytes());
        prop_assert_eq!(chain.tip_hash(), seg.chain().tip_hash());
        prop_assert_eq!(
            seg.chain().entry_index(),
            &seg.chain().rebuilt_index()
        );
    }
}

// ---------------------------------------------------------------------------
// Durable storage: FileStore close/reopen round-trips and §IV-C physical
// on-disk deletion.
//
// The cross-backend bit-identity property above covers in-memory backends;
// these extend it through the filesystem: a chain built on a disk-rooted
// FileStore, closed and reopened must be bit-identical (blocks, Σ
// summaries, entry index, sealed hashes) to the never-closed MemStore
// chain — and after pruning, deleted entry payloads must be absent from
// the store directory's raw bytes.
// ---------------------------------------------------------------------------

/// The retention shape every durable-storage property runs under (short
/// sequences, tight l_max — merges and prunes fire constantly).
fn durable_prop_config() -> ChainConfig {
    ChainConfig {
        sequence_length: 3,
        retention: RetentionPolicy {
            max_live_blocks: Some(9),
            min_live_blocks: 3,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        ..Default::default()
    }
}

/// Raw bytes of every file in a directory, concatenated.
fn dir_bytes(dir: &std::path::Path) -> Vec<u8> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("store dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            out.extend(std::fs::read(&path).expect("file readable"));
        }
    }
    out
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn file_store_reopen_is_bit_identical_to_mem_store(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        use selective_deletion::chain::FileStore;

        let scratch = selective_deletion::chain::testutil::ScratchDir::new("roundtrip");
        let dir = scratch.path().to_path_buf();
        let users = users();
        let config = durable_prop_config;
        let mut mem = SelectiveLedger::builder(config()).build();
        // A one-block hot cache forces the paged read path (page-ins and
        // evictions) throughout the whole workload, not just past 1024
        // blocks — bit-identity must hold on the paged path too.
        let mut file = SelectiveLedger::builder(config())
            .store_backend::<FileStore>()
            .open_store(
                FileStore::open_with_capacity(&dir, 4)
                    .expect("store opens")
                    .with_hot_cache_capacity(1),
            )
            .expect("fresh store");
        let mut now = Timestamp(0);
        let mut submitted = 0u64;
        let mut seen: Vec<(EntryId, usize)> = Vec::new();

        for op in ops {
            match op {
                Op::Submit { user, ttl } => {
                    let user = (user as usize) % users.len();
                    submitted += 1;
                    let record = DataRecord::new("log").with("n", submitted);
                    let expiry = ttl.map(|t| Expiry::AtTimestamp(now + (t as u64) * 10));
                    let entry = Entry::sign_data_with(&users[user], record, expiry, vec![]);
                    mem.submit_entry(entry.clone()).expect("valid");
                    file.submit_entry(entry).expect("valid");
                }
                Op::Seal => {
                    now += 10;
                    mem.seal_block(now).expect("monotone");
                    file.seal_block(now).expect("monotone");
                    for (id, _) in mem.chain().live_records() {
                        if !seen.iter().any(|(s, _)| *s == id) {
                            let author = mem.chain().locate(id).expect("live").author();
                            let owner = users
                                .iter()
                                .position(|k| k.verifying_key() == author)
                                .expect("workload author");
                            seen.push((id, owner));
                        }
                    }
                }
                Op::Delete { pick } => {
                    if seen.is_empty() { continue; }
                    let (id, owner) = seen[(pick as usize) % seen.len()];
                    match mem.request_deletion(&users[owner], id, "prop") {
                        Ok(()) => {
                            file.request_deletion(&users[owner], id, "prop")
                                .expect("backends agree on deletion verdicts");
                        }
                        // DuplicatePending: the sharded mempool dedups a
                        // byte-identical request already waiting.
                        Err(CoreError::DuplicatePending) |
                        Err(CoreError::DuplicateDeletion(_)) |
                        Err(CoreError::TargetNotFound(_)) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            }
        }
        now += 10;
        mem.seal_block(now).expect("monotone");
        file.seal_block(now).expect("monotone");
        prop_assert_eq!(mem.chain().export_bytes(), file.chain().export_bytes());

        // Close and reopen: the recovered ledger must be bit-identical to
        // the never-closed MemStore chain — blocks, Σ summaries, entry
        // index and sealed hashes.
        drop(file);
        let reopened = SelectiveLedger::builder(config())
            .store_backend::<FileStore>()
            .on_disk(&dir)
            .expect("recovery succeeds");
        prop_assert_eq!(mem.chain().export_bytes(), reopened.chain().export_bytes());
        prop_assert_eq!(mem.chain().tip_hash(), reopened.chain().tip_hash());
        prop_assert_eq!(
            mem.chain().entry_index().iter().collect::<Vec<_>>(),
            reopened.chain().entry_index().iter().collect::<Vec<_>>()
        );
        prop_assert!(mem
            .chain()
            .iter_sealed()
            .map(|sealed| sealed.hash())
            .eq(reopened
                .chain()
                .iter_sealed()
                .map(|sealed| sealed.hash())));
        prop_assert_eq!(reopened.chain().entry_index(), &reopened.chain().rebuilt_index());
        prop_assert!(reopened.chain().verify_cached_hashes());
        // Lookups agree on every id ever observed, live or gone.
        for (id, _) in &seen {
            prop_assert_eq!(reopened.chain().locate(*id), mem.chain().locate(*id), "id {}", id);
            prop_assert_eq!(reopened.chain().locate(*id), reopened.chain().locate_scan(*id));
        }
    }

    /// §IV-C physical deletion check: after the deletion of a
    /// sentinel-carrying entry executes, the sentinel bytes must not
    /// appear anywhere in the store directory — not in live segments, not
    /// in the manifest, not in any leftover file.
    #[test]
    fn file_store_physical_deletion_removes_sentinel_bytes(
        sentinel_seed in any::<[u8; 16]>(),
        filler in 1u8..4,
    ) {
        use selective_deletion::chain::FileStore;

        let scratch = selective_deletion::chain::testutil::ScratchDir::new("sentinel");
        let dir = scratch.path().to_path_buf();
        // High-entropy sentinel: false positives are ~impossible.
        let sentinel: String = sentinel_seed
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>() + "-SENTINEL";
        let users = users();
        let mut ledger = SelectiveLedger::builder(durable_prop_config())
            .store_backend::<FileStore>()
            .open_store(FileStore::open_with_capacity(&dir, 4).expect("store opens"))
            .expect("fresh store");

        // Block 1: the sentinel entry plus some filler.
        let owner = 0usize;
        ledger
            .submit_entry(Entry::sign_data(
                &users[owner],
                DataRecord::new("log").with("secret", sentinel.as_str()),
            ))
            .expect("valid");
        for f in 0..filler {
            ledger
                .submit_entry(Entry::sign_data(
                    &users[1],
                    DataRecord::new("log").with("n", f as u64),
                ))
                .expect("valid");
        }
        let mut now = Timestamp(10);
        ledger.seal_block(now).expect("monotone");
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        prop_assert!(
            contains_subslice(&dir_bytes(&dir), sentinel.as_bytes()),
            "sentinel must be on disk while the entry lives"
        );

        // Delete it, then drive merges until the deletion executes.
        now += 10;
        ledger
            .request_deletion(&users[owner], target, "erase me")
            .expect("owner may delete");
        ledger.seal_block(now).expect("monotone");
        for _ in 0..30 {
            now += 10;
            ledger.seal_block(now).expect("monotone");
            if ledger.record(target).is_none() {
                break;
            }
        }
        prop_assert!(ledger.record(target).is_none(), "deletion never executed");
        prop_assert_eq!(ledger.stats().executed_deletions, 1);

        // The physical-deletion bar: zero occurrences in the raw bytes.
        prop_assert!(
            !contains_subslice(&dir_bytes(&dir), sentinel.as_bytes()),
            "sentinel bytes survived on disk after physical deletion"
        );

        // And the survivor chain still reopens cleanly.
        drop(ledger);
        let reopened = SelectiveLedger::builder(durable_prop_config())
            .store_backend::<FileStore>()
            .on_disk(&dir)
            .expect("recovery succeeds");
        prop_assert!(reopened.record(target).is_none());
    }
}

// ---------------------------------------------------------------------------
// Shard subsystem: the ShardedIndex must answer every query bit-identically
// to the monolithic EntryIndex oracle — across random workloads (inserts,
// deletions, TTL expiry), the marker shifts those trigger, every storage
// backend, any power-of-two shard count, and a close/reopen of the durable
// backend (whose recovery rebuilds the shards in parallel).
// ---------------------------------------------------------------------------

/// Asserts that a chain's sharded index, its locate paths and the batch
/// `locate_many` all agree with the monolithic oracle on every probe.
fn assert_probes_match_oracle<S: selective_deletion::chain::BlockStore>(
    chain: &selective_deletion::chain::Blockchain<S>,
    oracle: &selective_deletion::chain::EntryIndex,
    probes: &[EntryId],
) {
    for id in probes {
        assert_eq!(chain.entry_index().get(*id), oracle.get(*id), "id {id}");
        assert_eq!(chain.entry_index().contains(*id), oracle.get(*id).is_some());
        assert_eq!(chain.locate(*id), chain.locate_scan(*id), "id {id}");
    }
    // The shard-parallel batch path equals element-wise lookups.
    let batch = chain.locate_many(probes);
    for (id, got) in probes.iter().zip(&batch) {
        assert_eq!(*got, chain.locate(*id), "id {id}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_index_queries_match_the_monolithic_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        shard_pow in 0u32..5,
    ) {
        use selective_deletion::chain::{FileStore, SegStore};

        let shards = 1usize << shard_pow;
        let scratch = selective_deletion::chain::testutil::ScratchDir::new("shardprop");
        let dir = scratch.path().to_path_buf();
        let users = users();
        let config = durable_prop_config;
        let mut mem = SelectiveLedger::builder(config()).shards(shards).build();
        let mut seg = SelectiveLedger::builder(config())
            .shards(shards)
            .store_backend::<SegStore>()
            .build();
        let mut file = SelectiveLedger::builder(config())
            .shards(shards)
            .store_backend::<FileStore>()
            .open_store(FileStore::open_with_capacity(&dir, 4).expect("store opens"))
            .expect("fresh store");
        let mut now = Timestamp(0);
        let mut submitted = 0u64;
        let mut seen: Vec<(EntryId, usize)> = Vec::new();

        for op in ops {
            match op {
                Op::Submit { user, ttl } => {
                    let user = (user as usize) % users.len();
                    submitted += 1;
                    let record = DataRecord::new("log").with("n", submitted);
                    let expiry = ttl.map(|t| Expiry::AtTimestamp(now + (t as u64) * 10));
                    let entry = Entry::sign_data_with(&users[user], record, expiry, vec![]);
                    mem.submit_entry(entry.clone()).expect("valid");
                    seg.submit_entry(entry.clone()).expect("valid");
                    file.submit_entry(entry).expect("valid");
                }
                Op::Seal => {
                    now += 10;
                    mem.seal_block(now).expect("monotone");
                    seg.seal_block(now).expect("monotone");
                    file.seal_block(now).expect("monotone");
                    for (id, _) in mem.chain().live_records() {
                        if !seen.iter().any(|(s, _)| *s == id) {
                            let author = mem.chain().locate(id).expect("live").author();
                            let owner = users
                                .iter()
                                .position(|k| k.verifying_key() == author)
                                .expect("workload author");
                            seen.push((id, owner));
                        }
                    }
                    // After every mutation (seal, Σ, merge, marker shift):
                    // sharded maintained state == monolithic rebuild.
                    prop_assert_eq!(mem.chain().entry_index(), &mem.chain().rebuilt_index());
                    prop_assert_eq!(seg.chain().entry_index(), &seg.chain().rebuilt_index());
                    prop_assert_eq!(file.chain().entry_index(), &file.chain().rebuilt_index());
                }
                Op::Delete { pick } => {
                    if seen.is_empty() { continue; }
                    let (id, owner) = seen[(pick as usize) % seen.len()];
                    match mem.request_deletion(&users[owner], id, "prop") {
                        Ok(()) => {
                            seg.request_deletion(&users[owner], id, "prop")
                                .expect("backends agree on deletion verdicts");
                            file.request_deletion(&users[owner], id, "prop")
                                .expect("backends agree on deletion verdicts");
                        }
                        Err(CoreError::DuplicatePending) |
                        Err(CoreError::DuplicateDeletion(_)) |
                        Err(CoreError::TargetNotFound(_)) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
            }
        }
        now += 10;
        mem.seal_block(now).expect("monotone");
        seg.seal_block(now).expect("monotone");
        file.seal_block(now).expect("monotone");

        // Probe set: every id ever live, plus a ghost that never existed.
        let mut probes: Vec<EntryId> = seen.iter().map(|(id, _)| *id).collect();
        probes.push(EntryId::new(BlockNumber(u64::MAX - 1), EntryNumber(0)));

        for (label, chain) in [
            ("mem", mem.chain().export_bytes()),
            ("seg", seg.chain().export_bytes()),
            ("file", file.chain().export_bytes()),
        ] {
            prop_assert_eq!(&chain, &mem.chain().export_bytes(), "{} diverged", label);
        }
        // Probe-level equivalence on every backend (the helper is generic
        // because the three chains have different store types).
        let oracle = mem.chain().rebuilt_index();
        assert_probes_match_oracle(mem.chain(), &oracle, &probes);
        assert_probes_match_oracle(seg.chain(), &oracle, &probes);
        assert_probes_match_oracle(file.chain(), &oracle, &probes);

        // Close/reopen the durable backend: recovery's parallel shard
        // rebuild must reproduce the same answers.
        drop(file);
        let reopened = SelectiveLedger::builder(config())
            .shards(shards)
            .store_backend::<FileStore>()
            .on_disk(&dir)
            .expect("recovery succeeds");
        prop_assert_eq!(reopened.chain().entry_index(), &oracle);
        let batch = reopened.chain().locate_many(&probes);
        for (id, got) in probes.iter().zip(&batch) {
            prop_assert_eq!(*got, mem.chain().locate(*id), "id {}", id);
        }
        let audited = reopened.audit_live(&probes);
        for (id, live) in probes.iter().zip(&audited) {
            prop_assert_eq!(*live, reopened.is_live(*id), "id {}", id);
        }
    }
}

// ---------------------------------------------------------------------------
// I2: summary determinism
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn i2_identical_histories_identical_tips(blocks in 1u64..20) {
        let drive = || {
            let key = SigningKey::from_seed([9u8; 32]);
            let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
            for i in 1..=blocks {
                ledger
                    .submit_entry(Entry::sign_data(
                        &key,
                        DataRecord::new("log").with("n", i),
                    ))
                    .expect("valid");
                ledger.seal_block(Timestamp(i * 10)).expect("monotone");
            }
            ledger
        };
        let a = drive();
        let b = drive();
        prop_assert_eq!(a.chain().tip().hash(), b.chain().tip().hash());
        prop_assert_eq!(a.chain().export_bytes(), b.chain().export_bytes());
    }
}

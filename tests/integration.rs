//! End-to-end integration tests across all crates: a simulated anchor
//! cluster with clients, the full deletion workflow cluster-wide, and the
//! consensus-engine independence claim.

use selective_deletion::chain::{validate_chain, ValidationOptions};
use selective_deletion::codec::DataRecord;
use selective_deletion::consensus::{ConsensusEngine, NullEngine, ProofOfAuthority, ProofOfWork};
use selective_deletion::crypto::SigningKey;
use selective_deletion::network::{NetConfig, NodeId, SimNetwork};
use selective_deletion::node::{AnchorNode, ClientNode, NodeMessage};
use selective_deletion::prelude::*;

fn login_entry(seed: u8, n: u64) -> Entry {
    Entry::sign_data(
        &SigningKey::from_seed([seed; 32]),
        DataRecord::new("login").with("user", "U").with("n", n),
    )
}

fn cluster(anchors: usize, seed: u64) -> (SimNetwork<NodeMessage>, Vec<NodeId>, NodeId) {
    let mut net = SimNetwork::new(NetConfig {
        seed,
        ..NetConfig::default()
    });
    let leader = NodeId(0);
    let ids: Vec<NodeId> = (0..anchors)
        .map(|_| {
            let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
            net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)))
        })
        .collect();
    for id in &ids {
        net.schedule_tick(*id, 100);
    }
    let client = net.add_node(Box::new(ClientNode::new(ids.clone())));
    (net, ids, client)
}

#[test]
fn cluster_wide_deletion_workflow() {
    let (mut net, anchors, client) = cluster(3, 11);
    let user = SigningKey::from_seed([5u8; 32]);

    // A user writes an entry through the client.
    let entry = Entry::sign_data(&user, DataRecord::new("login").with("user", "EVE"));
    net.send_external(client, NodeMessage::ClientSubmit(entry));
    net.run_until(400);

    // Find the entry's id on the leader.
    let target = net
        .node_as::<AnchorNode>(anchors[0])
        .unwrap()
        .ledger()
        .chain()
        .live_records()
        .first()
        .map(|(id, _)| *id)
        .expect("entry landed");

    // The user requests deletion (signed delete entry through the client).
    let request = Entry::sign_delete(&user, DeleteRequest::new(target, "gdpr"));
    net.send_external(client, NodeMessage::ClientSubmit(request));

    // Drive traffic so merges happen cluster-wide.
    for i in 0..24u64 {
        net.send_external(anchors[0], NodeMessage::Submit(login_entry(6, i)));
        net.run_until(net.now() + 100);
    }
    net.run_until(net.now() + 500);

    // Every anchor must have physically dropped the record.
    for id in &anchors {
        let node = net.node_as::<AnchorNode>(*id).unwrap();
        assert!(
            node.ledger().record(target).is_none(),
            "{id} still holds the deleted record"
        );
        assert!(
            node.ledger().chain().marker().value() > 0,
            "{id} never pruned"
        );
        validate_chain(node.ledger().chain(), &ValidationOptions::default())
            .unwrap_or_else(|e| panic!("{id} invalid after deletion: {e}"));
    }
}

#[test]
fn client_queries_track_deletion_state() {
    let (mut net, _anchors, client) = cluster(3, 12);
    let user = SigningKey::from_seed([5u8; 32]);

    let entry = Entry::sign_data(&user, DataRecord::new("login").with("user", "EVE"));
    net.send_external(client, NodeMessage::ClientSubmit(entry));
    net.run_until(400);

    let id = EntryId::new(BlockNumber(1), EntryNumber(0));
    net.send_external(client, NodeMessage::ClientQuery { id });
    net.run_until(net.now() + 200);
    {
        let c = net.node_as::<ClientNode>(client).unwrap();
        let (record, live) = c.query_result(id).expect("answered");
        assert!(live);
        assert!(record.is_some());
    }

    // Delete and re-query: marked (not live) but possibly still present.
    let request = Entry::sign_delete(&user, DeleteRequest::new(id, ""));
    net.send_external(client, NodeMessage::ClientSubmit(request));
    net.run_until(net.now() + 300);
    net.send_external(client, NodeMessage::ClientQuery { id });
    net.run_until(net.now() + 200);
    let c = net.node_as::<ClientNode>(client).unwrap();
    let (_, live) = c.query_result(id).expect("answered");
    assert!(!live, "marked entry must not be live");
}

#[test]
fn replicas_converge_after_eclipse() {
    let (mut net, anchors, client) = cluster(4, 13);
    // Eclipse anchor 3: it can only talk to the client (useless for sync).
    net.isolate(anchors[3], [client]);
    for i in 0..10u64 {
        net.send_external(anchors[0], NodeMessage::Submit(login_entry(7, i)));
        net.run_until(net.now() + 100);
    }
    let eclipsed_tip = net
        .node_as::<AnchorNode>(anchors[3])
        .unwrap()
        .ledger()
        .chain()
        .tip()
        .number();
    let honest_tip = net
        .node_as::<AnchorNode>(anchors[0])
        .unwrap()
        .ledger()
        .chain()
        .tip()
        .number();
    assert!(eclipsed_tip < honest_tip, "eclipse had no effect");

    // Lift the eclipse; the node syncs up.
    net.clear_isolation(anchors[3]);
    for i in 10..20u64 {
        net.send_external(anchors[0], NodeMessage::Submit(login_entry(7, i)));
        net.run_until(net.now() + 100);
    }
    net.run_until(net.now() + 500);
    let node = net.node_as::<AnchorNode>(anchors[3]).unwrap();
    assert!(node.stats().chains_adopted >= 1);
    assert!(node.ledger().chain().tip().number() > eclipsed_tip);
}

#[test]
fn consensus_engines_are_interchangeable() {
    // The paper: "any consensus algorithm can be extended by the described
    // behavior". Seal the same draft under three engines; summary blocks
    // stay deterministic regardless.
    let authority = SigningKey::from_seed([0xAA; 32]);
    let engines: Vec<Box<dyn ConsensusEngine>> = vec![
        Box::new(NullEngine),
        Box::new(ProofOfWork::new(8)),
        Box::new(ProofOfAuthority::new(vec![authority.verifying_key()]).with_signer(authority)),
    ];

    let key = SigningKey::from_seed([1u8; 32]);
    for engine in engines {
        let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
        ledger
            .submit_entry(Entry::sign_data(&key, DataRecord::new("x").with("n", 1u64)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();

        // Seal the tip header under the engine and verify it.
        let mut header = ledger.chain().tip().header().clone();
        // Tip may be a summary block; engines must accept it untouched.
        if header.kind == BlockKind::Summary {
            engine.verify(&header).expect("summary blocks exempt");
        } else {
            header.seal = engine.seal(&header).expect("sealing works");
            engine.verify(&header).expect("seal verifies");
        }
    }
}

#[test]
fn adopted_chain_reconstructs_deletion_state() {
    // A node bootstrapping from a sync response must reconstruct marks.
    let user = SigningKey::from_seed([3u8; 32]);
    let mut source = SelectiveLedger::new(ChainConfig::paper_evaluation());
    source
        .submit_entry(Entry::sign_data(
            &user,
            DataRecord::new("x").with("n", 1u64),
        ))
        .unwrap();
    source.seal_block(Timestamp(10)).unwrap();
    let target = EntryId::new(BlockNumber(1), EntryNumber(0));
    source.request_deletion(&user, target, "").unwrap();
    source.seal_block(Timestamp(20)).unwrap();

    let mut joiner = SelectiveLedger::new(ChainConfig::paper_evaluation());
    joiner.adopt_chain(source.chain().export_blocks()).unwrap();
    assert_eq!(joiner.chain().tip().hash(), source.chain().tip().hash());
    assert!(
        joiner.deletion_status(target).is_some(),
        "mark lost in adoption"
    );
    assert!(!joiner.is_live(target));

    // The joiner then behaves identically: the record is dropped at the
    // same merge on both nodes.
    for i in 3..=9u64 {
        source.seal_block(Timestamp(i * 10)).unwrap();
        joiner.seal_block(Timestamp(i * 10)).unwrap();
        assert_eq!(
            source.chain().tip().hash(),
            joiner.chain().tip().hash(),
            "divergence at step {i}"
        );
    }
    assert!(source.record(target).is_none());
    assert!(joiner.record(target).is_none());
}

#[test]
fn i10_baseline_and_selective_agree_without_deletions() {
    // DESIGN.md I10: for deletion-free workloads both chains expose the
    // same live record payloads — summarisation reorganises, never loses.
    let key = SigningKey::from_seed([0x66; 32]);
    let mut selective = SelectiveLedger::new(ChainConfig::paper_evaluation());
    let mut baseline = selective_deletion::chain::BaselineChain::new("base", Timestamp(0));
    for b in 1..=25u64 {
        let entries: Vec<Entry> = (0..2)
            .map(|i| Entry::sign_data(&key, DataRecord::new("log").with("n", b * 10 + i as u64)))
            .collect();
        for e in &entries {
            selective.submit_entry(e.clone()).unwrap();
        }
        selective.seal_block(Timestamp(b * 10)).unwrap();
        baseline.append(Timestamp(b * 10), entries).unwrap();
    }
    assert!(selective.chain().marker().value() > 0, "pruning happened");

    let mut selective_payloads: Vec<String> = selective
        .chain()
        .live_records()
        .into_iter()
        .map(|(_, r)| r.to_string())
        .collect();
    let mut baseline_payloads: Vec<String> = baseline
        .chain()
        .live_records()
        .into_iter()
        .map(|(_, r)| r.to_string())
        .collect();
    selective_payloads.sort();
    baseline_payloads.sort();
    assert_eq!(selective_payloads, baseline_payloads);
}

#[test]
fn anchored_chain_validates_and_hampers_rewrites() {
    // End-to-end Fig. 9: anchoring on, run long enough to merge, then
    // check the anchor is present and verifiable.
    let key = SigningKey::from_seed([2u8; 32]);
    let mut config = ChainConfig::paper_evaluation();
    config.anchoring = AnchorPolicy::MiddleSequence;
    config.retention.max_live_blocks = Some(9);
    let mut ledger = SelectiveLedger::builder(config).build();
    for i in 1..=20u64 {
        ledger
            .submit_entry(Entry::sign_data(&key, DataRecord::new("x").with("n", i)))
            .unwrap();
        ledger.seal_block(Timestamp(i * 10)).unwrap();
    }
    let anchored: Vec<_> = ledger
        .chain()
        .iter()
        .filter_map(|b| b.block().anchor().map(|a| (b.number(), *a)))
        .collect();
    assert!(!anchored.is_empty(), "no anchors embedded");
    let report = validate_chain(ledger.chain(), &ValidationOptions::default()).unwrap();
    // At least the newest anchor ranges may still be live and verified.
    let _ = report.anchors_verified;
}

//! **selective-deletion** — a full Rust implementation of *"Selective
//! Deletion in a Blockchain"* (Hillmann, Knüpfer, Heiland, Karcher;
//! ICDCS 2020 / arXiv:2101.05495).
//!
//! The paper extends any blockchain's consensus behaviour with
//! deterministic **summary blocks**: every l-th block each node locally
//! derives a block Σ that, once the chain exceeds l_max, absorbs the data
//! of the oldest sequences (keeping original block/entry numbers and
//! timestamps), after which the **genesis marker shifts** and the old
//! blocks are physically cut. Data marked by signed, authorised **deletion
//! requests** — and expired **temporary entries** — are simply *not
//! copied*, which deletes them from the distributed ledger with bounded
//! delay while hash-chain trust is preserved.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`crypto`] | `seldel-crypto` | SHA-2, HMAC, Merkle trees, Ed25519 (from scratch) |
//! | [`codec`] | `seldel-codec` | canonical encoding, YAML-subset schemas, console rendering |
//! | [`chain`] | `seldel-chain` | blocks, entries, summary records, the live chain β, pluggable `BlockStore` backends + entry index |
//! | [`core`] | `seldel-core` | the paper's contribution: [`core::SelectiveLedger`] |
//! | [`consensus`] | `seldel-consensus` | pluggable engines, quorum votes, elections |
//! | [`network`] | `seldel-network` | deterministic simnet with fault injection |
//! | [`node`] | `seldel-node` | anchor/client nodes, Σ-hash sync checks |
//! | [`sim`] | `seldel-sim` | workloads + experiments reproducing the evaluation |
//! | [`telemetry`] | `seldel-telemetry` | counters/gauges/histograms registry, hot-path spans, snapshots |
//!
//! # Quickstart
//!
//! ```
//! use selective_deletion::prelude::*;
//!
//! let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
//! let user = SigningKey::from_seed([1u8; 32]);
//!
//! ledger.submit_entry(Entry::sign_data(
//!     &user,
//!     DataRecord::new("login").with("user", "ALPHA"),
//! ))?;
//! ledger.seal_block(Timestamp(10))?;
//!
//! let target = EntryId::new(BlockNumber(1), EntryNumber(0));
//! ledger.request_deletion(&user, target, "GDPR Art. 17")?;
//! ledger.seal_block(Timestamp(20))?;
//! assert!(!ledger.is_live(target));
//! # Ok::<(), selective_deletion::core::CoreError>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `EXPERIMENTS.md` for the paper-versus-implementation comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use seldel_chain as chain;
pub use seldel_codec as codec;
pub use seldel_consensus as consensus;
pub use seldel_core as core;
pub use seldel_crypto as crypto;
pub use seldel_network as network;
pub use seldel_node as node;
pub use seldel_sim as sim;
pub use seldel_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use seldel_chain::{
        Block, BlockKind, BlockNumber, BlockStore, Blockchain, DeleteRequest, Entry, EntryId,
        EntryNumber, Expiry, FsyncPolicy, MemStore, SegStore, ShardMap, ShardedIndex,
        ShardedMempool, Timestamp,
    };
    pub use seldel_codec::{DataRecord, Value};
    pub use seldel_core::{
        AnchorPolicy, ChainConfig, CompiledPolicy, CoreError, DeletionPlan, IdleFillPolicy,
        LedgerEvent, RetentionPolicy, RetireMode, Role, RoleTable, SelectiveLedger, Selector,
        TtlClass,
    };
    pub use seldel_crypto::{SigningKey, VerifyingKey};
}

//! Quickstart: write, summarise, delete, verify.
//!
//! Run with `cargo run --example quickstart`.

use selective_deletion::prelude::*;

fn main() -> Result<(), CoreError> {
    // The paper's evaluation configuration: summary block every 3rd block,
    // l_max = 6, full compaction.
    let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
    let alice = SigningKey::from_seed([1u8; 32]);

    // 1. Write some data.
    for i in 1..=3u64 {
        ledger.submit_entry(Entry::sign_data(
            &alice,
            DataRecord::new("note").with("text", format!("entry {i}").as_str()),
        ))?;
    }
    let block = ledger.seal_block(Timestamp(10))?;
    println!("sealed block {block} with 3 entries");
    println!(
        "summary block Σ2 was derived automatically: {:?}",
        ledger.chain().get(BlockNumber(2)).map(|b| b.kind())
    );

    // 2. Request deletion of the second entry (we own it).
    let target = EntryId::new(block, EntryNumber(1));
    ledger.request_deletion(&alice, target, "no longer needed")?;
    ledger.seal_block(Timestamp(20))?;
    println!(
        "deletion marked: target live = {}, physically present = {}",
        ledger.is_live(target),
        ledger.record(target).is_some()
    );

    // 3. Let the chain run; the merge drops the record and shifts the
    //    marker ("delayed deletion", §IV-D3).
    for i in 3..=12u64 {
        ledger.seal_block(Timestamp(i * 10))?;
    }
    println!(
        "after merges: marker m = {}, physically present = {}",
        ledger.chain().marker(),
        ledger.record(target).is_some()
    );

    // 4. The neighbouring entries survived with their original ids.
    let kept = EntryId::new(block, EntryNumber(0));
    println!(
        "entry {kept} still readable: {:?}",
        ledger.record(kept).map(|r| r.to_string())
    );

    // 5. And the chain still validates from its status quo.
    let report =
        seldel_chain::validate_chain(ledger.chain(), &seldel_chain::ValidationOptions::default())
            .expect("chain is valid");
    println!(
        "validated {} live blocks, {} entry signatures, {} carried records",
        report.blocks_checked, report.entries_verified, report.records_verified
    );
    Ok(())
}

//! The paper's evaluation scenario (§V, Figs. 6–8): login auditing with
//! ALPHA, BRAVO and CHARLIE, and BRAVO's right-to-erasure request.
//!
//! Run with `cargo run --example login_audit`.

use selective_deletion::sim::LoginAudit;

fn main() {
    let mut sim = LoginAudit::paper_setup();

    println!("== Fig. 6: three login rounds, empty summary blocks ==");
    sim.run_fig6().expect("scripted run");
    print!("{}", sim.render());

    println!("\n== Fig. 7: BRAVO deletes block 3 entry 1; sequences merge ==");
    sim.run_fig7().expect("scripted run");
    print!("{}", sim.render());

    println!("\n== Fig. 8: one merge cycle later, the request itself is gone ==");
    sim.run_fig8().expect("scripted run");
    print!("{}", sim.render());

    let stats = sim.ledger().stats();
    println!(
        "\nfinal state: marker m = {}, live blocks = {}, live records = {}, \
         executed deletions = {}",
        stats.marker, stats.live_blocks, stats.live_records, stats.executed_deletions
    );
}

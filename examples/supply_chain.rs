//! Industry-4.0 example (paper §VI): products tracked along the supply
//! chain whose traces clean themselves up after the best-before date,
//! using the temporary entries of §IV-D4.
//!
//! Run with `cargo run --example supply_chain`.

use selective_deletion::chain::Timestamp;
use selective_deletion::core::ChainConfig;
use selective_deletion::sim::SupplyChain;

fn main() {
    let mut plant = SupplyChain::new(ChainConfig::paper_evaluation());

    // A perishable product and a durable one.
    plant
        .register("yogurt-42", Timestamp(80))
        .expect("register");
    plant.seal(10).expect("seal");
    plant
        .record_event("yogurt-42", "filled", "line-3")
        .expect("event");
    plant
        .record_event("yogurt-42", "cooled", "cold-store")
        .expect("event");
    plant.seal(10).expect("seal");

    plant
        .register("gearbox-7", Timestamp(1_000_000))
        .expect("register");
    plant.seal(10).expect("seal");
    plant
        .record_event("gearbox-7", "assembled", "line-9")
        .expect("event");
    plant.seal(10).expect("seal");

    println!(
        "τ = {}: live products = {:?}",
        plant.now(),
        plant.live_products()
    );
    println!(
        "  yogurt-42 trace: {} records, gearbox-7 trace: {} records",
        plant.trace_len("yogurt-42"),
        plant.trace_len("gearbox-7")
    );

    // Time passes beyond the yogurt's best-before date; merges clean up.
    for _ in 0..18 {
        plant.seal(10).expect("seal");
    }

    println!(
        "\nτ = {}: live products = {:?}",
        plant.now(),
        plant.live_products()
    );
    println!(
        "  yogurt-42 trace: {} records (self-erased), gearbox-7 trace: {} records",
        plant.trace_len("yogurt-42"),
        plant.trace_len("gearbox-7")
    );
    let stats = plant.ledger().stats();
    println!(
        "  expired records dropped so far: {}, marker m = {}",
        stats.expired_records, stats.marker
    );
}

//! Token ledger example: cohesion-guarded transfers and the §V-A
//! "Recovery" enhancement (making lost coins usable again).
//!
//! Run with `cargo run --example token_ledger`.

use selective_deletion::core::ChainConfig;
use selective_deletion::sim::TokenLedger;

fn main() {
    let mut tokens = TokenLedger::new(ChainConfig::paper_evaluation());
    for account in ["alice", "bob", "carol"] {
        tokens.open_account(account);
    }

    // Mint and trade.
    tokens.mint("alice", 100).expect("mint");
    tokens.mint("carol", 50).expect("mint");
    tokens.seal(10).expect("seal");
    tokens.transfer("alice", "bob", 40).expect("transfer");
    tokens.seal(10).expect("seal");

    println!("balances after trading:");
    for account in ["alice", "bob", "carol"] {
        println!("  {account:>6}: {}", tokens.balance(account));
    }
    println!("  circulating: {}", tokens.circulating());

    // Carol loses her key (goes inactive); alice and bob keep trading.
    for _ in 0..10 {
        tokens.transfer("alice", "bob", 1).expect("transfer");
        tokens.seal(10).expect("seal");
    }

    // The treasury sweeps inactive balances back into the system pool —
    // the paper's "Recovery: … to make lost coins usable again. It means
    // not for a single user, but for the entire blockchain system".
    let recovered = tokens.sweep_inactive(60).expect("sweep");
    tokens.seal(10).expect("seal");
    println!("\nrecovered {recovered} lost tokens from inactive accounts");
    println!("balances after recovery:");
    for account in ["alice", "bob", "carol"] {
        println!("  {account:>6}: {}", tokens.balance(account));
    }

    let stats = tokens.ledger().stats();
    println!(
        "\nchain state: marker m = {}, live blocks = {}, retired blocks = {}",
        stats.marker, stats.live_blocks, stats.retired_blocks
    );
}

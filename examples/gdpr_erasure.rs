//! GDPR right-to-erasure walkthrough (paper §II): authorisation rules,
//! semantic cohesion with co-signatures, and an admin deletion of
//! unwanted content.
//!
//! Run with `cargo run --example gdpr_erasure`.

use selective_deletion::core::{Role, RoleTable};
use selective_deletion::prelude::*;

fn main() -> Result<(), CoreError> {
    let dpo = SigningKey::from_seed([0xD0; 32]); // data-protection officer
    let alice = SigningKey::from_seed([1u8; 32]);
    let bob = SigningKey::from_seed([2u8; 32]);

    let roles = RoleTable::new().with(dpo.verifying_key(), Role::Admin);
    let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
        .roles(roles)
        .build();

    // Alice stores personal data; Bob links a follow-up record to it.
    ledger.submit_entry(Entry::sign_data(
        &alice,
        DataRecord::new("profile").with("name", "Alice A."),
    ))?;
    ledger.seal_block(Timestamp(10))?;
    let alice_profile = EntryId::new(BlockNumber(1), EntryNumber(0));

    ledger.submit_entry(Entry::sign_data_with(
        &bob,
        DataRecord::new("review").with("text", "worked with Alice"),
        None,
        vec![alice_profile],
    ))?;
    ledger.seal_block(Timestamp(20))?;

    // 1. A stranger cannot erase Alice's data (signature match fails).
    match ledger.request_deletion(&bob, alice_profile, "not mine") {
        Err(CoreError::NotAuthorized(reason)) => {
            println!("bob's deletion rejected: {reason}")
        }
        other => panic!("expected authorisation failure, got {other:?}"),
    }

    // 2. Alice herself is blocked by Bob's dependent record (§IV-D2).
    match ledger.request_deletion(&alice, alice_profile, "GDPR Art. 17") {
        Err(CoreError::Cohesion(reason)) => {
            println!("alice blocked by semantic cohesion: {reason}")
        }
        other => panic!("expected cohesion failure, got {other:?}"),
    }

    // 3. With Bob's co-signature the erasure is granted.
    let mut request = DeleteRequest::new(alice_profile, "GDPR Art. 17");
    let approval = bob.sign(&request.cosign_message());
    request = request.with_cosignature(bob.verifying_key(), approval);
    ledger.request_deletion_with(&alice, request)?;
    ledger.seal_block(Timestamp(30))?;
    println!("erasure marked with bob's approval; waiting for the merge …");

    // 4. The data disappears physically at the next merge cycle.
    for i in 4..=14u64 {
        ledger.seal_block(Timestamp(i * 10))?;
    }
    println!(
        "alice's profile physically erased: {}",
        ledger.record(alice_profile).is_none()
    );

    // 5. The DPO (admin) can erase unlawful content without ownership.
    ledger.submit_entry(Entry::sign_data(
        &bob,
        DataRecord::new("profile").with("name", "unlawful content"),
    ))?;
    let block = ledger.seal_block(Timestamp(150))?;
    let bad = EntryId::new(block, EntryNumber(0));
    ledger.request_deletion(&dpo, bad, "illegal content takedown")?;
    ledger.seal_block(Timestamp(160))?;
    println!(
        "DPO takedown accepted: target live = {} (drops at the next merge)",
        ledger.is_live(bad)
    );
    Ok(())
}

//! The maintained entry index: `EntryId → Location` for every live data
//! set.
//!
//! `Blockchain::locate` historically scanned all summary blocks
//! newest-first to find a carried record — O(live chain) per lookup. The
//! [`EntryIndex`] replaces the scan with an O(log n) `BTreeMap` lookup.
//! The chain maintains it incrementally: every pushed block is indexed,
//! every marker shift retires the entries whose holder block was cut.
//!
//! The index is **derived state**: it is rebuildable from the blocks alone
//! (see [`EntryIndex`] vs `Blockchain::rebuilt_index` in the property
//! tests) and never enters any hash or canonical encoding, so invariant I2
//! (bit-identical summary blocks across nodes) is untouched by its
//! existence.

use std::collections::BTreeMap;

use crate::block::{Block, BlockKind};
use crate::types::{BlockNumber, EntryId};

/// Where an indexed data set currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Still a data entry inside its original block (`id.block`).
    InBlock,
    /// Carried as record `slot` of summary block `holder`.
    InSummary {
        /// The summary block holding the carried record.
        holder: BlockNumber,
        /// Index of the record within the summary body.
        slot: u32,
    },
}

impl Location {
    /// The block physically holding the data set with id `id`.
    pub fn holder(&self, id: EntryId) -> BlockNumber {
        match self {
            Location::InBlock => id.block,
            Location::InSummary { holder, .. } => *holder,
        }
    }
}

/// An ordered index over every live data set (data entries in normal
/// blocks plus carried summary records). Deletion-request entries are
/// transport, not data, and are not indexed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntryIndex {
    map: BTreeMap<EntryId, Location>,
}

impl EntryIndex {
    /// An empty index.
    pub fn new() -> EntryIndex {
        EntryIndex::default()
    }

    /// The location of `id`, if indexed.
    pub fn get(&self, id: EntryId) -> Option<Location> {
        self.map.get(&id).copied()
    }

    /// Whether `id` is indexed (the data set is physically live).
    pub fn contains(&self, id: EntryId) -> bool {
        self.map.contains_key(&id)
    }

    /// Number of indexed data sets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(id, location)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Location)> + '_ {
        self.map.iter().map(|(id, loc)| (*id, *loc))
    }

    /// Inserts (or overwrites) a single location — the low-level primitive
    /// [`EntryIndex::index_block`] and the sharded index build on. Callers
    /// must apply insertions in block order so the newest-carrier-wins rule
    /// holds.
    pub fn insert(&mut self, id: EntryId, location: Location) {
        self.map.insert(id, location);
    }

    /// Indexes a block that was just appended to the chain.
    ///
    /// Data entries of normal blocks map to [`Location::InBlock`]; records
    /// of summary blocks map to [`Location::InSummary`], overwriting any
    /// older location. The overwrite mirrors the historical newest-first
    /// summary scan: the newest carrier wins, and when the older holder is
    /// pruned the entry is already pointing at the survivor.
    pub fn index_block(&mut self, block: &Block) {
        for (id, location) in block_index_pairs(block) {
            self.map.insert(id, location);
        }
    }

    /// Drops every entry whose holder block lies before `marker`.
    ///
    /// Called by `truncate_front`: data sets whose holder was cut and that
    /// were *not* re-indexed by a newer summary carrier are physically gone
    /// (deleted, expired, or simply never carried).
    pub fn retire_before(&mut self, marker: BlockNumber) {
        self.map.retain(|id, loc| loc.holder(*id) >= marker);
    }
}

/// The `(id, location)` pairs indexing `block` contributes, in entry order.
///
/// This is the single definition of "what a block adds to the index",
/// shared by [`EntryIndex::index_block`] and the sharded index
/// ([`crate::shard::ShardedIndex`]) so the two can never disagree on
/// routing inputs: data entries of normal blocks (deletion requests are
/// transport, not data), and carried records of summary blocks.
pub fn block_index_pairs(block: &Block) -> Vec<(EntryId, Location)> {
    let mut pairs = Vec::new();
    match block.kind() {
        BlockKind::Normal => {
            for (i, entry) in block.entries().iter().enumerate() {
                if entry.is_delete_request() {
                    continue;
                }
                let id = EntryId::new(block.number(), crate::types::EntryNumber(i as u32));
                pairs.push((id, Location::InBlock));
            }
        }
        BlockKind::Summary => {
            for (slot, record) in block.summary_records().iter().enumerate() {
                pairs.push((
                    record.origin(),
                    Location::InSummary {
                        holder: block.number(),
                        slot: slot as u32,
                    },
                ));
            }
        }
        BlockKind::Genesis | BlockKind::Empty => {}
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::entry::{DeleteRequest, Entry};
    use crate::summary::SummaryRecord;
    use crate::types::{EntryNumber, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key() -> SigningKey {
        SigningKey::from_seed([3u8; 32])
    }

    fn data_entry(n: u64) -> Entry {
        Entry::sign_data(&key(), DataRecord::new("x").with("n", n))
    }

    fn normal_block(number: u64, entries: Vec<Entry>) -> Block {
        Block::new(
            BlockNumber(number),
            Timestamp(number * 10),
            seldel_crypto::Digest32::ZERO,
            BlockBody::Normal { entries },
            Seal::Deterministic,
        )
    }

    fn summary_block(number: u64, records: Vec<SummaryRecord>) -> Block {
        Block::new(
            BlockNumber(number),
            Timestamp(number * 10),
            seldel_crypto::Digest32::ZERO,
            BlockBody::Summary {
                records,
                deletions: vec![],
                anchor: None,
            },
            Seal::Deterministic,
        )
    }

    #[test]
    fn indexes_data_entries_but_not_delete_requests() {
        let mut index = EntryIndex::new();
        let entries = vec![
            data_entry(1),
            Entry::sign_delete(
                &key(),
                DeleteRequest::new(EntryId::new(BlockNumber(1), EntryNumber(0)), ""),
            ),
            data_entry(2),
        ];
        index.index_block(&normal_block(1, entries));
        assert_eq!(index.len(), 2);
        assert_eq!(
            index.get(EntryId::new(BlockNumber(1), EntryNumber(0))),
            Some(Location::InBlock)
        );
        assert!(!index.contains(EntryId::new(BlockNumber(1), EntryNumber(1))));
        assert!(index.contains(EntryId::new(BlockNumber(1), EntryNumber(2))));
    }

    #[test]
    fn summary_records_overwrite_and_newest_wins() {
        let mut index = EntryIndex::new();
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));
        index.index_block(&normal_block(1, vec![data_entry(1)]));

        let record = SummaryRecord::from_entry(&data_entry(1), id, Timestamp(10)).unwrap();
        index.index_block(&summary_block(2, vec![record.clone()]));
        assert_eq!(
            index.get(id),
            Some(Location::InSummary {
                holder: BlockNumber(2),
                slot: 0
            })
        );

        // A later re-carry moves the pointer to the newest holder.
        index.index_block(&summary_block(5, vec![record]));
        assert_eq!(
            index.get(id).unwrap().holder(id),
            BlockNumber(5),
            "newest carrier must win"
        );
    }

    #[test]
    fn retire_drops_pruned_holders_only() {
        let mut index = EntryIndex::new();
        let carried = EntryId::new(BlockNumber(1), EntryNumber(0));
        let gone = EntryId::new(BlockNumber(2), EntryNumber(0));
        index.index_block(&normal_block(1, vec![data_entry(1)]));
        index.index_block(&normal_block(2, vec![data_entry(2)]));
        let record = SummaryRecord::from_entry(&data_entry(1), carried, Timestamp(10)).unwrap();
        index.index_block(&summary_block(5, vec![record]));
        index.index_block(&normal_block(6, vec![data_entry(3)]));

        // Prune everything below 5: entry 2:0 was never carried → gone;
        // 1:0 survives via its summary holder; 6:0 untouched.
        index.retire_before(BlockNumber(5));
        assert!(!index.contains(gone));
        assert_eq!(index.get(carried).unwrap().holder(carried), BlockNumber(5));
        assert!(index.contains(EntryId::new(BlockNumber(6), EntryNumber(0))));
        assert_eq!(index.len(), 2);
        assert_eq!(index.iter().count(), 2);
    }
}

//! Test support for exercising durable stores and the shard subsystem.
//!
//! Durable-storage tests across the workspace (and downstream users of
//! [`FileStore`](crate::fstore::FileStore)) all need the same thing: a
//! unique scratch directory that exists for one test and disappears
//! afterwards, even when the test fails. Shard-fairness tests likewise
//! all need authors known to route to distinct mempool shards. This
//! module holds the one shared implementation of each so the copies
//! cannot drift between crates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shard::ShardMap;

/// A unique scratch directory under the system temp dir, removed on drop.
///
/// Uniqueness combines the process id, a caller-supplied tag and a global
/// sequence counter, so concurrent tests — and repeated runs of the same
/// test binary — never collide. The directory itself is *not* created:
/// [`FileStore::open`](crate::fstore::FileStore::open) (and `create_dir_all`
/// generally) handles that, and starting from a non-existent path is
/// exactly the state the durable-store tests want.
#[derive(Debug)]
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// Reserves a fresh scratch path tagged `tag`, wiping any leftover
    /// from a previous crashed run.
    pub fn new(tag: &str) -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "seldel-scratch-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    /// The scratch path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The first `n` signing-key seeds (as `[seed; 32]` byte fills) whose
/// authors route to pairwise **distinct** shards of `map`.
///
/// Mempool fairness is per shard, not per author: a fairness test that
/// picks colliding authors tests nothing. Every such test (chain, core,
/// node) selects its authors through this one probe.
///
/// # Panics
///
/// Panics when fewer than `n` distinct shards are reachable from the 255
/// probed seeds (only plausible for `n` close to the shard count).
pub fn distinct_shard_author_seeds(map: ShardMap, n: usize) -> Vec<u8> {
    let mut seeds = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    for seed in 1u8..=255 {
        let author = seldel_crypto::SigningKey::from_seed([seed; 32]).verifying_key();
        if used.insert(map.shard_of_author(&author)) {
            seeds.push(seed);
            if seeds.len() == n {
                break;
            }
        }
    }
    assert_eq!(seeds.len(), n, "not enough distinct shards reachable");
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_cleaned() {
        let a = ScratchDir::new("t");
        let b = ScratchDir::new("t");
        assert_ne!(a.path(), b.path());
        std::fs::create_dir_all(a.path()).unwrap();
        std::fs::write(a.path().join("x"), b"y").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop must remove the directory");
    }
}

//! O(log n) membership and absence proofs over the block commitments.
//!
//! Every entry-bearing block commits to its payload through a Merkle root
//! in the header ([`crate::block::BlockBody::payload_leaves`]), so a prover
//! holding the chain can hand a light verifier — who keeps only the
//! **header chain** — a logarithmic-size certificate of where a data set
//! lives, or that it was deleted:
//!
//! * [`prove_live`] shows the data set is still in the chain, either at its
//!   original position ([`EntryProof::LiveInBlock`]) or carried forward
//!   inside a summary block ([`EntryProof::LiveInSummary`]).
//! * [`prove_deleted`] shows the data set is gone: a deletion **tombstone**
//!   inside a summary block proves a deletion request was executed
//!   ([`EntryProof::DeletionExecuted`]); failing that, a still-pending
//!   deletion-request entry yields [`EntryProof::DeletionRequested`].
//!
//! [`verify_proof`] needs nothing but a linkage-checked [`HeaderChain`]:
//! it re-walks the audit path against the holder header's payload
//! commitment, decodes the leaf, and checks the leaf actually names the
//! claimed data set. Proofs are [`Codec`]-serialisable so they can travel
//! between nodes — and so the adversarial tests can mutate their bytes.

use std::fmt;

use seldel_codec::{Codec, DecodeError, Decoder, Encoder};
use seldel_crypto::{Digest32, MerkleProof, Side, SignatureError};

use crate::block::{
    BlockHeader, BlockKind, SUMMARY_LEAF_ANCHOR, SUMMARY_LEAF_RECORD, SUMMARY_LEAF_TOMBSTONE,
};
use crate::chain::Blockchain;
use crate::entry::Entry;
use crate::error::ChainError;
use crate::store::BlockStore;
use crate::summary::SummaryRecord;
use crate::types::{BlockNumber, EntryId};

/// One committed leaf position: which block holds it, the raw leaf bytes,
/// and the audit path from the leaf to that block's payload commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleSpot {
    /// The block whose payload tree contains the leaf.
    pub holder: BlockNumber,
    /// The leaf payload exactly as committed (including any population
    /// prefix for summary leaves).
    pub leaf: Vec<u8>,
    /// The audit path from the leaf to `holder`'s `payload_hash`.
    pub path: MerkleProof,
}

impl MerkleSpot {
    /// Whether the audit path connects the leaf to the given root.
    pub fn connects_to(&self, root: &Digest32) -> bool {
        self.path.verify(&self.leaf, root)
    }
}

impl Codec for MerkleSpot {
    fn encode(&self, enc: &mut Encoder) {
        self.holder.encode(enc);
        enc.put_bytes(&self.leaf);
        enc.put_len(self.path.index());
        enc.put_len(self.path.path_len());
        for (side, digest) in self.path.path() {
            enc.put_u8(match side {
                Side::Left => 0,
                Side::Right => 1,
            });
            enc.put_raw(digest.as_bytes());
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let holder = BlockNumber::decode(dec)?;
        let leaf = dec.take_bytes()?;
        let index = dec.take_len()?;
        let path_len = dec.take_len()?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            let side = match dec.take_u8()? {
                0 => Side::Left,
                1 => Side::Right,
                tag => {
                    return Err(DecodeError::InvalidTag {
                        what: "MerkleSpot.side",
                        tag,
                    })
                }
            };
            let digest: [u8; 32] = dec.take_array()?;
            path.push((side, Digest32::from(digest)));
        }
        Ok(MerkleSpot {
            holder,
            leaf,
            path: MerkleProof::from_parts(index, path),
        })
    }
}

/// A verifiable certificate about one data set's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryProof {
    /// The entry is live at its original position: the leaf is the entry's
    /// canonical bytes inside the normal block it was integrated into.
    LiveInBlock(MerkleSpot),
    /// The data set is live as a carried record: the leaf is a
    /// [`SUMMARY_LEAF_RECORD`]-prefixed [`SummaryRecord`] whose origin id
    /// is the proven entry.
    LiveInSummary(MerkleSpot),
    /// Deletion was requested but not yet executed: the leaf is a live
    /// deletion-request entry targeting the proven id.
    DeletionRequested(MerkleSpot),
    /// Deletion was executed: the leaf is a [`SUMMARY_LEAF_TOMBSTONE`]
    /// carried by a summary block, naming the proven id.
    DeletionExecuted(MerkleSpot),
}

impl EntryProof {
    /// The committed leaf position this proof rests on.
    pub fn spot(&self) -> &MerkleSpot {
        match self {
            EntryProof::LiveInBlock(spot)
            | EntryProof::LiveInSummary(spot)
            | EntryProof::DeletionRequested(spot)
            | EntryProof::DeletionExecuted(spot) => spot,
        }
    }

    /// Whether this proof claims the data set is still readable.
    pub fn is_live(&self) -> bool {
        matches!(
            self,
            EntryProof::LiveInBlock(_) | EntryProof::LiveInSummary(_)
        )
    }

    const fn tag(&self) -> u8 {
        match self {
            EntryProof::LiveInBlock(_) => 0,
            EntryProof::LiveInSummary(_) => 1,
            EntryProof::DeletionRequested(_) => 2,
            EntryProof::DeletionExecuted(_) => 3,
        }
    }
}

impl Codec for EntryProof {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        self.spot().encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = dec.take_u8()?;
        let spot = MerkleSpot::decode(dec)?;
        match tag {
            0 => Ok(EntryProof::LiveInBlock(spot)),
            1 => Ok(EntryProof::LiveInSummary(spot)),
            2 => Ok(EntryProof::DeletionRequested(spot)),
            3 => Ok(EntryProof::DeletionExecuted(spot)),
            tag => Err(DecodeError::InvalidTag {
                what: "EntryProof",
                tag,
            }),
        }
    }
}

impl fmt::Display for EntryProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            EntryProof::LiveInBlock(_) => "live-in-block",
            EntryProof::LiveInSummary(_) => "live-in-summary",
            EntryProof::DeletionRequested(_) => "deletion-requested",
            EntryProof::DeletionExecuted(_) => "deletion-executed",
        };
        write!(
            f,
            "{what} @ block {} ({} path steps)",
            self.spot().holder,
            self.spot().path.path_len()
        )
    }
}

/// Why a proof was rejected or could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// [`prove_live`]: the data set is not live anywhere in the chain.
    NotLive(EntryId),
    /// [`prove_deleted`]: no tombstone and no pending request names the id.
    NotDeleted(EntryId),
    /// The proof's holder block is outside the verifier's header chain.
    UnknownHolder(BlockNumber),
    /// The holder block's kind cannot carry this proof variant.
    KindMismatch {
        /// The holder block.
        number: BlockNumber,
        /// The kind the variant requires.
        expected: BlockKind,
        /// The kind the header chain records.
        found: BlockKind,
    },
    /// The audit path does not connect the leaf to the header commitment.
    PathMismatch {
        /// The holder block whose commitment the path failed to reach.
        number: BlockNumber,
    },
    /// The leaf bytes do not decode as the population the variant claims.
    LeafUndecodable {
        /// The holder block.
        number: BlockNumber,
    },
    /// The leaf decodes but names a different data set (or sits at the
    /// wrong position) than the one being proven.
    WrongSubject {
        /// The id the verifier asked about.
        expected: EntryId,
    },
    /// The carried author signature inside the leaf failed verification.
    BadSignature(SignatureError),
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NotLive(id) => write!(f, "data set {id} is not live"),
            ProofError::NotDeleted(id) => {
                write!(f, "no tombstone or pending request for data set {id}")
            }
            ProofError::UnknownHolder(number) => {
                write!(f, "holder block {number} is not in the header chain")
            }
            ProofError::KindMismatch {
                number,
                expected,
                found,
            } => write!(
                f,
                "holder block {number} is {found}, proof variant requires {expected}"
            ),
            ProofError::PathMismatch { number } => {
                write!(f, "audit path does not reach block {number}'s commitment")
            }
            ProofError::LeafUndecodable { number } => {
                write!(f, "leaf bytes from block {number} do not decode")
            }
            ProofError::WrongSubject { expected } => {
                write!(f, "proof leaf does not name data set {expected}")
            }
            ProofError::BadSignature(err) => {
                write!(f, "carried signature invalid: {err}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// The verifier's view: live block headers with their linkage checked.
///
/// A header chain is all a light client keeps (§V-B3's joining node before
/// it fetches bodies): 32-byte commitments instead of payloads. Building
/// one via [`HeaderChain::new`] re-checks contiguity, hash links and the
/// summary-timestamp rule, so a forged header cannot be smuggled in and
/// then "verified" against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderChain {
    headers: Vec<BlockHeader>,
}

impl HeaderChain {
    /// Builds a header chain from raw headers, checking linkage.
    ///
    /// # Errors
    ///
    /// [`ChainError::EmptyChain`] for no headers, otherwise the first
    /// linkage violation found ([`ChainError::NonContiguousNumber`],
    /// [`ChainError::PrevHashMismatch`],
    /// [`ChainError::SummaryTimestampMismatch`],
    /// [`ChainError::TimestampRegression`] or
    /// [`ChainError::GenesisMisplaced`]).
    pub fn new(headers: Vec<BlockHeader>) -> Result<HeaderChain, ChainError> {
        if headers.is_empty() {
            return Err(ChainError::EmptyChain);
        }
        for pair in headers.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            let number = next.number;
            if number != prev.number.next() {
                return Err(ChainError::NonContiguousNumber {
                    expected: prev.number.next(),
                    found: number,
                });
            }
            if next.prev_hash != prev.hash() {
                return Err(ChainError::PrevHashMismatch { number });
            }
            match next.kind {
                BlockKind::Summary => {
                    if next.timestamp != prev.timestamp {
                        return Err(ChainError::SummaryTimestampMismatch { number });
                    }
                }
                _ => {
                    if next.timestamp < prev.timestamp {
                        return Err(ChainError::TimestampRegression { number });
                    }
                }
            }
            if next.kind == BlockKind::Genesis {
                return Err(ChainError::GenesisMisplaced { number });
            }
        }
        Ok(HeaderChain { headers })
    }

    /// Extracts the live header chain from a full chain.
    ///
    /// The blocks were linkage-checked when they entered the chain, so no
    /// re-validation happens here.
    pub fn from_chain<S: BlockStore>(chain: &Blockchain<S>) -> HeaderChain {
        HeaderChain {
            headers: chain.iter().map(|b| b.header().clone()).collect(),
        }
    }

    /// The header of block `number`, if it is in the live range.
    pub fn header_of(&self, number: BlockNumber) -> Option<&BlockHeader> {
        let first = self.headers.first()?.number;
        let offset = usize::try_from(number.value().checked_sub(first.value())?).ok()?;
        let header = self.headers.get(offset)?;
        debug_assert_eq!(header.number, number, "headers are contiguous");
        Some(header)
    }

    /// Number of live headers.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether the chain holds no headers (only constructible via
    /// [`HeaderChain::from_chain`] on an impossible empty chain).
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }
}

/// Proves that data set `id` is live, at its original position or carried
/// inside a summary block.
///
/// The lookup is O(log n) through the maintained entry index and the audit
/// path is logarithmic in the holder block's leaf count.
///
/// # Errors
///
/// [`ProofError::NotLive`] when the id resolves nowhere.
pub fn prove_live<S: BlockStore>(
    chain: &Blockchain<S>,
    id: EntryId,
) -> Result<EntryProof, ProofError> {
    match chain.locate(id) {
        Some(located) if located.is_in_block() => {
            let block = located.holder();
            let index = id.entry.value() as usize;
            let tree = block
                .body()
                .payload_tree()
                .expect("normal blocks have a payload tree");
            let path = tree.prove(index).expect("located entry is in bounds");
            Ok(EntryProof::LiveInBlock(MerkleSpot {
                holder: block.number(),
                leaf: located.entry().expect("slot in range").to_canonical_bytes(),
                path,
            }))
        }
        Some(located) => {
            let block = located.holder();
            let index = block
                .summary_records()
                .iter()
                .position(|r| r.origin() == id)
                .expect("located record is present");
            let tree = block
                .body()
                .payload_tree()
                .expect("summary blocks have a payload tree");
            let path = tree.prove(index).expect("record index is in bounds");
            let mut leaf = vec![SUMMARY_LEAF_RECORD];
            leaf.extend_from_slice(
                &located
                    .record()
                    .expect("slot in range")
                    .to_canonical_bytes(),
            );
            Ok(EntryProof::LiveInSummary(MerkleSpot {
                holder: block.number(),
                leaf,
                path,
            }))
        }
        None => Err(ProofError::NotLive(id)),
    }
}

/// Proves that data set `id` was deleted (tombstone in a summary block) —
/// or, failing that, that a deletion request for it is pending.
///
/// Tombstone lookup binary-searches each live summary block's sorted
/// deletion list; the resulting audit path is logarithmic in the holder's
/// leaf count.
///
/// # Errors
///
/// [`ProofError::NotDeleted`] when no summary block tombstones the id and
/// no live deletion-request entry targets it.
pub fn prove_deleted<S: BlockStore>(
    chain: &Blockchain<S>,
    id: EntryId,
) -> Result<EntryProof, ProofError> {
    // Executed deletion: a tombstone in any live Σ. Later summaries carry
    // the union of their predecessors' tombstones, so scanning from the tip
    // finds the most durable witness first.
    for block in chain.iter().collect::<Vec<_>>().into_iter().rev() {
        if block.kind() != BlockKind::Summary {
            continue;
        }
        if let Ok(pos) = block.deletions().binary_search(&id) {
            let index = block.summary_records().len() + pos;
            let tree = block
                .body()
                .payload_tree()
                .expect("summary blocks have a payload tree");
            let path = tree.prove(index).expect("tombstone index is in bounds");
            let mut leaf = vec![SUMMARY_LEAF_TOMBSTONE];
            leaf.extend_from_slice(&id.to_canonical_bytes());
            return Ok(EntryProof::DeletionExecuted(MerkleSpot {
                holder: block.number(),
                leaf,
                path,
            }));
        }
    }
    // Pending deletion: a live delete-request entry targeting the id.
    for block in chain.iter() {
        for (pos, entry) in block.entries().iter().enumerate() {
            let targets_id = entry
                .payload()
                .as_delete()
                .is_some_and(|req| req.target() == id);
            if !targets_id {
                continue;
            }
            let tree = block
                .body()
                .payload_tree()
                .expect("normal blocks have a payload tree");
            let path = tree.prove(pos).expect("entry index is in bounds");
            return Ok(EntryProof::DeletionRequested(MerkleSpot {
                holder: block.number(),
                leaf: entry.to_canonical_bytes(),
                path,
            }));
        }
    }
    Err(ProofError::NotDeleted(id))
}

/// Verifies an [`EntryProof`] about `id` against a header chain alone.
///
/// Checks, in order: the holder block exists in the header chain and has
/// the kind the variant requires; the audit path connects the leaf bytes to
/// the holder's payload commitment; the leaf decodes as the claimed
/// population; and the decoded leaf actually names `id` (for
/// [`EntryProof::LiveInBlock`], the leaf position itself must equal the
/// id's entry number — entry leaves do not repeat their position). Live
/// and requested variants additionally verify the carried author
/// signature, so a committed-but-forged entry cannot be presented.
///
/// # Errors
///
/// The first [`ProofError`] encountered; `Ok(())` means the proof is sound
/// relative to the header chain.
pub fn verify_proof(
    proof: &EntryProof,
    id: EntryId,
    headers: &HeaderChain,
) -> Result<(), ProofError> {
    let spot = proof.spot();
    let header = headers
        .header_of(spot.holder)
        .ok_or(ProofError::UnknownHolder(spot.holder))?;

    let expected_kind = match proof {
        EntryProof::LiveInBlock(_) | EntryProof::DeletionRequested(_) => BlockKind::Normal,
        EntryProof::LiveInSummary(_) | EntryProof::DeletionExecuted(_) => BlockKind::Summary,
    };
    if header.kind != expected_kind {
        return Err(ProofError::KindMismatch {
            number: spot.holder,
            expected: expected_kind,
            found: header.kind,
        });
    }
    if !spot.connects_to(&header.payload_hash) {
        return Err(ProofError::PathMismatch {
            number: spot.holder,
        });
    }

    match proof {
        EntryProof::LiveInBlock(spot) => {
            let entry = Entry::from_canonical_bytes(&spot.leaf).map_err(|_| {
                ProofError::LeafUndecodable {
                    number: spot.holder,
                }
            })?;
            if spot.holder != id.block || spot.path.index() != id.entry.value() as usize {
                return Err(ProofError::WrongSubject { expected: id });
            }
            entry.verify().map_err(ProofError::BadSignature)?;
        }
        EntryProof::LiveInSummary(spot) => {
            let record = decode_prefixed::<SummaryRecord>(&spot.leaf, SUMMARY_LEAF_RECORD).ok_or(
                ProofError::LeafUndecodable {
                    number: spot.holder,
                },
            )?;
            if record.origin() != id {
                return Err(ProofError::WrongSubject { expected: id });
            }
            record.verify().map_err(ProofError::BadSignature)?;
        }
        EntryProof::DeletionRequested(spot) => {
            let entry = Entry::from_canonical_bytes(&spot.leaf).map_err(|_| {
                ProofError::LeafUndecodable {
                    number: spot.holder,
                }
            })?;
            let targets_id = entry
                .payload()
                .as_delete()
                .is_some_and(|req| req.target() == id);
            if !targets_id {
                return Err(ProofError::WrongSubject { expected: id });
            }
            entry.verify().map_err(ProofError::BadSignature)?;
        }
        EntryProof::DeletionExecuted(spot) => {
            let tombstone = decode_prefixed::<EntryId>(&spot.leaf, SUMMARY_LEAF_TOMBSTONE).ok_or(
                ProofError::LeafUndecodable {
                    number: spot.holder,
                },
            )?;
            if tombstone != id {
                return Err(ProofError::WrongSubject { expected: id });
            }
        }
    }
    Ok(())
}

/// Decodes a population-prefixed summary leaf; `None` on any mismatch.
fn decode_prefixed<T: Codec>(leaf: &[u8], prefix: u8) -> Option<T> {
    debug_assert!([
        SUMMARY_LEAF_RECORD,
        SUMMARY_LEAF_TOMBSTONE,
        SUMMARY_LEAF_ANCHOR
    ]
    .contains(&prefix));
    let (first, rest) = leaf.split_first()?;
    if *first != prefix {
        return None;
    }
    T::from_canonical_bytes(rest).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBody, Seal};
    use crate::entry::DeleteRequest;
    use crate::types::{EntryNumber, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    /// Chain fixture exercising every proof variant:
    /// * blocks 1–2: two data entries each;
    /// * block 3: a delete request targeting 1:0;
    /// * block 4: Σ carrying 1:1 as a record, tombstoning 1:0.
    fn fixture() -> Blockchain {
        let mut chain = Blockchain::new(Block::genesis("proof", Timestamp(0)));
        for b in 1..=2u64 {
            let prev = chain.tip().hash();
            let entries: Vec<Entry> = (0..2)
                .map(|i| {
                    Entry::sign_data(
                        &key(b as u8),
                        DataRecord::new("x").with("n", b * 10 + i as u64),
                    )
                })
                .collect();
            chain
                .push(Block::new(
                    BlockNumber(b),
                    Timestamp(b * 10),
                    prev,
                    BlockBody::Normal { entries },
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(3),
                Timestamp(30),
                prev,
                BlockBody::Normal {
                    entries: vec![Entry::sign_delete(
                        &key(9),
                        DeleteRequest::new(target, "gdpr"),
                    )],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        let carried = EntryId::new(BlockNumber(1), EntryNumber(1));
        let record = SummaryRecord::from_entry(
            chain.get(BlockNumber(1)).unwrap().entries().get(1).unwrap(),
            carried,
            Timestamp(10),
        )
        .unwrap();
        let prev = chain.tip().hash();
        let ts = chain.tip().timestamp();
        chain
            .push(Block::new(
                BlockNumber(4),
                ts,
                prev,
                BlockBody::Summary {
                    records: vec![record],
                    deletions: vec![target],
                    anchor: None,
                },
                Seal::Deterministic,
            ))
            .unwrap();
        chain
    }

    #[test]
    fn live_in_block_round_trips() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        let id = EntryId::new(BlockNumber(2), EntryNumber(1));
        let proof = prove_live(&chain, id).unwrap();
        assert!(matches!(proof, EntryProof::LiveInBlock(_)));
        assert!(proof.is_live());
        verify_proof(&proof, id, &headers).unwrap();
    }

    #[test]
    fn live_in_summary_round_trips() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        let id = EntryId::new(BlockNumber(1), EntryNumber(1));
        // The record is carried by Σ4 — prune the origin so the index
        // resolves through the summary.
        let mut chain = chain;
        chain.truncate_front(BlockNumber(2)).unwrap();
        let proof = prove_live(&chain, id).unwrap();
        assert!(matches!(proof, EntryProof::LiveInSummary(_)));
        assert_eq!(proof.spot().holder, BlockNumber(4));
        // The verifier's headers may predate the prune — commitments are
        // position-stable, so the proof still verifies.
        verify_proof(&proof, id, &headers).unwrap();
        verify_proof(&proof, id, &HeaderChain::from_chain(&chain)).unwrap();
    }

    #[test]
    fn deletion_executed_round_trips() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));
        let proof = prove_deleted(&chain, id).unwrap();
        assert!(matches!(proof, EntryProof::DeletionExecuted(_)));
        assert!(!proof.is_live());
        verify_proof(&proof, id, &headers).unwrap();
    }

    #[test]
    fn deletion_requested_round_trips() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        // 2:0 has a pending request? No — only 1:0 does, and it is already
        // tombstoned (executed wins). Ask about an id with only a request:
        // build one more request for 2:0.
        let mut chain = chain;
        let target = EntryId::new(BlockNumber(2), EntryNumber(0));
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(5),
                Timestamp(50),
                prev,
                BlockBody::Normal {
                    entries: vec![Entry::sign_delete(&key(9), DeleteRequest::new(target, ""))],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        let proof = prove_deleted(&chain, target).unwrap();
        assert!(matches!(proof, EntryProof::DeletionRequested(_)));
        // Stale headers lack block 5.
        assert_eq!(
            verify_proof(&proof, target, &headers),
            Err(ProofError::UnknownHolder(BlockNumber(5)))
        );
        verify_proof(&proof, target, &HeaderChain::from_chain(&chain)).unwrap();
    }

    #[test]
    fn proofs_bind_to_the_claimed_id() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        let id = EntryId::new(BlockNumber(2), EntryNumber(1));
        let other = EntryId::new(BlockNumber(2), EntryNumber(0));
        let proof = prove_live(&chain, id).unwrap();
        assert_eq!(
            verify_proof(&proof, other, &headers),
            Err(ProofError::WrongSubject { expected: other })
        );
        let tombstoned = EntryId::new(BlockNumber(1), EntryNumber(0));
        let del = prove_deleted(&chain, tombstoned).unwrap();
        assert_eq!(
            verify_proof(&del, other, &headers),
            Err(ProofError::WrongSubject { expected: other })
        );
    }

    #[test]
    fn variant_swap_is_rejected_by_kind() {
        let chain = fixture();
        let headers = HeaderChain::from_chain(&chain);
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));
        let proof = prove_deleted(&chain, id).unwrap();
        // Re-label the executed deletion as a live-in-summary claim: same
        // spot, same holder kind — the leaf population prefix must veto it.
        let forged = EntryProof::LiveInSummary(proof.spot().clone());
        assert_eq!(
            verify_proof(&forged, id, &headers),
            Err(ProofError::LeafUndecodable {
                number: BlockNumber(4)
            })
        );
        // And as a live-in-block claim: the holder kind vetoes it first.
        let forged = EntryProof::LiveInBlock(proof.spot().clone());
        assert_eq!(
            verify_proof(&forged, id, &headers),
            Err(ProofError::KindMismatch {
                number: BlockNumber(4),
                expected: BlockKind::Normal,
                found: BlockKind::Summary
            })
        );
    }

    #[test]
    fn proof_codec_round_trips() {
        let chain = fixture();
        for id in [
            EntryId::new(BlockNumber(2), EntryNumber(0)),
            EntryId::new(BlockNumber(1), EntryNumber(1)),
        ] {
            let proof = prove_live(&chain, id).unwrap();
            let bytes = proof.to_canonical_bytes();
            let decoded = EntryProof::from_canonical_bytes(&bytes).unwrap();
            assert_eq!(decoded, proof);
        }
        let deleted = prove_deleted(&chain, EntryId::new(BlockNumber(1), EntryNumber(0))).unwrap();
        let decoded = EntryProof::from_canonical_bytes(&deleted.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, deleted);
    }

    #[test]
    fn prove_errors_on_absent_subjects() {
        let mut chain = fixture();
        // Execute the prune that accompanies Σ4's merge — before it, the
        // tombstoned entry is transitionally still readable in block 1.
        chain.truncate_front(BlockNumber(2)).unwrap();
        let ghost = EntryId::new(BlockNumber(7), EntryNumber(3));
        assert_eq!(prove_live(&chain, ghost), Err(ProofError::NotLive(ghost)));
        assert_eq!(
            prove_deleted(&chain, ghost),
            Err(ProofError::NotDeleted(ghost))
        );
        // The tombstoned entry is not live; the live entry is not deleted.
        let gone = EntryId::new(BlockNumber(1), EntryNumber(0));
        assert_eq!(prove_live(&chain, gone), Err(ProofError::NotLive(gone)));
        let live = EntryId::new(BlockNumber(2), EntryNumber(1));
        assert_eq!(
            prove_deleted(&chain, live),
            Err(ProofError::NotDeleted(live))
        );
    }

    #[test]
    fn header_chain_rejects_forgeries() {
        let chain = fixture();
        let headers: Vec<BlockHeader> = chain.iter().map(|b| b.header().clone()).collect();
        HeaderChain::new(headers.clone()).unwrap();
        assert_eq!(HeaderChain::new(vec![]), Err(ChainError::EmptyChain));
        // Gap in numbering.
        let mut gapped = headers.clone();
        gapped.remove(2);
        assert!(matches!(
            HeaderChain::new(gapped),
            Err(ChainError::NonContiguousNumber { .. })
        ));
        // Nudged timestamp breaks the hash link to the successor.
        let mut nudged = headers.clone();
        nudged[1].timestamp = Timestamp(999);
        assert!(matches!(
            HeaderChain::new(nudged),
            Err(ChainError::PrevHashMismatch { .. })
        ));
    }

    #[test]
    fn header_of_respects_pruned_offsets() {
        let mut chain = fixture();
        chain.truncate_front(BlockNumber(3)).unwrap();
        let headers = HeaderChain::from_chain(&chain);
        assert_eq!(headers.len(), 2);
        assert!(headers.header_of(BlockNumber(2)).is_none());
        assert_eq!(
            headers.header_of(BlockNumber(4)).unwrap().number,
            BlockNumber(4)
        );
        assert!(headers.header_of(BlockNumber(5)).is_none());
    }
}

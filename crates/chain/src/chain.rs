//! The live blockchain β: a contiguous run of blocks starting at the
//! shifting genesis marker `m`.
//!
//! Block numbers never restart — after pruning, the front of the store is
//! simply a later number. "A Marker m is used to indicate the shifting
//! Genesis Block, holding the block number" (§IV-C); here the marker is the
//! number of the first retained block.
//!
//! Storage is pluggable ([`BlockStore`]; see [`crate::store`]) and the
//! chain maintains two derived structures incrementally:
//!
//! * a [`ShardedIndex`] (the [`EntryIndex`] partitioned by entry id; see
//!   [`crate::shard`]) mapping every live data set to its holder block, so
//!   [`Blockchain::locate`] is O(log n/shards) instead of a full summary
//!   scan, batched [`Blockchain::locate_many`] queries are answered
//!   shard-parallel, and recovery replays rebuild the shards concurrently;
//! * a cached digest per stored block ([`SealedBlock`]), computed once at
//!   push, so linkage checks, validation, summary derivation and Σ-hash
//!   sync checks never re-hash an immutable block.
//!
//! Both are derived state: rebuildable from the blocks, never hashed
//! (invariant I2 is untouched by indexes and shard counts alike).

use seldel_codec::{Codec, DataRecord};

use crate::block::{Block, BlockKind};
use crate::entry::{Entry, EntryPayload};
use crate::error::ChainError;
use crate::index::{EntryIndex, Location};
use crate::shard::{ShardMap, ShardedIndex, DEFAULT_SHARD_COUNT};
use crate::store::{BlockRef, BlockStore, MemStore, SealedBlock};
use crate::summary::SummaryRecord;
use crate::types::{BlockNumber, EntryId, EntryNumber};

/// Batches smaller than this answer [`Blockchain::locate_many`] serially:
/// per-lookup cost is well under a microsecond, so scoped-thread overhead
/// only pays off for bulk audits.
const LOCATE_MANY_PARALLEL_MIN_IDS: usize = 1024;

/// The slot inside the holder block a located data set occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocatedSlot {
    /// Entry `i` of a live normal block.
    Entry(u32),
    /// Carried record `i` of a summary block.
    Record(u32),
}

/// Where a data set currently lives in the chain.
///
/// Holds a guard on the containing block ([`BlockRef`]) plus the slot the
/// data occupies, so paged backends can hand out cache-owned blocks
/// without copying the whole chain into memory. Accessors expose the
/// entry / record / data-record views the old enum variants carried.
#[derive(Debug, Clone)]
pub struct Located<'a> {
    holder: BlockRef<'a>,
    slot: LocatedSlot,
}

impl<'a> Located<'a> {
    fn in_block(holder: BlockRef<'a>, entry: u32) -> Located<'a> {
        Located {
            holder,
            slot: LocatedSlot::Entry(entry),
        }
    }

    fn in_summary(holder: BlockRef<'a>, record: u32) -> Located<'a> {
        Located {
            holder,
            slot: LocatedSlot::Record(record),
        }
    }

    /// Whether the data set is still inside its original (live) block.
    pub fn is_in_block(&self) -> bool {
        matches!(self.slot, LocatedSlot::Entry(_))
    }

    /// Whether the data set was carried forward into a summary block.
    pub fn is_in_summary(&self) -> bool {
        matches!(self.slot, LocatedSlot::Record(_))
    }

    /// The original entry, when the data set is still in its live block.
    pub fn entry(&self) -> Option<&Entry> {
        match self.slot {
            LocatedSlot::Entry(i) => self.holder.entries().get(i as usize),
            LocatedSlot::Record(_) => None,
        }
    }

    /// The carried record, when the data set lives in a summary block.
    pub fn record(&self) -> Option<&SummaryRecord> {
        match self.slot {
            LocatedSlot::Entry(_) => None,
            LocatedSlot::Record(i) => self.holder.summary_records().get(i as usize),
        }
    }

    /// The data record, regardless of where it lives (deletion-request
    /// entries have no data record).
    pub fn data(&self) -> Option<&DataRecord> {
        match self.slot {
            LocatedSlot::Entry(_) => self.entry()?.payload().as_data(),
            LocatedSlot::Record(_) => Some(self.record()?.record()),
        }
    }

    /// The author key of the located data set.
    pub fn author(&self) -> seldel_crypto::VerifyingKey {
        match self.slot {
            LocatedSlot::Entry(_) => self.entry().expect("slot in range").author(),
            LocatedSlot::Record(_) => self.record().expect("slot in range").author(),
        }
    }

    /// The block currently holding the data.
    pub fn holder(&self) -> &Block {
        self.holder.block()
    }

    /// The holder block with its cached digest, as a guard.
    pub fn holder_sealed(&self) -> &SealedBlock {
        &self.holder
    }
}

impl PartialEq for Located<'_> {
    fn eq(&self, other: &Self) -> bool {
        // The cached digest identifies the holder block; the slot pins the
        // position inside it. Cheaper than deep block comparison and
        // stable across backends.
        self.holder.hash() == other.holder.hash() && self.slot == other.slot
    }
}

impl Eq for Located<'_> {}

/// The linkage rules for a sealed block extending `prev` — shared by the
/// live append path ([`Blockchain::push`]) and the recovery path
/// ([`Blockchain::from_store`]), so a rule added to one can never be
/// missed by the other. Both sides are sealed: the payload-consistency
/// check compares the cached root against the header commitment instead of
/// re-hashing the body.
fn check_link(prev: &SealedBlock, sealed: &SealedBlock) -> Result<(), ChainError> {
    let block = sealed.block();
    let number = block.number();
    if number != prev.block().number().next() {
        return Err(ChainError::NonContiguousNumber {
            expected: prev.block().number().next(),
            found: number,
        });
    }
    if block.header().prev_hash != prev.hash() {
        return Err(ChainError::PrevHashMismatch { number });
    }
    match block.kind() {
        BlockKind::Summary => {
            if block.timestamp() != prev.block().timestamp() {
                return Err(ChainError::SummaryTimestampMismatch { number });
            }
        }
        BlockKind::Genesis => {
            return Err(ChainError::GenesisMisplaced { number });
        }
        _ => {
            if block.timestamp() < prev.block().timestamp() {
                return Err(ChainError::TimestampRegression { number });
            }
        }
    }
    if !sealed.is_payload_consistent() {
        return Err(ChainError::PayloadMismatch { number });
    }
    if !block.tombstones_sorted() {
        return Err(ChainError::TombstonesUnsorted { number });
    }
    Ok(())
}

/// The live chain, generic over its storage backend.
///
/// The default parameter keeps the historical spelling working: a plain
/// `Blockchain` is a [`MemStore`]-backed chain. Use
/// [`Blockchain::with_genesis`] / [`Blockchain::assemble`] with an explicit
/// type to pick another backend, e.g.
/// `Blockchain::<SegStore>::with_genesis(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blockchain<S: BlockStore = MemStore> {
    store: S,
    index: ShardedIndex,
}

impl Blockchain {
    /// Starts a [`MemStore`]-backed chain from its first block (usually
    /// [`Block::genesis`]).
    pub fn new(first: Block) -> Blockchain {
        Blockchain::with_genesis(first)
    }

    /// Reconstructs a [`MemStore`]-backed chain from contiguous blocks
    /// (e.g. a sync response).
    ///
    /// # Errors
    ///
    /// Returns the first linkage violation found; `blocks` must be
    /// non-empty.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Blockchain, ChainError> {
        Blockchain::assemble(blocks)
    }
}

impl<S: BlockStore> Blockchain<S> {
    /// Starts a chain from its first block in an empty store of type `S`.
    pub fn with_genesis(first: Block) -> Blockchain<S> {
        Blockchain::with_genesis_in(S::default(), first)
    }

    /// Starts a chain from its first block in a caller-provided **empty**
    /// store — the way to root a chain in a durable backend (e.g. a
    /// [`FileStore`](crate::fstore::FileStore) opened on a fresh
    /// directory).
    ///
    /// # Panics
    ///
    /// Panics when `store` is not empty; reconstructing a chain from a
    /// pre-filled store is [`Blockchain::from_store`]'s job.
    pub fn with_genesis_in(mut store: S, first: Block) -> Blockchain<S> {
        assert!(
            store.is_empty(),
            "with_genesis_in requires an empty store; use from_store to reopen"
        );
        let mut index = ShardedIndex::new(DEFAULT_SHARD_COUNT);
        index.index_block(&first);
        store.push(SealedBlock::seal(first));
        Blockchain { store, index }
    }

    /// Reconstructs a chain from a store that already holds blocks — the
    /// recovery path for durable backends: a
    /// [`FileStore`](crate::fstore::FileStore) replays its segments on
    /// open, and this constructor turns the replayed blocks back into a
    /// chain, re-checking linkage and rebuilding the entry index with the
    /// default shard count (the sealed-hash cache was rebuilt by the store
    /// itself). Linkage is inherently sequential (each block links to its
    /// predecessor); the index rebuild replays into shards in parallel
    /// ([`ShardedIndex::build_from_store`]).
    ///
    /// # Errors
    ///
    /// [`ChainError::EmptyChain`] for an empty store, otherwise the first
    /// linkage/consistency violation found (same rules as
    /// [`Blockchain::push`]).
    pub fn from_store(store: S) -> Result<Blockchain<S>, ChainError> {
        Blockchain::from_store_with_shards(store, DEFAULT_SHARD_COUNT)
    }

    /// [`Blockchain::from_store`] with an explicit index shard count.
    ///
    /// # Errors
    ///
    /// Same as [`Blockchain::from_store`].
    pub fn from_store_with_shards(store: S, shards: usize) -> Result<Blockchain<S>, ChainError> {
        let map = ShardMap::new(shards);
        // When the parallel rebuild will not engage (short chain, one
        // shard, one core), index inline during the linkage walk — one
        // pass over the store, not two.
        let parallel = ShardedIndex::parallel_build_applies(map, store.len());
        let mut inline = ShardedIndex::with_map(map);
        {
            // Guards, not store borrows: a paged backend materialises each
            // block as the iterator reaches it, and the previous guard
            // keeps exactly one predecessor alive for the linkage check.
            let mut prev: Option<BlockRef<'_>> = None;
            for sealed in store.iter() {
                if let Some(prev) = &prev {
                    // The same rules `push` applies when appending live.
                    check_link(prev, &sealed)?;
                } else {
                    let block = sealed.block();
                    if block.kind() == BlockKind::Genesis && block.number() != BlockNumber::GENESIS
                    {
                        return Err(ChainError::GenesisMisplaced {
                            number: block.number(),
                        });
                    }
                    if !sealed.is_payload_consistent() {
                        return Err(ChainError::PayloadMismatch {
                            number: block.number(),
                        });
                    }
                    if !block.tombstones_sorted() {
                        return Err(ChainError::TombstonesUnsorted {
                            number: block.number(),
                        });
                    }
                }
                if !parallel {
                    inline.index_block(sealed.block());
                }
                prev = Some(sealed);
            }
            if prev.is_none() {
                return Err(ChainError::EmptyChain);
            }
        }
        let index = if parallel {
            ShardedIndex::build_from_store(map, &store)
        } else {
            inline
        };
        Ok(Blockchain { store, index })
    }

    /// Replaces this chain's contents with `blocks`, **reusing the
    /// existing store** — for rooted stores (e.g.
    /// [`FileStore`](crate::fstore::FileStore)) the adopted chain lands in
    /// the same directory instead of silently migrating to a fresh default
    /// store. The blocks are linked and validated exactly like
    /// [`Blockchain::assemble`]; on error the chain is unchanged.
    ///
    /// # Errors
    ///
    /// The first linkage violation found; `blocks` must be non-empty.
    pub fn replace_blocks(&mut self, blocks: Vec<Block>) -> Result<(), ChainError> {
        let staged: Blockchain<MemStore> = Blockchain::assemble(blocks)?;
        self.replace_with(&staged);
        Ok(())
    }

    /// Like [`Blockchain::replace_blocks`] but takes an already-assembled
    /// chain, so callers that staged (and validated) one — e.g. ledger
    /// adoption — do not pay a second assembly pass re-hashing every
    /// block.
    pub fn replace_with<S2: BlockStore>(&mut self, source: &Blockchain<S2>) {
        self.store.reset();
        // The local shard count is a node-local tuning choice; adoption
        // keeps it rather than inheriting the peer's.
        self.index = ShardedIndex::new(self.index.shard_count());
        for sealed in source.store.iter() {
            self.index.index_block(sealed.block());
            // Unwrapping the guard keeps the cached digest: no re-hash.
            self.store.push(sealed.into_sealed());
        }
    }

    /// Reconstructs a chain from contiguous blocks into a store of type
    /// `S`, rebuilding the entry index and hash cache along the way.
    ///
    /// # Errors
    ///
    /// Returns the first linkage violation found; `blocks` must be
    /// non-empty.
    pub fn assemble(blocks: Vec<Block>) -> Result<Blockchain<S>, ChainError> {
        let mut iter = blocks.into_iter();
        let first = iter.next().ok_or(ChainError::EmptyChain)?;
        let mut chain = Blockchain::with_genesis(first);
        for block in iter {
            chain.push(block)?;
        }
        Ok(chain)
    }

    /// Appends a block after checking linkage rules. The block is hashed
    /// exactly once here; all later reads use the cached digest.
    ///
    /// # Errors
    ///
    /// * [`ChainError::NonContiguousNumber`] — number must be tip + 1.
    /// * [`ChainError::PrevHashMismatch`] — must link to the tip hash.
    /// * [`ChainError::TimestampRegression`] — timestamps are monotone.
    /// * [`ChainError::SummaryTimestampMismatch`] — Σ blocks repeat the
    ///   predecessor timestamp (§IV-B).
    /// * [`ChainError::PayloadMismatch`] — header must commit to the body.
    /// * [`ChainError::GenesisMisplaced`] — genesis kind only at block 0.
    /// * [`ChainError::TombstonesUnsorted`] — Σ tombstones must be
    ///   strictly sorted.
    pub fn push(&mut self, block: Block) -> Result<(), ChainError> {
        let _span = seldel_telemetry::span!("chain.seal");
        // Seal first: the linkage check then compares the cached payload
        // root against the header commitment, and the root stays cached in
        // the store for every later validation pass.
        let sealed = SealedBlock::seal(block);
        let tip = self.store.last().expect("chain is never empty");
        check_link(&tip, &sealed)?;
        self.index.index_block(sealed.block());
        self.store.push(sealed);
        Ok(())
    }

    /// The shifting genesis marker `m`: number of the first live block.
    pub fn marker(&self) -> BlockNumber {
        // `first_number`, not `first`: on a paged store the latter would
        // materialise the oldest block on every by-number lookup.
        self.store.first_number().expect("chain is never empty")
    }

    /// The newest block (as a guard; reads like a `&Block` through the
    /// sealed wrapper's accessors).
    pub fn tip(&self) -> BlockRef<'_> {
        self.store.last().expect("chain is never empty")
    }

    /// The cached digest of the newest block.
    pub fn tip_hash(&self) -> seldel_crypto::Digest32 {
        let len = self.store.len();
        self.store.hash_at(len - 1).expect("chain is never empty")
    }

    /// The oldest live block (the block the marker points at).
    pub fn first(&self) -> BlockRef<'_> {
        self.store.first().expect("chain is never empty")
    }

    /// Live length lβ in blocks.
    pub fn len(&self) -> u64 {
        self.store.len() as u64
    }

    /// A chain is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Virtual time covered by the live chain (tip τ − first τ).
    pub fn covered_timespan(&self) -> u64 {
        self.tip().timestamp().since(self.first().timestamp())
    }

    /// Looks up a live block by number.
    pub fn get(&self, number: BlockNumber) -> Option<BlockRef<'_>> {
        self.sealed(number)
    }

    /// Looks up a live block with its cached digest by number.
    pub fn sealed(&self, number: BlockNumber) -> Option<BlockRef<'_>> {
        let marker = self.marker();
        if number < marker {
            return None;
        }
        let index = (number.value() - marker.value()) as usize;
        self.store.get(index)
    }

    /// The cached digest of a live block.
    ///
    /// Served through [`BlockStore::hash_at`], so paged backends answer
    /// from their frame table without touching the block bytes.
    pub fn hash_of(&self, number: BlockNumber) -> Option<seldel_crypto::Digest32> {
        let marker = self.marker();
        if number < marker {
            return None;
        }
        let index = (number.value() - marker.value()) as usize;
        self.store.hash_at(index)
    }

    /// Iterates live blocks from marker to tip.
    pub fn iter(&self) -> impl Iterator<Item = BlockRef<'_>> {
        self.store.iter()
    }

    /// Iterates live blocks with their cached digests. Alias of
    /// [`Blockchain::iter`] kept for the historical spelling — items carry
    /// the digest either way now that they are sealed guards.
    pub fn iter_sealed(&self) -> impl Iterator<Item = BlockRef<'_>> {
        self.store.iter()
    }

    /// Iterates live blocks through the store's random-access read path.
    ///
    /// On a paged store this serves from the hot cache, while
    /// [`Blockchain::iter`] streams every frame from disk (with a decode
    /// and checksum verification each) on purpose — right for one-shot
    /// cold scans and audits, ruinous for derived-state rebuilds that run
    /// on every prune over a mostly-hot live window.
    pub fn iter_hot(&self) -> impl Iterator<Item = BlockRef<'_>> {
        (0..self.store.len()).filter_map(|i| self.store.get(i))
    }

    /// The maintained (sharded) entry index — derived state; see
    /// [`crate::shard`]. Compares equal to the monolithic
    /// [`EntryIndex`] oracle ([`Blockchain::rebuilt_index`]) whenever both
    /// hold the same pairs, regardless of shard count.
    pub fn entry_index(&self) -> &ShardedIndex {
        &self.index
    }

    /// The storage backend (read-only) — mutation goes through the chain.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The highest block number the backend guarantees to survive a
    /// crash ([`BlockStore::durable_tip`]). In-memory backends report
    /// the tip; a durable backend's watermark lags it while fsyncs are
    /// pending. The node layer holds `NewBlock` broadcasts behind this.
    pub fn durable_tip(&self) -> Option<BlockNumber> {
        self.store.durable_tip()
    }

    /// Durability barrier ([`BlockStore::flush_durable`]): on return,
    /// every sealed block would survive a crash and
    /// [`Blockchain::durable_tip`] equals the tip. No-op for in-memory
    /// backends.
    pub fn flush_durable(&mut self) {
        self.store.flush_durable();
    }

    /// Switches the backend into pipelined-commit mode, if it has one
    /// ([`BlockStore::enable_pipeline`]): append-path fsyncs move to a
    /// background commit stage and [`Blockchain::durable_tip`] starts
    /// lagging the tip until they complete.
    pub fn enable_pipeline(&mut self) {
        self.store.enable_pipeline();
    }

    /// Number of shards the maintained index is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// Repartitions the maintained index into `shards` shards, rebuilding
    /// it from the store (in parallel for long chains). Purely local: the
    /// index is derived state, so resharding can never affect hashes,
    /// consensus or peers.
    pub fn reshard(&mut self, shards: usize) {
        self.index = ShardedIndex::build_from_store(ShardMap::new(shards), &self.store);
    }

    /// Rebuilds the monolithic entry index from a full block scan.
    ///
    /// The maintained sharded index must always equal this rebuild — the
    /// property tests pin that (`tests/properties.rs`, citing I1/I3).
    pub fn rebuilt_index(&self) -> EntryIndex {
        let mut fresh = EntryIndex::new();
        for block in self.iter() {
            fresh.index_block(block.block());
        }
        fresh
    }

    /// Whether every cached digest matches a from-scratch recomputation.
    ///
    /// Always true for immutable blocks; exposed for the property tests.
    pub fn verify_cached_hashes(&self) -> bool {
        self.iter_sealed().all(|s| s.hash() == s.block().hash())
    }

    /// Finds where the data set `id` currently lives.
    ///
    /// Checks the original block first (O(1) by number); if that block was
    /// pruned, the maintained [`EntryIndex`] resolves the carrying summary
    /// block in O(log n) — no chain scan on any path.
    pub fn locate(&self, id: EntryId) -> Option<Located<'_>> {
        // A counter, not a span: indexed lookups run in tens of
        // nanoseconds, where even reading the clock would distort them.
        seldel_telemetry::count!("chain.locate");
        if let Some(block) = self.get(id.block) {
            if (id.entry.value() as usize) < block.entries().len() {
                return Some(Located::in_block(block, id.entry.value()));
            }
            // The id may address a record *inside* a summary block.
            if let Some(slot) = block
                .summary_records()
                .iter()
                .position(|r| r.origin() == id)
            {
                return Some(Located::in_summary(block, slot as u32));
            }
        }
        match self.index.get(id)? {
            Location::InSummary { holder, slot } => {
                let block = self.get(holder)?;
                let record = block.summary_records().get(slot as usize)?;
                debug_assert_eq!(record.origin(), id, "index slot must match origin");
                Some(Located::in_summary(block, slot))
            }
            // An InBlock entry would have been found by the direct lookup
            // above; reaching this arm means the id is not live.
            Location::InBlock => None,
        }
    }

    /// Batched [`Blockchain::locate`]: one answer per input id, in input
    /// order — the bulk deletion-audit / query-serving path.
    ///
    /// Large batches are grouped by index shard and answered in parallel
    /// with `std::thread::scope`, so each worker only walks its own
    /// shard's `BTreeMap`; small batches (or a single shard) fall back to
    /// a serial loop. Results are bit-identical to element-wise
    /// [`Blockchain::locate`] either way (property-tested).
    ///
    /// **Duplicate ids are answered element-wise**: every occurrence in
    /// the batch gets the same answer a lone query would, at its own
    /// position, on the serial, bucketed and threaded paths alike (all
    /// duplicates of an id land in the same shard bucket, each carrying
    /// its own input position). Callers may therefore pass unsanitised id
    /// lists — a compliance sweep repeating an id gets consistent rows,
    /// never a hole.
    pub fn locate_many(&self, ids: &[EntryId]) -> Vec<Option<Located<'_>>> {
        let _span = seldel_telemetry::span!("chain.locate_many");
        seldel_telemetry::count!("chain.locate_many.ids", ids.len() as u64);
        let shards = self.index.shard_count();
        if shards == 1 || ids.len() < LOCATE_MANY_PARALLEL_MIN_IDS {
            return ids.iter().map(|id| self.locate(*id)).collect();
        }
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        if workers <= 1 {
            // No parallel hardware: still answer shard-grouped, so each
            // shard's (much smaller) tree stays cache-hot while its
            // probes run instead of interleaving over the whole key
            // space — partitioning pays even single-threaded.
            let mut out: Vec<Option<Located<'_>>> = vec![None; ids.len()];
            for bucket in &self.shard_buckets(ids) {
                for (pos, id) in bucket {
                    out[*pos] = self.locate(*id);
                }
            }
            return out;
        }
        self.locate_many_threaded(ids, shards.min(workers))
    }

    /// Groups `ids` (with their input positions) by index shard.
    fn shard_buckets(&self, ids: &[EntryId]) -> Vec<Vec<(usize, EntryId)>> {
        let map = self.index.map();
        let mut buckets: Vec<Vec<(usize, EntryId)>> = vec![Vec::new(); self.index.shard_count()];
        for (pos, id) in ids.iter().enumerate() {
            buckets[map.shard_of_entry(*id)].push((pos, *id));
        }
        buckets
    }

    /// The threaded half of [`Blockchain::locate_many`]: `worker_count`
    /// scoped threads, each owning every `worker_count`-th shard bucket —
    /// a huge shard count never translates into a huge thread count.
    /// Split out (and directly unit-tested) so single-core hosts, whose
    /// `locate_many` never takes this path, still exercise it.
    fn locate_many_threaded(
        &self,
        ids: &[EntryId],
        worker_count: usize,
    ) -> Vec<Option<Located<'_>>> {
        let buckets = self.shard_buckets(ids);
        let mut out: Vec<Option<Located<'_>>> = vec![None; ids.len()];
        let answered: Vec<Vec<(usize, Option<Located<'_>>)>> = std::thread::scope(|scope| {
            let buckets = &buckets;
            let handles: Vec<_> = (0..worker_count)
                .map(|w| {
                    scope.spawn(move || {
                        let mut chunk = Vec::new();
                        let mut b = w;
                        while b < buckets.len() {
                            for (pos, id) in &buckets[b] {
                                chunk.push((*pos, self.locate(*id)));
                            }
                            b += worker_count;
                        }
                        chunk
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lookup worker panicked"))
                .collect()
        });
        for chunk in answered {
            for (pos, located) in chunk {
                out[pos] = located;
            }
        }
        out
    }

    /// Reference implementation of [`Blockchain::locate`] by full scan.
    ///
    /// Kept as the oracle the index-backed path is benchmarked and
    /// property-tested against. Note the scan skips the block already
    /// checked by the direct lookup (historically it was re-visited).
    pub fn locate_scan(&self, id: EntryId) -> Option<Located<'_>> {
        if let Some(block) = self.get(id.block) {
            if (id.entry.value() as usize) < block.entries().len() {
                return Some(Located::in_block(block, id.entry.value()));
            }
            if let Some(slot) = block
                .summary_records()
                .iter()
                .position(|r| r.origin() == id)
            {
                return Some(Located::in_summary(block, slot as u32));
            }
        }
        for i in (0..self.store.len()).rev() {
            let block = self.store.get(i).expect("index in range");
            if block.kind() != BlockKind::Summary || block.number() == id.block {
                continue;
            }
            if let Some(slot) = block
                .summary_records()
                .iter()
                .position(|r| r.origin() == id)
            {
                return Some(Located::in_summary(block, slot as u32));
            }
        }
        None
    }

    /// All live data sets as `(id, record)` pairs: data entries still in
    /// their original blocks plus carried summary records. Deletion-request
    /// entries are excluded (they are transport, not data). Records are
    /// owned clones — on a paged backend the holder blocks are transient,
    /// so references into them cannot outlive the scan.
    pub fn live_records(&self) -> Vec<(EntryId, DataRecord)> {
        let mut out = Vec::with_capacity(self.index.len());
        for block in self.iter() {
            match block.kind() {
                BlockKind::Normal => {
                    for (i, entry) in block.entries().iter().enumerate() {
                        if let EntryPayload::Data(record) = entry.payload() {
                            out.push((
                                EntryId::new(block.number(), EntryNumber(i as u32)),
                                record.clone(),
                            ));
                        }
                    }
                }
                BlockKind::Summary => {
                    for record in block.summary_records() {
                        out.push((record.origin(), record.record().clone()));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Cuts off all blocks before `new_marker` and returns them oldest-first.
    ///
    /// This is the physical deletion step of §IV-C, executed *after* the
    /// carried-forward summary block is already part of the chain. The
    /// entry index retires the ids whose holder blocks were cut.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadMarker`] when `new_marker` is not a live
    /// block number, or would empty the chain.
    pub fn truncate_front(&mut self, new_marker: BlockNumber) -> Result<Vec<Block>, ChainError> {
        let live_start = self.marker();
        let live_end = self.tip().number();
        if new_marker <= live_start || new_marker > live_end {
            if new_marker == live_start {
                return Ok(Vec::new()); // nothing to cut
            }
            return Err(ChainError::BadMarker {
                requested: new_marker,
                live_start,
                live_end,
            });
        }
        let _span = seldel_telemetry::span!("chain.prune");
        let cut = (new_marker.value() - live_start.value()) as usize;
        let removed: Vec<Block> = self
            .store
            .drain_front(cut)
            .into_iter()
            .map(SealedBlock::into_block)
            .collect();
        self.index.retire_before(new_marker);
        seldel_telemetry::count!("chain.prune.blocks", removed.len() as u64);
        Ok(removed)
    }

    /// Total canonical byte size of all live blocks.
    pub fn total_byte_size(&self) -> u64 {
        self.iter().map(|b| b.byte_size() as u64).sum()
    }

    /// Counts live data sets (entries + summary records) from the
    /// maintained index — O(1), no chain scan.
    pub fn record_count(&self) -> u64 {
        self.index.len() as u64
    }

    /// Block hashes for a live range (used to build / verify anchors).
    /// Served from the per-block digest cache.
    pub fn block_hashes(
        &self,
        start: BlockNumber,
        end: BlockNumber,
    ) -> Option<Vec<seldel_crypto::Digest32>> {
        if start > end {
            return None;
        }
        let mut out = Vec::with_capacity((end.value() - start.value() + 1) as usize);
        let mut n = start;
        while n <= end {
            out.push(self.hash_of(n)?);
            n = n.next();
        }
        Some(out)
    }

    /// Serialises all live blocks (sync responses, persistence).
    pub fn export_blocks(&self) -> Vec<Block> {
        self.iter()
            .map(|sealed| sealed.into_sealed().into_block())
            .collect()
    }

    /// Canonical encoding of the whole live chain.
    pub fn export_bytes(&self) -> Vec<u8> {
        let mut enc = seldel_codec::Encoder::new();
        enc.put_len(self.store.len());
        for block in self.iter() {
            block.block().encode(&mut enc);
        }
        enc.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::store::SegStore;
    use crate::types::Timestamp;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn entry(user: &str, seed: u8) -> Entry {
        Entry::sign_data(&key(seed), DataRecord::new("login").with("user", user))
    }

    fn chain_with_blocks_in<S: BlockStore>(n: u64) -> Blockchain<S> {
        let mut chain = Blockchain::with_genesis(Block::genesis("test", Timestamp(0)));
        for i in 1..=n {
            let prev = chain.tip_hash();
            chain
                .push(Block::new(
                    BlockNumber(i),
                    Timestamp(i * 10),
                    prev,
                    BlockBody::Normal {
                        entries: vec![entry("ALPHA", 1), entry("BRAVO", 2)],
                    },
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        chain
    }

    fn chain_with_blocks(n: u64) -> Blockchain {
        chain_with_blocks_in::<MemStore>(n)
    }

    #[test]
    fn push_and_lookup() {
        let chain = chain_with_blocks(5);
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.marker(), BlockNumber(0));
        assert_eq!(chain.tip().number(), BlockNumber(5));
        assert!(chain.get(BlockNumber(3)).is_some());
        assert!(chain.get(BlockNumber(6)).is_none());
        assert_eq!(chain.covered_timespan(), 50);
    }

    #[test]
    fn push_rejects_bad_number() {
        let mut chain = chain_with_blocks(1);
        let prev = chain.tip_hash();
        let block = Block::new(
            BlockNumber(5),
            Timestamp(100),
            prev,
            BlockBody::Empty,
            Seal::Deterministic,
        );
        assert!(matches!(
            chain.push(block),
            Err(ChainError::NonContiguousNumber { .. })
        ));
    }

    #[test]
    fn push_rejects_bad_prev_hash() {
        let mut chain = chain_with_blocks(1);
        let block = Block::new(
            BlockNumber(2),
            Timestamp(100),
            seldel_crypto::sha256(b"wrong"),
            BlockBody::Empty,
            Seal::Deterministic,
        );
        assert!(matches!(
            chain.push(block),
            Err(ChainError::PrevHashMismatch { .. })
        ));
    }

    #[test]
    fn push_rejects_timestamp_regression() {
        let mut chain = chain_with_blocks(2);
        let prev = chain.tip_hash();
        let block = Block::new(
            BlockNumber(3),
            Timestamp(5), // earlier than block 2's 20
            prev,
            BlockBody::Empty,
            Seal::Deterministic,
        );
        assert!(matches!(
            chain.push(block),
            Err(ChainError::TimestampRegression { .. })
        ));
    }

    #[test]
    fn push_enforces_summary_timestamp_rule() {
        let mut chain = chain_with_blocks(2);
        let prev = chain.tip_hash();
        // Wrong: summary with a newer timestamp.
        let bad = Block::new(
            BlockNumber(3),
            Timestamp(25),
            prev,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: None,
            },
            Seal::Deterministic,
        );
        assert!(matches!(
            chain.push(bad),
            Err(ChainError::SummaryTimestampMismatch { .. })
        ));
        // Right: same timestamp as predecessor.
        let good = Block::new(
            BlockNumber(3),
            Timestamp(20),
            prev,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: None,
            },
            Seal::Deterministic,
        );
        chain.push(good).unwrap();
    }

    #[test]
    fn push_rejects_second_genesis() {
        let mut chain = chain_with_blocks(1);
        let prev = chain.tip_hash();
        let bad = Block::from_parts(
            crate::block::BlockHeader {
                number: BlockNumber(2),
                timestamp: Timestamp(100),
                prev_hash: prev,
                payload_hash: BlockBody::Genesis {
                    note: "again".into(),
                }
                .payload_hash(),
                kind: BlockKind::Genesis,
                seal: Seal::Deterministic,
            },
            BlockBody::Genesis {
                note: "again".into(),
            },
        );
        assert!(matches!(
            chain.push(bad),
            Err(ChainError::GenesisMisplaced { .. })
        ));
    }

    #[test]
    fn locate_finds_live_entry() {
        let chain = chain_with_blocks(3);
        let id = EntryId::new(BlockNumber(2), EntryNumber(1));
        let located = chain.locate(id).expect("entry exists");
        assert_eq!(
            located.data().unwrap().get("user").unwrap().as_str(),
            Some("BRAVO")
        );
        assert_eq!(located.holder().number(), BlockNumber(2));
    }

    #[test]
    fn locate_missing_returns_none() {
        let chain = chain_with_blocks(2);
        assert!(chain
            .locate(EntryId::new(BlockNumber(9), EntryNumber(0)))
            .is_none());
        assert!(chain
            .locate(EntryId::new(BlockNumber(1), EntryNumber(9)))
            .is_none());
    }

    /// Builds a chain whose block 1 was carried into summary block 3 and
    /// then pruned, leaving the carried record reachable only through the
    /// summary block.
    fn pruned_with_summary() -> Blockchain {
        let mut chain = chain_with_blocks(2);
        let origin = EntryId::new(BlockNumber(1), EntryNumber(0));
        let record = SummaryRecord::from_entry(
            chain
                .locate(origin)
                .unwrap()
                .entry()
                .expect("entry is live"),
            origin,
            Timestamp(10),
        )
        .unwrap();
        let prev = chain.tip_hash();
        let ts = chain.tip().timestamp();
        chain
            .push(Block::new(
                BlockNumber(3),
                ts,
                prev,
                BlockBody::Summary {
                    records: vec![record],
                    deletions: vec![],
                    anchor: None,
                },
                Seal::Deterministic,
            ))
            .unwrap();
        chain.truncate_front(BlockNumber(2)).unwrap();
        chain
    }

    #[test]
    fn locate_resolves_carried_record_via_index() {
        let chain = pruned_with_summary();
        let origin = EntryId::new(BlockNumber(1), EntryNumber(0));
        let located = chain.locate(origin).expect("carried record is live");
        assert!(located.is_in_summary());
        assert_eq!(located.holder().number(), BlockNumber(3));
        assert_eq!(
            located.data().unwrap().get("user").unwrap().as_str(),
            Some("ALPHA")
        );
        // Entry 1:1 was not carried → gone on both paths.
        let gone = EntryId::new(BlockNumber(1), EntryNumber(1));
        assert!(chain.locate(gone).is_none());
        assert!(chain.locate_scan(gone).is_none());
    }

    /// Regression test for the historical `locate` double-scan: when the
    /// direct lookup already inspected `id.block`, the fallback sweep must
    /// not re-visit it. The indexed path and the (fixed) scan path must
    /// agree on every id, present or not.
    #[test]
    fn locate_agrees_with_scan_reference() {
        let chain = pruned_with_summary();
        let ids = [
            EntryId::new(BlockNumber(1), EntryNumber(0)), // carried
            EntryId::new(BlockNumber(1), EntryNumber(1)), // pruned, not carried
            EntryId::new(BlockNumber(2), EntryNumber(0)), // live in block
            EntryId::new(BlockNumber(3), EntryNumber(0)), // summary slot itself
            EntryId::new(BlockNumber(9), EntryNumber(0)), // never existed
        ];
        for id in ids {
            assert_eq!(chain.locate(id), chain.locate_scan(id), "id {id}");
        }
    }

    #[test]
    fn locate_many_threaded_matches_elementwise_locate() {
        // The public locate_many only threads on multi-core hosts; drive
        // the threaded path directly so it is exercised everywhere.
        let mut chain = pruned_with_summary();
        let prev = chain.tip_hash();
        chain
            .push(Block::new(
                BlockNumber(4),
                Timestamp(40),
                prev,
                BlockBody::Normal {
                    entries: vec![entry("CHARLIE", 3)],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        let mut ids: Vec<EntryId> = chain.live_records().iter().map(|(id, _)| *id).collect();
        ids.push(EntryId::new(BlockNumber(1), EntryNumber(1))); // pruned
        ids.push(EntryId::new(BlockNumber(9), EntryNumber(0))); // ghost
        for workers in [1usize, 2, 3, 8] {
            let batch = chain.locate_many_threaded(&ids, workers);
            for (id, got) in ids.iter().zip(&batch) {
                assert_eq!(*got, chain.locate(*id), "id {id}, {workers} workers");
            }
        }
        // And the public entry point agrees too (serial or threaded,
        // whatever this host picks).
        assert_eq!(chain.locate_many(&ids), chain.locate_many_threaded(&ids, 2));
    }

    #[test]
    fn locate_many_answers_duplicates_elementwise_on_every_path() {
        // The pinned contract: duplicate ids in one batch each get the
        // answer a lone query would, at their own position — on the serial
        // monolithic path, the sharded/bucketed path and the threaded path.
        let mut chain = pruned_with_summary();
        let base = [
            EntryId::new(BlockNumber(2), EntryNumber(0)), // live in block
            EntryId::new(BlockNumber(1), EntryNumber(0)), // carried in Σ
            EntryId::new(BlockNumber(2), EntryNumber(0)), // dup of live
            EntryId::new(BlockNumber(1), EntryNumber(1)), // pruned
            EntryId::new(BlockNumber(1), EntryNumber(0)), // dup of carried
            EntryId::new(BlockNumber(9), EntryNumber(0)), // ghost
            EntryId::new(BlockNumber(9), EntryNumber(0)), // dup of ghost
        ];
        // Tile past the parallel threshold so the public entry point takes
        // the threaded path on sharded multi-core hosts too.
        let ids: Vec<EntryId> = base
            .iter()
            .cycle()
            .take(LOCATE_MANY_PARALLEL_MIN_IDS + base.len())
            .copied()
            .collect();
        for shards in [1usize, 8] {
            chain.reshard(shards);
            let batch = chain.locate_many(&ids);
            assert_eq!(batch.len(), ids.len());
            for (id, got) in ids.iter().zip(&batch) {
                assert_eq!(*got, chain.locate(*id), "id {id}, {shards} shards");
            }
            // The threaded half directly, including the 1-worker bucketed
            // grouping (all duplicates share a bucket, one slot each).
            for workers in [1usize, 3] {
                let threaded = chain.locate_many_threaded(&ids, workers);
                assert_eq!(threaded, batch, "{shards} shards, {workers} workers");
            }
        }
    }

    #[test]
    fn maintained_index_matches_rebuild_and_hash_cache_holds() {
        let mut chain = pruned_with_summary();
        let prev = chain.tip_hash();
        chain
            .push(Block::new(
                BlockNumber(4),
                Timestamp(40),
                prev,
                BlockBody::Normal {
                    entries: vec![entry("CHARLIE", 3)],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        assert_eq!(chain.entry_index(), &chain.rebuilt_index());
        assert!(chain.verify_cached_hashes());
        assert_eq!(chain.record_count(), 4); // 1 carried + 2 in block 2 + 1 in block 4
    }

    #[test]
    fn truncate_front_shifts_marker() {
        let mut chain = chain_with_blocks(5);
        let removed = chain.truncate_front(BlockNumber(3)).unwrap();
        assert_eq!(removed.len(), 3);
        assert_eq!(chain.marker(), BlockNumber(3));
        assert_eq!(chain.len(), 3);
        // Old numbers no longer resolvable.
        assert!(chain.get(BlockNumber(2)).is_none());
        assert!(chain.get(BlockNumber(3)).is_some());
        // The index dropped the pruned ids with their blocks.
        assert!(!chain
            .entry_index()
            .contains(EntryId::new(BlockNumber(2), EntryNumber(0))));
        assert_eq!(chain.entry_index(), &chain.rebuilt_index());
    }

    #[test]
    fn truncate_front_noop_at_current_marker() {
        let mut chain = chain_with_blocks(3);
        let removed = chain.truncate_front(BlockNumber(0)).unwrap();
        assert!(removed.is_empty());
        assert_eq!(chain.len(), 4);
    }

    #[test]
    fn truncate_front_rejects_out_of_range() {
        let mut chain = chain_with_blocks(3);
        assert!(matches!(
            chain.truncate_front(BlockNumber(9)),
            Err(ChainError::BadMarker { .. })
        ));
    }

    #[test]
    fn live_records_counts_data_entries() {
        let chain = chain_with_blocks(3);
        // 3 blocks × 2 entries.
        assert_eq!(chain.record_count(), 6);
        let ids: Vec<EntryId> = chain.live_records().iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&EntryId::new(BlockNumber(1), EntryNumber(0))));
        assert!(ids.contains(&EntryId::new(BlockNumber(3), EntryNumber(1))));
    }

    #[test]
    fn from_blocks_round_trip() {
        let chain = chain_with_blocks(4);
        let rebuilt = Blockchain::from_blocks(chain.export_blocks()).unwrap();
        assert_eq!(rebuilt, chain);
    }

    #[test]
    fn from_blocks_rejects_gap() {
        let chain = chain_with_blocks(4);
        let mut blocks = chain.export_blocks();
        blocks.remove(2);
        assert!(Blockchain::from_blocks(blocks).is_err());
    }

    #[test]
    fn seg_store_backend_behaves_identically() {
        let mem = chain_with_blocks(40);
        let mut seg = chain_with_blocks_in::<SegStore>(40);
        assert_eq!(mem.export_bytes(), seg.export_bytes());
        assert_eq!(mem.tip_hash(), seg.tip_hash());
        assert_eq!(mem.record_count(), seg.record_count());

        seg.truncate_front(BlockNumber(17)).unwrap();
        let mut mem2 = mem.clone();
        mem2.truncate_front(BlockNumber(17)).unwrap();
        assert_eq!(mem2.export_bytes(), seg.export_bytes());
        assert_eq!(seg.entry_index(), &seg.rebuilt_index());

        // Cross-backend reassembly keeps the canonical bytes stable.
        let crossed: Blockchain<SegStore> = Blockchain::assemble(mem2.export_blocks()).unwrap();
        assert_eq!(crossed.export_bytes(), mem2.export_bytes());
    }

    #[test]
    fn from_store_rebuilds_chain_and_index() {
        let chain = chain_with_blocks_in::<SegStore>(12);
        // Hand the populated store to from_store: identical chain.
        let rebuilt = Blockchain::from_store(chain.store.clone()).unwrap();
        assert_eq!(rebuilt, chain);
        assert_eq!(rebuilt.entry_index(), &rebuilt.rebuilt_index());
        assert!(rebuilt.verify_cached_hashes());
    }

    #[test]
    fn from_store_rejects_tampered_and_empty_stores() {
        assert!(matches!(
            Blockchain::<MemStore>::from_store(MemStore::default()),
            Err(ChainError::EmptyChain)
        ));
        let chain = chain_with_blocks(4);
        let mut store = MemStore::default();
        for (i, sealed) in chain.iter_sealed().enumerate() {
            if i == 2 {
                continue; // drop a middle block: linkage breaks
            }
            store.push(sealed.into_sealed());
        }
        assert!(matches!(
            Blockchain::<MemStore>::from_store(store),
            Err(ChainError::NonContiguousNumber { .. })
        ));
    }

    #[test]
    fn with_genesis_in_uses_the_given_store_and_rejects_populated_ones() {
        let chain: Blockchain<SegStore> =
            Blockchain::with_genesis_in(SegStore::default(), Block::genesis("x", Timestamp(0)));
        assert_eq!(chain.len(), 1);
        let populated = chain_with_blocks_in::<SegStore>(2);
        let result = std::panic::catch_unwind(|| {
            Blockchain::with_genesis_in(populated.store.clone(), Block::genesis("y", Timestamp(0)))
        });
        assert!(result.is_err(), "populated store must be rejected");
    }

    #[test]
    fn replace_blocks_swaps_content_in_place() {
        let source = chain_with_blocks(6);
        let mut target = chain_with_blocks_in::<SegStore>(2);
        target.replace_blocks(source.export_blocks()).unwrap();
        assert_eq!(target.export_bytes(), source.export_bytes());
        assert_eq!(target.entry_index(), &target.rebuilt_index());
        // Invalid input leaves the chain untouched.
        let mut bad = source.export_blocks();
        bad.remove(3);
        let before = target.export_bytes();
        assert!(target.replace_blocks(bad).is_err());
        assert_eq!(target.export_bytes(), before);
    }

    #[test]
    fn block_hashes_for_anchor_range() {
        let chain = chain_with_blocks(5);
        let hashes = chain.block_hashes(BlockNumber(1), BlockNumber(3)).unwrap();
        assert_eq!(hashes.len(), 3);
        assert_eq!(hashes[0], chain.get(BlockNumber(1)).unwrap().hash());
        assert!(chain.block_hashes(BlockNumber(4), BlockNumber(9)).is_none());
        assert!(chain.block_hashes(BlockNumber(3), BlockNumber(1)).is_none());
    }

    #[test]
    fn byte_size_grows_with_blocks() {
        let small = chain_with_blocks(1).total_byte_size();
        let large = chain_with_blocks(10).total_byte_size();
        assert!(large > small);
    }
}

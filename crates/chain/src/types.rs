//! Primitive identifier types: block numbers (α), entry numbers, timestamps
//! (τ), entry ids and expiry markers.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use seldel_codec::{Codec, DecodeError, Decoder, Encoder};

/// A block number α. Monotonically increasing and **never reused**: after
/// pruning, the numbers of deleted blocks stay retired and the shifting
/// genesis marker `m` points at the first live number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockNumber(pub u64);

impl BlockNumber {
    /// The very first block number (the original genesis).
    pub const GENESIS: BlockNumber = BlockNumber(0);

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The next block number.
    pub const fn next(self) -> BlockNumber {
        BlockNumber(self.0 + 1)
    }

    /// Distance from `earlier` to `self` in blocks; zero when `earlier`
    /// is not actually earlier.
    pub const fn distance_from(self, earlier: BlockNumber) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for BlockNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for BlockNumber {
    fn from(v: u64) -> Self {
        BlockNumber(v)
    }
}

impl Add<u64> for BlockNumber {
    type Output = BlockNumber;
    fn add(self, rhs: u64) -> BlockNumber {
        BlockNumber(self.0 + rhs)
    }
}

impl AddAssign<u64> for BlockNumber {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Codec for BlockNumber {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockNumber(dec.take_u64()?))
    }
}

/// The index of an entry within its block (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EntryNumber(pub u32);

impl EntryNumber {
    /// The raw value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EntryNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for EntryNumber {
    fn from(v: u32) -> Self {
        EntryNumber(v)
    }
}

impl Codec for EntryNumber {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EntryNumber(dec.take_u32()?))
    }
}

/// A logical timestamp τ in milliseconds of virtual time.
///
/// The simulator drives virtual time deterministically; nothing in the
/// workspace reads wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Time zero.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The raw millisecond value.
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Saturating difference in milliseconds.
    pub const fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<u64> for Timestamp {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    fn sub(self, rhs: Timestamp) -> u64 {
        self.since(rhs)
    }
}

impl Codec for Timestamp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Timestamp(dec.take_u64()?))
    }
}

/// The address of a data set: "referenced by the block number and the
/// according entry number, in which the data set is stored" (paper §IV-D).
///
/// Entry ids are **stable across summarisation**: when a record is copied
/// into a summary block it keeps its original id (Fig. 4), so deletion
/// requests keep working after any number of merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EntryId {
    /// The block the entry was originally stored in.
    pub block: BlockNumber,
    /// The entry index within that block.
    pub entry: EntryNumber,
}

impl EntryId {
    /// Creates an entry id.
    pub const fn new(block: BlockNumber, entry: EntryNumber) -> EntryId {
        EntryId { block, entry }
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.entry)
    }
}

impl Codec for EntryId {
    fn encode(&self, enc: &mut Encoder) {
        self.block.encode(enc);
        self.entry.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EntryId {
            block: BlockNumber::decode(dec)?,
            entry: EntryNumber::decode(dec)?,
        })
    }
}

/// Expiry of a temporary entry (§IV-D4): the entry is dropped from summary
/// blocks once the chain passes the given timestamp or block number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expiry {
    /// Expires when the chain tip timestamp exceeds τ.
    AtTimestamp(Timestamp),
    /// Expires when the chain tip block number exceeds α.
    AtBlock(BlockNumber),
}

impl Expiry {
    /// Whether an entry with this expiry is expired at the given chain tip.
    pub fn is_expired(&self, tip_number: BlockNumber, tip_timestamp: Timestamp) -> bool {
        match self {
            Expiry::AtTimestamp(t) => tip_timestamp > *t,
            Expiry::AtBlock(b) => tip_number > *b,
        }
    }
}

impl fmt::Display for Expiry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expiry::AtTimestamp(t) => write!(f, "τ{t}"),
            Expiry::AtBlock(b) => write!(f, "α{b}"),
        }
    }
}

impl Codec for Expiry {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Expiry::AtTimestamp(t) => {
                enc.put_u8(0);
                t.encode(enc);
            }
            Expiry::AtBlock(b) => {
                enc.put_u8(1);
                b.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Expiry::AtTimestamp(Timestamp::decode(dec)?)),
            1 => Ok(Expiry::AtBlock(BlockNumber::decode(dec)?)),
            tag => Err(DecodeError::InvalidTag {
                what: "Expiry",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_number_arithmetic() {
        let a = BlockNumber(5);
        assert_eq!(a.next(), BlockNumber(6));
        assert_eq!(a + 3, BlockNumber(8));
        assert_eq!(BlockNumber(9).distance_from(a), 4);
        assert_eq!(a.distance_from(BlockNumber(9)), 0);
        assert_eq!(a.to_string(), "5");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t + 50, Timestamp(150));
        assert_eq!(Timestamp(150).since(t), 50);
        assert_eq!(t.since(Timestamp(150)), 0);
        assert_eq!(Timestamp(150) - t, 50);
    }

    #[test]
    fn entry_id_display() {
        let id = EntryId::new(BlockNumber(3), EntryNumber(1));
        assert_eq!(id.to_string(), "3:1");
    }

    #[test]
    fn expiry_by_timestamp() {
        let e = Expiry::AtTimestamp(Timestamp(100));
        assert!(!e.is_expired(BlockNumber(5), Timestamp(100)));
        assert!(e.is_expired(BlockNumber(5), Timestamp(101)));
    }

    #[test]
    fn expiry_by_block() {
        let e = Expiry::AtBlock(BlockNumber(10));
        assert!(!e.is_expired(BlockNumber(10), Timestamp(0)));
        assert!(e.is_expired(BlockNumber(11), Timestamp(0)));
    }

    #[test]
    fn expiry_display_uses_paper_notation() {
        assert_eq!(Expiry::AtTimestamp(Timestamp(8888)).to_string(), "τ8888");
        assert_eq!(Expiry::AtBlock(BlockNumber(4711)).to_string(), "α4711");
    }

    #[test]
    fn codec_round_trips() {
        let id = EntryId::new(BlockNumber(42), EntryNumber(7));
        assert_eq!(
            EntryId::from_canonical_bytes(&id.to_canonical_bytes()).unwrap(),
            id
        );

        for e in [
            Expiry::AtTimestamp(Timestamp(8888)),
            Expiry::AtBlock(BlockNumber(4711)),
        ] {
            assert_eq!(
                Expiry::from_canonical_bytes(&e.to_canonical_bytes()).unwrap(),
                e
            );
        }
    }

    #[test]
    fn invalid_expiry_tag_rejected() {
        assert!(Expiry::from_canonical_bytes(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}

//! Blockchain entries: the `D` (data record), `K` (author key) and `S`
//! (signature) triple of the paper's prototype, plus deletion requests.

use std::fmt;

use seldel_codec::{decode_seq, encode_seq, Codec, DataRecord, DecodeError, Decoder, Encoder};
use seldel_crypto::{Signature, SignatureError, SigningKey, VerifyingKey};

use crate::types::{EntryId, Expiry};

/// Domain separation tag for entry signatures. Versioned so future layout
/// changes cannot collide with old signatures.
const ENTRY_SIGN_DOMAIN: &[u8] = b"seldel/entry/v1";

/// A request to delete the data set at `target` (§IV-D).
///
/// The request is submitted "in form of a deletion entry … following the
/// same procedure as normal entries", signed by the requesting client. For
/// entries other clients depend on, [`DeleteRequest::cosignatures`] carries
/// the approvals of all dependent parties (§IV-D2, semantic cohesion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeleteRequest {
    target: EntryId,
    reason: String,
    cosignatures: Vec<CoSignature>,
}

/// An approval signature from the author of a dependent entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoSignature {
    /// The co-signing party.
    pub signer: VerifyingKey,
    /// Signature over the same message as the main request signature.
    pub signature: Signature,
}

impl Codec for CoSignature {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(self.signer.as_bytes());
        enc.put_raw(&self.signature.to_bytes());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let key_bytes: [u8; 32] = dec.take_array()?;
        let signer = VerifyingKey::from_bytes(&key_bytes).map_err(|_| DecodeError::InvalidTag {
            what: "CoSignature.signer",
            tag: key_bytes[0],
        })?;
        let sig_bytes: [u8; 64] = dec.take_array()?;
        Ok(CoSignature {
            signer,
            signature: Signature::from_bytes(&sig_bytes),
        })
    }
}

impl DeleteRequest {
    /// Creates a deletion request for `target`.
    pub fn new(target: EntryId, reason: impl Into<String>) -> DeleteRequest {
        DeleteRequest {
            target,
            reason: reason.into(),
            cosignatures: Vec::new(),
        }
    }

    /// Adds a dependent party's approval (builder style).
    pub fn with_cosignature(mut self, signer: VerifyingKey, signature: Signature) -> Self {
        self.cosignatures.push(CoSignature { signer, signature });
        self
    }

    /// The entry this request wants removed.
    pub const fn target(&self) -> EntryId {
        self.target
    }

    /// Free-text justification (audit trail).
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Approvals from dependent entry authors.
    pub fn cosignatures(&self) -> &[CoSignature] {
        &self.cosignatures
    }

    /// The message co-signers sign: the target id plus reason, domain
    /// separated from entry signatures.
    pub fn cosign_message(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"seldel/cosign/v1");
        self.target.encode(&mut enc);
        enc.put_str(&self.reason);
        enc.into_bytes()
    }
}

impl Codec for DeleteRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.target.encode(enc);
        enc.put_str(&self.reason);
        encode_seq(&self.cosignatures, enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DeleteRequest {
            target: EntryId::decode(dec)?,
            reason: dec.take_str()?,
            cosignatures: decode_seq(dec)?,
        })
    }
}

impl fmt::Display for DeleteRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delete {}", self.target)?;
        if !self.reason.is_empty() {
            write!(f, " ({})", self.reason)?;
        }
        Ok(())
    }
}

/// What an entry carries: application data or a deletion request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryPayload {
    /// A data record (`D` in the paper's console format).
    Data(DataRecord),
    /// A deletion request; never copied into summary blocks.
    Delete(DeleteRequest),
}

impl EntryPayload {
    /// Borrows the data record, if this is a data entry.
    pub fn as_data(&self) -> Option<&DataRecord> {
        match self {
            EntryPayload::Data(r) => Some(r),
            _ => None,
        }
    }

    /// Borrows the deletion request, if this is one.
    pub fn as_delete(&self) -> Option<&DeleteRequest> {
        match self {
            EntryPayload::Delete(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this is a deletion request.
    pub fn is_delete(&self) -> bool {
        matches!(self, EntryPayload::Delete(_))
    }
}

impl Codec for EntryPayload {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            EntryPayload::Data(record) => {
                enc.put_u8(0);
                record.encode(enc);
            }
            EntryPayload::Delete(req) => {
                enc.put_u8(1);
                req.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(EntryPayload::Data(DataRecord::decode(dec)?)),
            1 => Ok(EntryPayload::Delete(DeleteRequest::decode(dec)?)),
            tag => Err(DecodeError::InvalidTag {
                what: "EntryPayload",
                tag,
            }),
        }
    }
}

/// A signed blockchain entry.
///
/// Layout follows the paper's console format: `D` (payload), `K` (author
/// public key), `S` (signature), extended with the optional expiry of
/// temporary entries (§IV-D4) and explicit dependency edges used by the
/// semantic-cohesion check (§IV-D2).
///
/// The signature covers payload, expiry and dependencies — but **not** the
/// entry's eventual position, because the author signs before the anchor
/// nodes place the entry in a block. Positions are protected by the block
/// hash chain instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    payload: EntryPayload,
    author: VerifyingKey,
    signature: Signature,
    expiry: Option<Expiry>,
    depends_on: Vec<EntryId>,
}

impl Entry {
    /// Signs and creates a data entry.
    pub fn sign_data(key: &SigningKey, record: DataRecord) -> Entry {
        Entry::sign_parts(key, EntryPayload::Data(record), None, Vec::new())
    }

    /// Signs and creates a data entry with expiry and/or dependencies.
    pub fn sign_data_with(
        key: &SigningKey,
        record: DataRecord,
        expiry: Option<Expiry>,
        depends_on: Vec<EntryId>,
    ) -> Entry {
        Entry::sign_parts(key, EntryPayload::Data(record), expiry, depends_on)
    }

    /// Signs and creates a deletion-request entry.
    pub fn sign_delete(key: &SigningKey, request: DeleteRequest) -> Entry {
        Entry::sign_parts(key, EntryPayload::Delete(request), None, Vec::new())
    }

    fn sign_parts(
        key: &SigningKey,
        payload: EntryPayload,
        expiry: Option<Expiry>,
        depends_on: Vec<EntryId>,
    ) -> Entry {
        let message = Entry::signing_message(&payload, &expiry, &depends_on);
        Entry {
            signature: key.sign(&message),
            author: key.verifying_key(),
            payload,
            expiry,
            depends_on,
        }
    }

    /// The canonical byte string an entry signature covers.
    pub fn signing_message(
        payload: &EntryPayload,
        expiry: &Option<Expiry>,
        depends_on: &[EntryId],
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(ENTRY_SIGN_DOMAIN);
        payload.encode(&mut enc);
        expiry.encode(&mut enc);
        enc.put_len(depends_on.len());
        for dep in depends_on {
            dep.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Verifies the author signature.
    ///
    /// # Errors
    ///
    /// Propagates [`SignatureError`] from the Ed25519 verifier.
    pub fn verify(&self) -> Result<(), SignatureError> {
        let message = Entry::signing_message(&self.payload, &self.expiry, &self.depends_on);
        self.author.verify(&message, &self.signature)
    }

    /// The payload.
    pub fn payload(&self) -> &EntryPayload {
        &self.payload
    }

    /// The author public key (`K`).
    pub const fn author(&self) -> VerifyingKey {
        self.author
    }

    /// The signature (`S`).
    pub const fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Optional expiry of a temporary entry.
    pub const fn expiry(&self) -> Option<Expiry> {
        self.expiry
    }

    /// Entries this entry semantically depends on.
    pub fn depends_on(&self) -> &[EntryId] {
        &self.depends_on
    }

    /// Whether this entry is a deletion request.
    pub fn is_delete_request(&self) -> bool {
        self.payload.is_delete()
    }

    /// Canonical encoded size in bytes.
    pub fn byte_size(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl Codec for Entry {
    fn encode(&self, enc: &mut Encoder) {
        self.payload.encode(enc);
        enc.put_raw(self.author.as_bytes());
        enc.put_raw(&self.signature.to_bytes());
        self.expiry.encode(enc);
        enc.put_len(self.depends_on.len());
        for dep in &self.depends_on {
            dep.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let payload = EntryPayload::decode(dec)?;
        let key_bytes: [u8; 32] = dec.take_array()?;
        let author = VerifyingKey::from_bytes(&key_bytes).map_err(|_| DecodeError::InvalidTag {
            what: "Entry.author",
            tag: key_bytes[0],
        })?;
        let sig_bytes: [u8; 64] = dec.take_array()?;
        let signature = Signature::from_bytes(&sig_bytes);
        let expiry = Option::<Expiry>::decode(dec)?;
        let dep_len = dec.take_len()?;
        let mut depends_on = Vec::with_capacity(dep_len.min(1024));
        for _ in 0..dep_len {
            depends_on.push(EntryId::decode(dec)?);
        }
        Ok(Entry {
            payload,
            author,
            signature,
            expiry,
            depends_on,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockNumber, EntryNumber, Timestamp};

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn record() -> DataRecord {
        DataRecord::new("login")
            .with("user", "ALPHA")
            .with("terminal", 1u64)
    }

    #[test]
    fn sign_and_verify_data_entry() {
        let entry = Entry::sign_data(&key(1), record());
        entry.verify().unwrap();
        assert!(!entry.is_delete_request());
        assert_eq!(entry.payload().as_data().unwrap().schema(), "login");
    }

    #[test]
    fn sign_and_verify_delete_entry() {
        let target = EntryId::new(BlockNumber(3), EntryNumber(1));
        let entry = Entry::sign_delete(&key(2), DeleteRequest::new(target, "gdpr art. 17"));
        entry.verify().unwrap();
        assert!(entry.is_delete_request());
        assert_eq!(entry.payload().as_delete().unwrap().target(), target);
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let entry = Entry::sign_data(&key(3), record());
        let mut bytes = entry.to_canonical_bytes();
        // Flip a byte inside the record portion.
        bytes[10] ^= 0x01;
        if let Ok(tampered) = Entry::from_canonical_bytes(&bytes) {
            assert!(tampered.verify().is_err());
        }
    }

    #[test]
    fn entry_with_expiry_and_deps_round_trips() {
        let deps = vec![
            EntryId::new(BlockNumber(1), EntryNumber(0)),
            EntryId::new(BlockNumber(2), EntryNumber(3)),
        ];
        let entry = Entry::sign_data_with(
            &key(4),
            record(),
            Some(Expiry::AtTimestamp(Timestamp(8888))),
            deps.clone(),
        );
        entry.verify().unwrap();
        let decoded = Entry::from_canonical_bytes(&entry.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, entry);
        assert_eq!(decoded.depends_on(), deps.as_slice());
        assert_eq!(decoded.expiry(), Some(Expiry::AtTimestamp(Timestamp(8888))));
        decoded.verify().unwrap();
    }

    #[test]
    fn signature_covers_expiry() {
        // Same payload, different expiry => different signing messages.
        let m1 = Entry::signing_message(&EntryPayload::Data(record()), &None, &[]);
        let m2 = Entry::signing_message(
            &EntryPayload::Data(record()),
            &Some(Expiry::AtBlock(BlockNumber(9))),
            &[],
        );
        assert_ne!(m1, m2);
    }

    #[test]
    fn signature_covers_dependencies() {
        let dep = EntryId::new(BlockNumber(1), EntryNumber(1));
        let m1 = Entry::signing_message(&EntryPayload::Data(record()), &None, &[]);
        let m2 = Entry::signing_message(&EntryPayload::Data(record()), &None, &[dep]);
        assert_ne!(m1, m2);
    }

    #[test]
    fn delete_request_cosignatures_round_trip() {
        let target = EntryId::new(BlockNumber(5), EntryNumber(0));
        let req = DeleteRequest::new(target, "cleanup");
        let co_key = key(7);
        let co_sig = co_key.sign(&req.cosign_message());
        let req = req.with_cosignature(co_key.verifying_key(), co_sig);

        let entry = Entry::sign_delete(&key(6), req.clone());
        let decoded = Entry::from_canonical_bytes(&entry.to_canonical_bytes()).unwrap();
        let decoded_req = decoded.payload().as_delete().unwrap();
        assert_eq!(decoded_req.cosignatures().len(), 1);
        // The cosignature itself must verify.
        decoded_req.cosignatures()[0]
            .signer
            .verify(
                &decoded_req.cosign_message(),
                &decoded_req.cosignatures()[0].signature,
            )
            .unwrap();
    }

    #[test]
    fn delete_request_display() {
        let req = DeleteRequest::new(EntryId::new(BlockNumber(3), EntryNumber(1)), "why");
        assert_eq!(req.to_string(), "delete 3:1 (why)");
        let bare = DeleteRequest::new(EntryId::new(BlockNumber(3), EntryNumber(1)), "");
        assert_eq!(bare.to_string(), "delete 3:1");
    }

    #[test]
    fn entry_byte_size_reasonable() {
        let entry = Entry::sign_data(&key(8), record());
        // key (32) + sig (64) + payload must dominate.
        assert!(entry.byte_size() > 96);
        assert!(entry.byte_size() < 4096);
    }

    #[test]
    fn decode_rejects_invalid_author_key() {
        let entry = Entry::sign_data(&key(9), record());
        let mut bytes = entry.to_canonical_bytes();
        // The author key starts right after the payload; find it by
        // re-encoding the payload to learn its length.
        let payload_len = {
            let mut enc = Encoder::new();
            entry.payload().encode(&mut enc);
            enc.into_bytes().len()
        };
        // Overwrite the key with a non-canonical y >= p encoding.
        for (i, b) in bytes[payload_len..payload_len + 32].iter_mut().enumerate() {
            *b = if i == 0 { 0xed } else { 0xff };
        }
        bytes[payload_len + 31] = 0x7f;
        assert!(Entry::from_canonical_bytes(&bytes).is_err());
    }
}

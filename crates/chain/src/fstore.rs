//! `FileStore` — the durable, file-backed segment log.
//!
//! [`SegStore`](crate::store::SegStore) is "the in-memory shape of a
//! file-backed log"; this module is that log made real. A rooted
//! [`FileStore`] keeps the live chain in a directory:
//!
//! ```text
//! <root>/MANIFEST            versioned store metadata (see below)
//! <root>/seg-0000000000.seg  length-prefixed block frames, oldest segment
//! <root>/seg-0000000001.seg  ...
//! ```
//!
//! Every segment file holds up to `segment_capacity` frames; a frame is a
//! `u32` little-endian length followed by the block's canonical
//! `seldel-codec` encoding. The manifest records the format version, the
//! segment capacity, the id of the first live segment and the number of
//! the first live block — everything replay needs that the frames alone
//! cannot say.
//!
//! # Durability contract (fsync points)
//!
//! * a segment file is fsynced when it **fills** (seals);
//! * the **manifest** is written via temp-file + atomic rename and fsynced
//!   on every update, with a directory fsync after;
//! * before a prune's manifest update the current tail segment is fsynced,
//!   so a carried-forward summary block is always durable **before** the
//!   pruned blocks it absorbs become unrecoverable (§IV-C ordering);
//! * appends between those barriers are *not* fsynced — a crash may lose a
//!   suffix of recent frames, which the node layer re-syncs from peers.
//!
//! # Physical deletion (§IV-C)
//!
//! Pruning the front is executed on disk, not just in memory: wholly
//! retired segments are **unlinked**, and a partially retired front
//! segment is **rewritten** (temp file + rename) without the pruned
//! frames. After [`BlockStore::drain_front`] returns, the deleted entry
//! payloads are absent from the directory's raw bytes — the property tests
//! grep for a sentinel payload to pin exactly that.
//!
//! # Crash recovery ([`FileStore::open`])
//!
//! The prune sequence is `fsync tail → manifest → rewrite front → unlink
//! retired`, so the manifest is authoritative. `open` finishes whatever a
//! crash interrupted:
//!
//! 1. stray `*.tmp` files are removed;
//! 2. segment files with an id below the manifest's `first_segment_id`
//!    are unlinked (a crash before the unlink step);
//! 3. leading frames of the first segment whose block number lies below
//!    `first_block_number` are dropped and the file is rewritten (a crash
//!    before the front rewrite);
//! 4. a torn frame at the very tail of the newest segment (a crash
//!    mid-append) is truncated away; torn or undecodable frames anywhere
//!    else are reported as corruption;
//! 5. the surviving frames are decoded, re-hashed (rebuilding the
//!    sealed-hash cache) and checked for contiguous block numbers.
//!
//! An **unrooted** `FileStore` (via `Default`, or `Clone` — see below)
//! never touches the filesystem and behaves like a plain in-memory
//! segment store; durability starts with [`FileStore::open`] /
//! [`FileStore::open_with_capacity`].

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use seldel_codec::{Codec, Decoder, Encoder};

use crate::block::Block;
use crate::store::{BlockStore, SealedBlock, SEGMENT_CAPACITY};

/// Manifest file name inside a store directory.
const MANIFEST_NAME: &str = "MANIFEST";

/// Magic prefix of the manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"SELDELFS";

/// Current manifest format version.
///
/// * v1 — original frame log.
/// * v2 — summary bodies carry a deletion-tombstone list (wire change in
///   `BlockBody::Summary`), so v1 stores no longer decode.
const MANIFEST_VERSION: u32 = 2;

/// Errors raised by [`FileStore`] persistence.
///
/// I/O errors are carried as rendered strings so the type stays `Clone` /
/// `PartialEq` like every other error in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The operation that failed (e.g. `"create dir"`).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The manifest or a segment file is corrupt beyond recovery.
    Corrupt {
        /// The file involved.
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// The store directory holds a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version found in the manifest.
        found: u32,
    },
}

impl StoreError {
    fn io(op: &'static str, path: &Path, err: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }

    fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store i/o failure ({op} {path}): {message}")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {path}: {detail}")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// When the append path fsyncs the tail segment, beyond the structural
/// barriers (segment fill, prune) that always hold.
///
/// The durability floor is identical under every policy: a filled segment
/// is fsynced when it seals, and the tail is fsynced **before each
/// prune's manifest write** (the §IV-C ordering — carried Σ records must
/// be durable before the pruned blocks become unrecoverable). The policy
/// only decides how much of the *unfilled* tail a power cut may lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync only at the structural barriers — today's default: appends
    /// between barriers are not fsynced, so a crash may lose a suffix of
    /// recent frames (the node layer re-syncs them from peers).
    #[default]
    OnFill,
    /// Fsync the tail after every appended frame. Maximum durability,
    /// one disk flush per sealed block.
    Always,
    /// Group commit: fsync the tail after every `n`-th appended frame
    /// since the last tail fsync (whatever its cause). `EveryN(1)` equals
    /// [`FsyncPolicy::Always`]; large `n` approaches, and `EveryN(0)` is
    /// treated as, [`FsyncPolicy::OnFill`].
    EveryN(u32),
}

/// The manifest: everything replay needs that frames cannot carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Manifest {
    segment_capacity: u32,
    first_segment_id: u64,
    first_block_number: u64,
}

impl Manifest {
    fn encode_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(MANIFEST_MAGIC);
        enc.put_u32(MANIFEST_VERSION);
        enc.put_u32(self.segment_capacity);
        enc.put_u64(self.first_segment_id);
        enc.put_u64(self.first_block_number);
        enc.into_bytes()
    }

    fn decode_bytes(path: &Path, bytes: &[u8]) -> Result<Manifest, StoreError> {
        let mut dec = Decoder::new(bytes);
        let magic: [u8; 8] = dec
            .take_array()
            .map_err(|e| StoreError::corrupt(path, format!("manifest too short: {e}")))?;
        if &magic != MANIFEST_MAGIC {
            return Err(StoreError::corrupt(path, "bad manifest magic"));
        }
        let version = dec
            .take_u32()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let segment_capacity = dec
            .take_u32()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        let first_segment_id = dec
            .take_u64()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        let first_block_number = dec
            .take_u64()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        if segment_capacity == 0 {
            return Err(StoreError::corrupt(path, "segment capacity is zero"));
        }
        if !dec.is_exhausted() {
            return Err(StoreError::corrupt(path, "trailing bytes in manifest"));
        }
        Ok(Manifest {
            segment_capacity,
            first_segment_id,
            first_block_number,
        })
    }
}

/// One in-memory segment mirroring one on-disk file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    /// File id (`seg-<id>.seg`).
    id: u64,
    /// Live blocks, oldest first.
    blocks: Vec<SealedBlock>,
    /// Sealed segments never take another append.
    sealed: bool,
}

/// A durable, file-backed segment store.
///
/// See the [module docs](self) for the on-disk format, fsync points and
/// recovery behaviour.
///
/// `Default` yields an **unrooted** store (in-memory only, no directory);
/// [`Clone`] likewise produces an unrooted in-memory snapshot, detached
/// from any directory — two handles appending to the same files would
/// corrupt the log, so clones deliberately do not share the root.
#[derive(Debug)]
pub struct FileStore {
    root: Option<PathBuf>,
    segment_capacity: usize,
    segments: VecDeque<Segment>,
    len: usize,
    /// Id the next created segment file will get.
    next_segment_id: u64,
    /// Number of the first live block (mirrors the manifest when rooted).
    first_block_number: u64,
    /// Cached append handle for the tail segment file, so the seal hot
    /// path does not reopen the file per block. Invalidated whenever the
    /// file may be renamed away (prune, reset) and never cloned.
    tail_file: Option<(u64, fs::File)>,
    /// Append-path fsync behaviour (see [`FsyncPolicy`]).
    fsync_policy: FsyncPolicy,
    /// Frames appended since the last tail fsync (drives `EveryN`).
    unsynced_appends: u32,
    /// Tail-segment fsyncs the store issued itself (fills, policy syncs,
    /// prune barriers) — a diagnostics counter the group-commit tests read.
    tail_fsyncs: u64,
}

impl Default for FileStore {
    fn default() -> FileStore {
        FileStore {
            root: None,
            segment_capacity: SEGMENT_CAPACITY,
            segments: VecDeque::new(),
            len: 0,
            next_segment_id: 0,
            first_block_number: 0,
            tail_file: None,
            fsync_policy: FsyncPolicy::default(),
            unsynced_appends: 0,
            tail_fsyncs: 0,
        }
    }
}

impl Clone for FileStore {
    fn clone(&self) -> FileStore {
        // A detached in-memory snapshot: two stores appending to the same
        // directory would corrupt the log, so the clone drops the root.
        FileStore {
            root: None,
            segment_capacity: self.segment_capacity,
            segments: self.segments.clone(),
            len: self.len,
            next_segment_id: self.next_segment_id,
            first_block_number: self.first_block_number,
            tail_file: None,
            fsync_policy: self.fsync_policy,
            unsynced_appends: 0,
            tail_fsyncs: 0,
        }
    }
}

impl PartialEq for FileStore {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: same blocks in the same order, regardless of
        // segment layout, root or pruning history.
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for FileStore {}

// ---------------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------------

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:010}.seg")
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn fsync_file(path: &Path) -> Result<(), StoreError> {
    let file = fs::File::open(path).map_err(|e| StoreError::io("open for fsync", path, &e))?;
    file.sync_all()
        .map_err(|e| StoreError::io("fsync", path, &e))
}

fn fsync_dir(path: &Path) -> Result<(), StoreError> {
    // Directory fsync is a no-op on platforms that do not support opening
    // directories; ignore failures to open, but not failures to sync.
    if let Ok(dir) = fs::File::open(path) {
        dir.sync_all()
            .map_err(|e| StoreError::io("fsync dir", path, &e))?;
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file =
            fs::File::create(&tmp).map_err(|e| StoreError::io("create temp", &tmp, &e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io("write temp", &tmp, &e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("fsync temp", &tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename temp", path, &e))
}

/// Encodes one on-disk frame: `u32` length + canonical block bytes.
fn frame_bytes(block: &Block) -> Vec<u8> {
    let body = block.to_canonical_bytes();
    let mut enc = Encoder::with_capacity(4 + body.len());
    enc.put_u32(body.len() as u32);
    enc.put_raw(&body);
    enc.into_bytes()
}

/// How the parse of a segment file ended early, if it did.
enum FrameDamage {
    /// The file ends inside a frame (length field or body cut short) —
    /// the shape an interrupted `write_all` leaves, recoverable by
    /// truncation when it is the newest segment's tail.
    Truncated {
        /// Byte offset where the incomplete frame starts.
        at: u64,
    },
    /// A frame's bytes are fully present but do not decode to a block.
    /// An interrupted append can never leave this shape (the length field
    /// and the body land in one `write_all`), so it is bit corruption —
    /// never silently repaired, even at the tail.
    Undecodable {
        /// Byte offset of the offending frame.
        at: u64,
    },
}

/// Outcome of parsing a segment file.
struct ParsedSegment {
    blocks: Vec<SealedBlock>,
    damage: Option<FrameDamage>,
}

/// Parses the frames of one segment file, classifying any early stop as
/// truncation (crash shape) or corruption; the caller decides what each
/// means for the segment's position in the store.
fn parse_segment(bytes: &[u8]) -> ParsedSegment {
    let mut blocks = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 4 {
            return ParsedSegment {
                blocks,
                damage: Some(FrameDamage::Truncated { at: pos as u64 }),
            };
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if bytes.len() - pos - 4 < len {
            return ParsedSegment {
                blocks,
                damage: Some(FrameDamage::Truncated { at: pos as u64 }),
            };
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        match Block::from_canonical_bytes(body) {
            Ok(block) => blocks.push(SealedBlock::seal(block)),
            Err(_) => {
                return ParsedSegment {
                    blocks,
                    damage: Some(FrameDamage::Undecodable { at: pos as u64 }),
                }
            }
        }
        pos += 4 + len;
    }
    ParsedSegment {
        blocks,
        damage: None,
    }
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

impl FileStore {
    /// Opens (or creates) a durable store rooted at `path` with the
    /// default [`SEGMENT_CAPACITY`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and unrecoverable corruption; see
    /// [`StoreError`].
    pub fn open(path: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        FileStore::open_with_capacity(path, SEGMENT_CAPACITY)
    }

    /// Opens (or creates) a durable store rooted at `path`.
    ///
    /// `segment_capacity` applies only when the store is created; an
    /// existing store keeps the capacity recorded in its manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and unrecoverable corruption; see
    /// [`StoreError`].
    pub fn open_with_capacity(
        path: impl AsRef<Path>,
        segment_capacity: usize,
    ) -> Result<FileStore, StoreError> {
        assert!(segment_capacity > 0, "segment capacity must be positive");
        let root = path.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| StoreError::io("create dir", &root, &e))?;
        let manifest_path = root.join(MANIFEST_NAME);

        let manifest = if manifest_path.exists() {
            let bytes = fs::read(&manifest_path)
                .map_err(|e| StoreError::io("read manifest", &manifest_path, &e))?;
            Manifest::decode_bytes(&manifest_path, &bytes)?
        } else {
            let manifest = Manifest {
                segment_capacity: segment_capacity as u32,
                first_segment_id: 0,
                first_block_number: 0,
            };
            atomic_write(&manifest_path, &manifest.encode_bytes())?;
            fsync_dir(&root)?;
            manifest
        };

        let mut store = FileStore {
            root: Some(root.clone()),
            segment_capacity: manifest.segment_capacity as usize,
            segments: VecDeque::new(),
            len: 0,
            tail_file: None,
            next_segment_id: manifest.first_segment_id,
            first_block_number: manifest.first_block_number,
            fsync_policy: FsyncPolicy::default(),
            unsynced_appends: 0,
            tail_fsyncs: 0,
        };
        store.replay(&root, manifest)?;
        Ok(store)
    }

    /// Replays the directory contents into memory, finishing any prune a
    /// crash interrupted (see the module docs' recovery steps).
    fn replay(&mut self, root: &Path, manifest: Manifest) -> Result<(), StoreError> {
        // Step 1+2: collect segment files, removing temp leftovers and
        // segments already retired by the manifest.
        let mut ids: Vec<u64> = Vec::new();
        let entries = fs::read_dir(root).map_err(|e| StoreError::io("read dir", root, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir entry", root, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let p = entry.path();
                fs::remove_file(&p).map_err(|e| StoreError::io("remove temp", &p, &e))?;
                continue;
            }
            let Some(id) = parse_segment_id(name) else {
                continue;
            };
            if id < manifest.first_segment_id {
                // Crash between manifest update and unlink: finish the job.
                let p = entry.path();
                fs::remove_file(&p).map_err(|e| StoreError::io("remove retired", &p, &e))?;
                continue;
            }
            ids.push(id);
        }
        ids.sort_unstable();
        if let Some(window) = ids.windows(2).find(|w| w[1] != w[0] + 1) {
            return Err(StoreError::corrupt(
                root,
                format!("segment id gap between {} and {}", window[0], window[1]),
            ));
        }

        // Steps 3–5: parse each file; drop pruned front frames; truncate a
        // torn tail; reject everything else.
        let last_id = ids.last().copied();
        for id in ids {
            let file_path = root.join(segment_file_name(id));
            let bytes =
                fs::read(&file_path).map_err(|e| StoreError::io("read segment", &file_path, &e))?;
            let parsed = parse_segment(&bytes);
            let mut blocks = parsed.blocks;
            match parsed.damage {
                None => {}
                Some(FrameDamage::Undecodable { at }) => {
                    // Fully present but undecodable frame: bit corruption,
                    // not a crash artifact — refuse, wherever it sits.
                    return Err(StoreError::corrupt(
                        &file_path,
                        format!("undecodable frame at offset {at}"),
                    ));
                }
                Some(FrameDamage::Truncated { at }) => {
                    if Some(id) != last_id {
                        return Err(StoreError::corrupt(
                            &file_path,
                            format!("truncated frame at offset {at} in a non-tail segment"),
                        ));
                    }
                    // Crash mid-append: drop the torn suffix.
                    let file = fs::OpenOptions::new()
                        .write(true)
                        .open(&file_path)
                        .map_err(|e| StoreError::io("open for truncate", &file_path, &e))?;
                    file.set_len(at)
                        .map_err(|e| StoreError::io("truncate torn tail", &file_path, &e))?;
                    file.sync_all()
                        .map_err(|e| StoreError::io("fsync truncated", &file_path, &e))?;
                }
            }
            // Crash between manifest update and front rewrite: the first
            // segment may still hold already-pruned frames.
            if self.segments.is_empty() {
                let keep_from = blocks
                    .iter()
                    .position(|b| b.block().number().value() >= manifest.first_block_number)
                    .unwrap_or(blocks.len());
                if keep_from > 0 {
                    blocks.drain(..keep_from);
                    self.rewrite_segment_file(&file_path, &blocks)?;
                }
            }
            if blocks.is_empty() {
                // Nothing live in this file (fully pruned front, or a tail
                // whose only frame was torn): drop it.
                fs::remove_file(&file_path)
                    .map_err(|e| StoreError::io("remove empty segment", &file_path, &e))?;
                continue;
            }
            let sealed = blocks.len() >= self.segment_capacity || Some(id) != last_id;
            self.len += blocks.len();
            self.segments.push_back(Segment { id, blocks, sealed });
        }
        self.next_segment_id = self
            .segments
            .back()
            .map_or(manifest.first_segment_id, |s| s.id + 1);

        // Layout check: O(1) indexing relies on every segment except the
        // (front-pruned) first and the (still filling) last holding exactly
        // `segment_capacity` blocks.
        let count = self.segments.len();
        for (i, segment) in self.segments.iter().enumerate() {
            let file = root.join(segment_file_name(segment.id));
            if segment.blocks.len() > self.segment_capacity {
                return Err(StoreError::corrupt(
                    &file,
                    format!(
                        "{} frames exceed the segment capacity {}",
                        segment.blocks.len(),
                        self.segment_capacity
                    ),
                ));
            }
            if i > 0 && i + 1 < count && segment.blocks.len() != self.segment_capacity {
                return Err(StoreError::corrupt(
                    &file,
                    format!(
                        "interior segment holds {} frames, expected {}",
                        segment.blocks.len(),
                        self.segment_capacity
                    ),
                ));
            }
        }

        // Contiguity check across all replayed frames.
        let mut expected: Option<u64> = None;
        for sealed in self.iter() {
            let n = sealed.block().number().value();
            if let Some(e) = expected {
                if n != e {
                    return Err(StoreError::corrupt(
                        root,
                        format!("non-contiguous block numbers: expected {e}, found {n}"),
                    ));
                }
            }
            expected = Some(n + 1);
        }
        if let Some(first) = self.segments.front().and_then(|s| s.blocks.first()) {
            self.first_block_number = first.block().number().value();
        }
        Ok(())
    }

    /// The directory this store persists to, when rooted.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Whether this store writes through to disk.
    pub fn is_durable(&self) -> bool {
        self.root.is_some()
    }

    /// Blocks per segment file.
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Number of retained segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Fsyncs the tail segment file, making every appended frame durable.
    ///
    /// Called internally before each prune's manifest update; exposed so
    /// drivers can force a durability barrier (e.g. before a planned
    /// shutdown).
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let Some(root) = &self.root else {
            return Ok(());
        };
        if let Some(tail) = self.segments.back() {
            fsync_file(&root.join(segment_file_name(tail.id)))?;
        }
        Ok(())
    }

    /// Append-path fsync behaviour.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync_policy
    }

    /// Sets the append-path fsync behaviour (takes effect on the next
    /// append; the structural barriers are unaffected).
    pub fn set_fsync_policy(&mut self, policy: FsyncPolicy) {
        self.fsync_policy = policy;
    }

    /// Builder-style [`FileStore::set_fsync_policy`].
    #[must_use]
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> FileStore {
        self.fsync_policy = policy;
        self
    }

    /// Tail-segment fsyncs this store issued itself (segment fills,
    /// policy-driven group commits, prune barriers). Diagnostics only.
    pub fn tail_fsyncs(&self) -> u64 {
        self.tail_fsyncs
    }

    /// Fsyncs the tail and books it: every internal tail fsync goes
    /// through here so the counter and the `EveryN` window stay honest.
    fn sync_tail_counted(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        if self.root.is_some() && !self.segments.is_empty() {
            self.tail_fsyncs += 1;
        }
        self.unsynced_appends = 0;
        Ok(())
    }

    fn write_manifest(&self, root: &Path) -> Result<(), StoreError> {
        let manifest = Manifest {
            segment_capacity: self.segment_capacity as u32,
            first_segment_id: self.segments.front().map_or(self.next_segment_id, |s| s.id),
            first_block_number: self.first_block_number,
        };
        atomic_write(&root.join(MANIFEST_NAME), &manifest.encode_bytes())?;
        fsync_dir(root)
    }

    /// Rewrites one segment file to hold exactly `blocks` (atomic).
    fn rewrite_segment_file(&self, path: &Path, blocks: &[SealedBlock]) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        for sealed in blocks {
            bytes.extend_from_slice(&frame_bytes(sealed.block()));
        }
        atomic_write(path, &bytes)
    }

    /// Appends one frame to the tail segment file, through the cached
    /// append handle (opened on first use per segment — the seal hot path
    /// must not pay an open/close per block).
    fn append_frame(&mut self, root: &Path, id: u64, block: &Block) -> Result<(), StoreError> {
        if self.tail_file.as_ref().map(|(tid, _)| *tid) != Some(id) {
            let path = root.join(segment_file_name(id));
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::io("open segment", &path, &e))?;
            self.tail_file = Some((id, file));
        }
        let (_, file) = self.tail_file.as_mut().expect("handle cached above");
        file.write_all(&frame_bytes(block))
            .map_err(|e| StoreError::io("append frame", &root.join(segment_file_name(id)), &e))
    }

    /// Panic adapter: the `BlockStore` trait is infallible, so persistence
    /// failures on a rooted store are unrecoverable here. Callers who need
    /// graceful handling should check disk health via [`FileStore::sync`].
    fn persist(result: Result<(), StoreError>) {
        if let Err(err) = result {
            panic!("file store persistence failed: {err}");
        }
    }
}

impl BlockStore for FileStore {
    type Iter<'a> = FileIter<'a>;

    fn push(&mut self, block: SealedBlock) {
        let needs_new = match self.segments.back() {
            Some(segment) => segment.sealed,
            None => true,
        };
        if needs_new {
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            self.segments.push_back(Segment {
                id,
                blocks: Vec::with_capacity(self.segment_capacity),
                sealed: false,
            });
        }
        let tail_id = self.segments.back().expect("tail exists").id;
        if let Some(root) = self.root.clone() {
            Self::persist(self.append_frame(&root, tail_id, block.block()));
        }
        let block_number = block.block().number().value();
        let capacity = self.segment_capacity;
        let tail = self.segments.back_mut().expect("tail exists");
        tail.blocks.push(block);
        let filled = tail.blocks.len() >= capacity;
        if filled {
            tail.sealed = true;
        }
        self.len += 1;
        if self.len == 1 && self.first_block_number != block_number {
            // First block into an emptied store, at a different number than
            // the manifest's `first_block_number` (e.g. a fresh chain
            // starting over at 0 after a drain left the watermark higher).
            // The manifest must follow, or replay would classify every
            // frame below the stale watermark as pruned and drop it.
            self.first_block_number = block_number;
            if let Some(root) = self.root.clone() {
                Self::persist(self.write_manifest(&root));
            }
        }
        if self.root.is_some() {
            self.unsynced_appends = self.unsynced_appends.saturating_add(1);
        }
        if filled {
            if let Some(root) = &self.root {
                // A filled segment is the durability unit: fsync it. The
                // handle is released — the next push starts a new file.
                Self::persist(fsync_file(&root.join(segment_file_name(tail_id))));
                self.tail_fsyncs += 1;
                self.unsynced_appends = 0;
                self.tail_file = None;
            }
        } else if self.root.is_some() {
            let due = match self.fsync_policy {
                FsyncPolicy::OnFill => false,
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => n > 0 && self.unsynced_appends >= n,
            };
            if due {
                Self::persist(self.sync_tail_counted());
            }
        }
    }

    fn get(&self, index: usize) -> Option<&SealedBlock> {
        if index >= self.len {
            return None;
        }
        let first = self.segments.front()?;
        if index < first.blocks.len() {
            return first.blocks.get(index);
        }
        // Invariant: every segment except the first (front-pruned) and the
        // last (still filling) holds exactly `segment_capacity` live
        // blocks, so the arithmetic is O(1).
        let rest = index - first.blocks.len();
        let segment = 1 + rest / self.segment_capacity;
        let offset = rest % self.segment_capacity;
        self.segments.get(segment)?.blocks.get(offset)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn drain_front(&mut self, count: usize) -> Vec<SealedBlock> {
        let count = count.min(self.len);
        if count == 0 {
            return Vec::new();
        }
        let mut removed: Vec<SealedBlock> = Vec::with_capacity(count);
        let mut retired_ids: Vec<u64> = Vec::new();
        let mut rewritten_front: Option<u64> = None;
        let mut remaining = count;
        while remaining > 0 {
            let front_live = self.segments.front().expect("non-empty").blocks.len();
            if remaining >= front_live {
                let segment = self.segments.pop_front().expect("non-empty");
                retired_ids.push(segment.id);
                removed.extend(segment.blocks);
                remaining -= front_live;
            } else {
                let front = self.segments.front_mut().expect("non-empty");
                removed.extend(front.blocks.drain(..remaining));
                rewritten_front = Some(front.id);
                remaining = 0;
            }
        }
        self.len -= count;
        self.first_block_number = match self.segments.front().and_then(|s| s.blocks.first()) {
            Some(first) => first.block().number().value(),
            // Store emptied: the next live block is whatever follows the
            // last drained one.
            None => removed.last().expect("count > 0").block().number().value() + 1,
        };

        if let Some(root) = self.root.clone() {
            // The front rewrite below may rename the very file the cached
            // append handle points at; drop it (fsync still reaches the
            // inode through a fresh descriptor).
            self.tail_file = None;
            // §IV-C ordering: the tail (holding the carried-forward Σ) must
            // be durable before the manifest makes the prune irreversible.
            // This barrier holds under every FsyncPolicy — group commit
            // may defer append fsyncs, never this one.
            Self::persist(self.sync_tail_counted());
            Self::persist(self.write_manifest(&root));
            if let Some(id) = rewritten_front {
                let path = root.join(segment_file_name(id));
                let front = self.segments.front().expect("partial front retained");
                debug_assert_eq!(front.id, id);
                Self::persist(self.rewrite_segment_file(&path, &front.blocks));
            }
            for id in retired_ids {
                let path = root.join(segment_file_name(id));
                Self::persist(
                    fs::remove_file(&path).map_err(|e| StoreError::io("unlink retired", &path, &e)),
                );
            }
            Self::persist(fsync_dir(&root));
        }
        removed
    }

    fn iter(&self) -> Self::Iter<'_> {
        FileIter {
            store: self,
            next: 0,
        }
    }

    fn reset(&mut self) {
        self.segments.clear();
        self.len = 0;
        self.first_block_number = 0;
        self.tail_file = None;
        if let Some(root) = self.root.clone() {
            let result = (|| -> Result<(), StoreError> {
                // Manifest first: once `first_segment_id` points past every
                // existing file, a crash anywhere in the unlink loop leaves
                // only stale segments, which `open` removes — never an id
                // gap. (A crash *before* the manifest keeps the old chain
                // intact; a crash *after* leaves a valid empty store, the
                // same state the caller was creating anyway — callers of
                // reset, e.g. `adopt_chain`, re-sync content from peers.)
                self.write_manifest(&root)?;
                let entries =
                    fs::read_dir(&root).map_err(|e| StoreError::io("read dir", &root, &e))?;
                for entry in entries {
                    let entry = entry.map_err(|e| StoreError::io("read dir entry", &root, &e))?;
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if parse_segment_id(name).is_some() || name.ends_with(".tmp") {
                        let p = entry.path();
                        fs::remove_file(&p)
                            .map_err(|e| StoreError::io("remove segment", &p, &e))?;
                    }
                }
                fsync_dir(&root)
            })();
            Self::persist(result);
        }
    }
}

/// Oldest-first iterator over a [`FileStore`].
#[derive(Debug)]
pub struct FileIter<'a> {
    store: &'a FileStore,
    next: usize,
}

impl<'a> Iterator for FileIter<'a> {
    type Item = &'a SealedBlock;

    fn next(&mut self) -> Option<&'a SealedBlock> {
        let item = self.store.get(self.next)?;
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.store.len.saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for FileIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::store::MemStore;
    use crate::testutil::ScratchDir as Scratch;
    use crate::types::{BlockNumber, Timestamp};

    fn sealed(n: u64) -> SealedBlock {
        SealedBlock::seal(Block::new(
            BlockNumber(n),
            Timestamp(n * 10),
            seldel_crypto::sha256(n.to_le_bytes()),
            BlockBody::Empty,
            Seal::Deterministic,
        ))
    }

    fn store_with(dir: &Path, cap: usize, blocks: std::ops::Range<u64>) -> FileStore {
        let mut store = FileStore::open_with_capacity(dir, cap).unwrap();
        for n in blocks {
            store.push(sealed(n));
        }
        store
    }

    #[test]
    fn unrooted_default_matches_mem_store() {
        let mut file = FileStore::default();
        let mut mem = MemStore::default();
        for n in 0..150 {
            file.push(sealed(n));
            mem.push(sealed(n));
        }
        file.drain_front(70);
        mem.drain_front(70);
        assert_eq!(file.len(), mem.len());
        assert!(file.iter().eq(mem.iter()));
        for i in 0..mem.len() {
            assert_eq!(file.get(i), mem.get(i));
        }
        assert!(!file.is_durable());
    }

    #[test]
    fn close_and_reopen_round_trips() {
        let scratch = Scratch::new("reopen");
        {
            let _store = store_with(scratch.path(), 8, 0..30);
        }
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.segment_capacity(), 8);
        assert_eq!(reopened.len(), 30);
        let fresh: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(fresh, (0..30).collect::<Vec<_>>());
        // Sealed-hash cache rebuilt correctly.
        assert!(reopened.iter().all(|s| s.hash() == s.block().hash()));
    }

    #[test]
    fn prune_unlinks_whole_segments_and_rewrites_partial_front() {
        let scratch = Scratch::new("prune");
        let mut store = store_with(scratch.path(), 4, 0..12); // 3 files
        assert_eq!(store.segment_count(), 3);
        let removed = store.drain_front(6); // 1.5 files
        assert_eq!(removed.len(), 6);
        assert!(!scratch.path().join(segment_file_name(0)).exists());
        // The partial front file only holds the live frames.
        let bytes = fs::read(scratch.path().join(segment_file_name(1))).unwrap();
        let parsed = parse_segment(&bytes);
        assert_eq!(parsed.blocks.len(), 2);
        assert_eq!(parsed.blocks[0].block().number(), BlockNumber(6));
        // Reopen agrees.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(6));
    }

    #[test]
    fn drain_front_clamps_beyond_len() {
        // The trait contract: count > len() empties the store, no panic.
        let scratch = Scratch::new("clamp");
        let mut store = store_with(scratch.path(), 4, 0..5);
        let removed = store.drain_front(99);
        assert_eq!(removed.len(), 5);
        assert!(store.is_empty());
        // The directory holds no segment files anymore.
        let leftover: Vec<_> = fs::read_dir(scratch.path())
            .unwrap()
            .filter_map(|e| parse_segment_id(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        assert!(leftover.is_empty(), "segments left: {leftover:?}");
        // And pushes keep working after emptying.
        store.push(sealed(5));
        assert_eq!(store.get(0).unwrap().block().number(), BlockNumber(5));
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn emptied_store_refilled_with_lower_numbers_survives_reopen() {
        // Draining to empty leaves the manifest watermark at last+1; a new
        // chain started in the same store from block 0 must move the
        // watermark back down, or replay would classify every frame below
        // it as pruned-front garbage and silently drop the whole chain.
        let scratch = Scratch::new("refill-low");
        let mut store = store_with(scratch.path(), 4, 10..15);
        store.drain_front(99);
        assert!(store.is_empty());
        for n in 0..3 {
            store.push(sealed(n));
        }
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(0));
    }

    #[test]
    fn torn_tail_frame_is_truncated_on_open() {
        let scratch = Scratch::new("torn");
        let store = store_with(scratch.path(), 8, 0..10);
        let tail = scratch.path().join(segment_file_name(1));
        drop(store);
        // Chop a few bytes off the last frame: crash mid-append.
        let len = fs::metadata(&tail).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&tail).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 9, "torn frame must be dropped");
        assert_eq!(reopened.last().unwrap().block().number(), BlockNumber(8));
        // The file was physically truncated, so a second open is clean.
        let reopened2 = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened2.len(), 9);
    }

    #[test]
    fn bit_flip_in_tail_segment_is_corruption_not_torn_tail() {
        // A fully present but undecodable frame can never come from an
        // interrupted append (length + body land in one write), so it must
        // be refused even in the newest segment — silently truncating it
        // would discard valid (possibly fsynced) frames after the flip.
        let scratch = Scratch::new("tailflip");
        let store = store_with(scratch.path(), 8, 0..6);
        let tail = scratch.path().join(segment_file_name(0));
        drop(store);
        let mut bytes = fs::read(&tail).unwrap();
        // Clobber the first frame's body (its length prefix stays intact,
        // so the frame is "fully present" yet undecodable); frames 1..6
        // after it remain valid.
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        for b in &mut bytes[4..4 + len] {
            *b = 0xFF;
        }
        fs::write(&tail, bytes).unwrap();
        let err = FileStore::open(scratch.path()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn corruption_in_middle_segment_is_rejected() {
        let scratch = Scratch::new("corrupt");
        let store = store_with(scratch.path(), 4, 0..12);
        drop(store);
        let middle = scratch.path().join(segment_file_name(1));
        let mut bytes = fs::read(&middle).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        fs::write(&middle, bytes).unwrap();
        let err = FileStore::open(scratch.path()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn stale_retired_segment_is_removed_on_open() {
        let scratch = Scratch::new("stale");
        let mut store = store_with(scratch.path(), 4, 0..12);
        // Keep a copy of the first file, prune it away, then "un-delete"
        // it — the state a crash between manifest update and unlink leaves.
        let first = scratch.path().join(segment_file_name(0));
        let saved = fs::read(&first).unwrap();
        store.drain_front(4);
        assert!(!first.exists());
        drop(store);
        fs::write(&first, saved).unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 8);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(4));
        assert!(!first.exists(), "stale segment must be unlinked");
    }

    #[test]
    fn stale_front_frames_are_dropped_on_open() {
        let scratch = Scratch::new("stalefront");
        let mut store = store_with(scratch.path(), 4, 0..10);
        // Save the front-to-be before a partial prune, restore it after:
        // the state a crash between manifest update and front rewrite
        // leaves behind.
        let front = scratch.path().join(segment_file_name(1));
        let saved = fs::read(&front).unwrap();
        store.drain_front(6); // drops file 0 whole, halves file 1
        drop(store);
        fs::write(&front, saved).unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(6));
        // The recovery rewrote the file: pruned frames are physically gone.
        let bytes = fs::read(&front).unwrap();
        let parsed = parse_segment(&bytes);
        assert_eq!(parsed.blocks.len(), 2);
    }

    #[test]
    fn temp_files_are_cleaned_on_open() {
        let scratch = Scratch::new("tmp");
        let store = store_with(scratch.path(), 4, 0..3);
        drop(store);
        let stray = scratch.path().join("MANIFEST.tmp");
        fs::write(&stray, b"half-written").unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert!(!stray.exists());
    }

    #[test]
    fn clone_is_a_detached_snapshot() {
        let scratch = Scratch::new("clone");
        let store = store_with(scratch.path(), 4, 0..6);
        let mut snapshot = store.clone();
        assert!(!snapshot.is_durable());
        assert_eq!(snapshot, store);
        // Mutating the clone never touches the original's directory.
        snapshot.push(sealed(6));
        drop(snapshot);
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
    }

    #[test]
    fn reset_keeps_the_root_but_wipes_the_log() {
        let scratch = Scratch::new("reset");
        let mut store = store_with(scratch.path(), 4, 0..9);
        store.reset();
        assert!(store.is_empty());
        assert!(store.is_durable());
        store.push(sealed(0));
        store.push(sealed(1));
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(0));
    }

    #[test]
    fn refilled_front_segment_seals_at_capacity() {
        // A single partially pruned, unsealed segment keeps taking appends
        // until its *live* count reaches capacity, so the middle-segments-
        // are-full invariant behind O(1) get() holds.
        let scratch = Scratch::new("refill");
        let mut store = store_with(scratch.path(), 4, 0..3);
        store.drain_front(2);
        for n in 3..8 {
            store.push(sealed(n));
        }
        assert_eq!(store.len(), 6);
        for (i, expect) in (2..8).enumerate() {
            assert_eq!(
                store.get(i).unwrap().block().number(),
                BlockNumber(expect),
                "index {i}"
            );
        }
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
        let numbers: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(numbers, (2..8).collect::<Vec<_>>());
    }

    #[test]
    fn fsync_policies_drive_the_tail_fsync_cadence() {
        // Default (OnFill): no tail fsync until a segment fills.
        let scratch = Scratch::new("policy-default");
        let mut store = FileStore::open_with_capacity(scratch.path(), 8).unwrap();
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 0, "OnFill must not sync mid-segment");
        for n in 5..8 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 1, "the fill fsync");

        // Always: one tail fsync per appended frame.
        let scratch = Scratch::new("policy-always");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Always);
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 5);

        // EveryN(2): group commit at frames 2 and 4.
        let scratch = Scratch::new("policy-every2");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::EveryN(2));
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 2);
        assert_eq!(store.fsync_policy(), FsyncPolicy::EveryN(2));
    }

    #[test]
    fn every_n_still_fsyncs_the_tail_before_each_prunes_manifest_write() {
        // The group-commit window must never defer the §IV-C barrier: even
        // with EveryN far from due, drain_front fsyncs the tail before the
        // manifest write makes the prune irreversible.
        let scratch = Scratch::new("policy-barrier");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::EveryN(1_000_000));
        for n in 0..6 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 0, "window far from due");
        let removed = store.drain_front(2);
        assert_eq!(removed.len(), 2);
        assert_eq!(
            store.tail_fsyncs(),
            1,
            "prune barrier must fsync the tail regardless of the policy"
        );
        // The surviving frames were durable before the manifest moved:
        // a reopen sees exactly blocks 2..6.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(2));
        assert_eq!(reopened.last().unwrap().block().number(), BlockNumber(5));
    }

    #[test]
    fn unsupported_version_is_reported() {
        let scratch = Scratch::new("version");
        let store = store_with(scratch.path(), 4, 0..1);
        drop(store);
        let manifest = Manifest {
            segment_capacity: 4,
            first_segment_id: 0,
            first_block_number: 0,
        };
        let mut bytes = manifest.encode_bytes();
        bytes[8] = 0xEE; // clobber the version field
        fs::write(scratch.path().join(MANIFEST_NAME), bytes).unwrap();
        assert!(matches!(
            FileStore::open(scratch.path()),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }
}

//! `FileStore` — the durable, file-backed segment log, **paged**: the
//! live chain can be several times larger than resident memory.
//!
//! [`SegStore`](crate::store::SegStore) is "the in-memory shape of a
//! file-backed log"; this module is that log made real. A rooted
//! [`FileStore`] keeps the live chain in a directory:
//!
//! ```text
//! <root>/MANIFEST            versioned store metadata (see below)
//! <root>/seg-0000000000.seg  checksummed block frames, oldest segment
//! <root>/seg-0000000001.seg  ...
//! ```
//!
//! Every segment file holds up to `segment_capacity` frames. A **v3
//! frame** is:
//!
//! ```text
//! u32  len           bytes after this field (97 + block bytes)
//! u8   flags         bit 0: payload root present
//! [32] header hash   the block's sealed digest
//! [32] payload root  the body's Merkle root (zero when absent)
//! [32] checksum      sha256(tag ‖ flags ‖ header hash ‖ root ‖ block bytes)
//! [..] block bytes   the block's canonical `seldel-codec` encoding
//! ```
//!
//! The manifest records the format version, the segment capacity, the id
//! of the first live segment and the number of the first live block —
//! everything replay needs that the frames alone cannot say.
//!
//! # Paging: offset table, streaming replay, hot-block cache
//!
//! A rooted store does **not** keep blocks in memory. It keeps one
//! `FrameMeta` per block — segment id, byte offset, frame length, block
//! number, header hash, payload root (the *segment offset table*) — and
//! serves reads straight from the segment files:
//!
//! * [`FileStore::open`] rebuilds the table by **streaming replay**: each
//!   segment file is read once, every frame's checksum is verified (one
//!   hash per frame) and only the 97-byte frame header plus the block
//!   header prefix are decoded. No block is materialised and nothing is
//!   re-sealed — replay cost is one SHA-256 per block, not a full
//!   re-hash of every payload.
//! * [`BlockStore::get`] resolves the index through the table in O(1),
//!   then serves the block from a small **hot-block LRU cache**
//!   (configurable via [`FileStore::with_hot_cache_capacity`] or the
//!   `SELDEL_HOT_CACHE_BLOCKS` environment variable, default
//!   [`DEFAULT_HOT_CACHE_BLOCKS`]) or, on a miss, by reading exactly one
//!   frame from disk. The cached digests come from the table, so a cold
//!   read decodes but never hashes.
//! * [`BlockStore::iter`] streams each segment sequentially through its
//!   own buffered reader, bypassing the cache — an O(n) scan must not
//!   evict the hot set.
//! * Pushed blocks are appended to the tail file, their meta is added to
//!   the table and the block itself goes into the hot cache (the tip is
//!   always the next linkage check's predecessor).
//!
//! The stored header hash and payload root are trusted on replay because
//! the checksum covers them: any *accidental* corruption is caught at
//! open. An adversary who rewrites a frame *and* its checksum defeats the
//! cache but not the system — full validation re-derives payload roots
//! from the body bytes, proofs re-hash leaves, and the quorum-attested
//! tip hash pins the chain head (the tamper matrix pins all four
//! channels).
//!
//! An **unrooted** `FileStore` (via `Default`, or `Clone` — see below)
//! has no files to page from, so it keeps every block resident and
//! behaves like a plain in-memory segment store.
//!
//! # Durability contract (fsync points)
//!
//! * a segment file is fsynced when it **fills** (seals);
//! * the **manifest** is written via temp-file + atomic rename and fsynced
//!   on every update, with a directory fsync after;
//! * before a prune's manifest update the current tail segment is fsynced,
//!   so a carried-forward summary block is always durable **before** the
//!   pruned blocks it absorbs become unrecoverable (§IV-C ordering);
//! * appends between those barriers are *not* fsynced — a crash may lose a
//!   suffix of recent frames, which the node layer re-syncs from peers.
//!
//! # Deferred-durability commit stage (pipelined mode)
//!
//! [`FileStore::enable_pipelined_commits`] moves the fsyncs the append
//! path owes (segment fills, [`FsyncPolicy`] group commits) off the
//! caller's critical path: instead of stalling in `sync_all`, the push
//! enqueues the fsync on a background **commit stage** (one worker thread
//! blocked in I/O — an overlap win even on one core) and returns. The
//! store then exposes a **durable watermark**:
//!
//! * [`FileStore::durable_up_to`] — the highest block number guaranteed
//!   to survive a power cut. It advances when the commit stage completes
//!   a deferred fsync, or synchronously at the barriers below.
//! * [`FileStore::commit_durable`] — a foreground durability barrier: it
//!   drains the commit queue **inline** (never waiting on the worker, so
//!   a paused stage cannot deadlock it) and fsyncs the tail, after which
//!   the watermark equals the tip.
//!
//! The §IV-C prune barrier is preserved: [`BlockStore::drain_front`]
//! drains every deferred fsync inline before the manifest write, so the
//! carried-forward Σ is durable — including fsyncs covering the segments
//! about to be rewritten or unlinked — before the prune becomes
//! irreversible. Deferred jobs hold duplicated file descriptors, so an
//! fsync issued after a rename/unlink still reaches the right inode.
//! Unrooted stores (and clones, which are unrooted by design) have
//! nothing to fsync and never run a commit stage.
//!
//! In pipelined mode the prune's own *file ops* are deferred too: a
//! partially retired front segment keeps its frame offsets in the
//! original file coordinates and the rewrite runs on the commit stage as
//! a **deferred compaction** (readers translate offsets through the
//! stage's layout table until it lands; [`FileStore::commit_durable`]
//! and a clean close force it). This is what makes sealing overlap the
//! prune's multi-megabyte rewrites instead of just its fsyncs. The
//! manifest still precedes the rewrite, so a crash that loses a queued
//! compaction leaves exactly the state recovery step 3 below already
//! heals. The tail segment is never compacted asynchronously (appends
//! record offsets against the live file), so when the store holds a
//! single segment the prune falls back to the synchronous rewrite.
//!
//! # Physical deletion (§IV-C)
//!
//! Pruning the front is executed on disk, not just in memory: wholly
//! retired segments are **unlinked**, and a partially retired front
//! segment is **rewritten** (temp file + rename) without the pruned
//! frames — a raw byte-range copy through the offset table, no re-encode.
//! Pruned blocks are also evicted from the hot cache, so after
//! [`BlockStore::drain_front`] returns the deleted entry payloads are
//! absent from both the directory's raw bytes and the store's memory —
//! the property tests grep for a sentinel payload to pin exactly that.
//!
//! # Crash recovery ([`FileStore::open`])
//!
//! The prune sequence is `fsync tail → manifest → rewrite front → unlink
//! retired`, so the manifest is authoritative. `open` finishes whatever a
//! crash interrupted:
//!
//! 1. stray `*.tmp` files are removed;
//! 2. segment files with an id below the manifest's `first_segment_id`
//!    are unlinked (a crash before the unlink step);
//! 3. leading frames of the first segment whose block number lies below
//!    `first_block_number` are dropped and the file is rewritten (a crash
//!    before the front rewrite);
//! 4. a torn frame at the very tail of the newest segment (a crash
//!    mid-append) is truncated away; torn frames anywhere else, and
//!    checksum-failing frames **anywhere including the tail**, are
//!    reported as corruption;
//! 5. the surviving frame metas are checked for contiguous block numbers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::fs;
use std::io::{BufReader, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use seldel_codec::{Codec, Decoder, Encoder};
use seldel_crypto::{Digest32, Sha256};

use crate::block::{Block, BlockHeader};
use crate::store::{BlockRef, BlockStore, SealedBlock, SEGMENT_CAPACITY};

/// Manifest file name inside a store directory.
const MANIFEST_NAME: &str = "MANIFEST";

/// Magic prefix of the manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"SELDELFS";

/// Current manifest format version.
///
/// * v1 — original frame log.
/// * v2 — summary bodies carry a deletion-tombstone list (wire change in
///   `BlockBody::Summary`), so v1 stores no longer decode.
/// * v3 — checksummed frames carrying the sealed digests (header hash +
///   payload root), enabling streaming replay and paged reads.
const MANIFEST_VERSION: u32 = 3;

/// Domain tag mixed into every frame checksum.
const FRAME_CHECKSUM_TAG: &[u8] = b"seldel.frame.v3";

/// Frame bytes between the length field and the block bytes:
/// flags (1) + header hash (32) + payload root (32) + checksum (32).
const FRAME_HEADER_LEN: usize = 97;

/// Frame flag bit 0: the payload-root field carries a real root.
const FRAME_FLAG_PAYLOAD_ROOT: u8 = 1;

/// Default hot-block cache capacity, in blocks.
///
/// Overridable per store via [`FileStore::with_hot_cache_capacity`] /
/// [`FileStore::set_hot_cache_capacity`], or process-wide at open time
/// via the `SELDEL_HOT_CACHE_BLOCKS` environment variable.
pub const DEFAULT_HOT_CACHE_BLOCKS: usize = 1024;

/// Environment variable naming the hot-cache capacity (in blocks) a
/// rooted store opens with. Unset or unparsable values fall back to
/// [`DEFAULT_HOT_CACHE_BLOCKS`].
pub const HOT_CACHE_ENV: &str = "SELDEL_HOT_CACHE_BLOCKS";

/// Environment variable selecting the [`FsyncPolicy`] a rooted store
/// opens with: `onfill`, `always`, or `every:<n>`. Unset or unparsable
/// values fall back to [`FsyncPolicy::OnFill`]. Lets CI run whole test
/// suites under the worst-case stall policy (`always`) without code
/// changes; [`FileStore::set_fsync_policy`] still overrides per store.
pub const FSYNC_POLICY_ENV: &str = "SELDEL_FSYNC_POLICY";

fn parse_fsync_policy(value: &str) -> Option<FsyncPolicy> {
    let v = value.trim().to_ascii_lowercase();
    match v.as_str() {
        "onfill" | "on-fill" => Some(FsyncPolicy::OnFill),
        "always" => Some(FsyncPolicy::Always),
        _ => v
            .strip_prefix("every:")
            .and_then(|n| n.parse().ok())
            .map(FsyncPolicy::EveryN),
    }
}

/// Errors raised by [`FileStore`] persistence.
///
/// I/O errors are carried as rendered strings so the type stays `Clone` /
/// `PartialEq` like every other error in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The operation that failed (e.g. `"create dir"`).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The manifest or a segment file is corrupt beyond recovery.
    Corrupt {
        /// The file involved.
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// The store directory holds a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version found in the manifest.
        found: u32,
    },
}

impl StoreError {
    fn io(op: &'static str, path: &Path, err: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }

    fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store i/o failure ({op} {path}): {message}")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {path}: {detail}")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// When the append path fsyncs the tail segment, beyond the structural
/// barriers (segment fill, prune) that always hold.
///
/// The durability floor is identical under every policy: a filled segment
/// is fsynced when it seals, and the tail is fsynced **before each
/// prune's manifest write** (the §IV-C ordering — carried Σ records must
/// be durable before the pruned blocks become unrecoverable). The policy
/// only decides how much of the *unfilled* tail a power cut may lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync only at the structural barriers — today's default: appends
    /// between barriers are not fsynced, so a crash may lose a suffix of
    /// recent frames (the node layer re-syncs them from peers).
    #[default]
    OnFill,
    /// Fsync the tail after every appended frame. Maximum durability,
    /// one disk flush per sealed block.
    Always,
    /// Group commit: fsync the tail after every `n`-th appended frame
    /// since the last tail fsync (whatever its cause). `EveryN(1)` equals
    /// [`FsyncPolicy::Always`]; large `n` approaches, and `EveryN(0)` is
    /// treated as, [`FsyncPolicy::OnFill`].
    EveryN(u32),
}

/// The manifest: everything replay needs that frames cannot carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Manifest {
    segment_capacity: u32,
    first_segment_id: u64,
    first_block_number: u64,
}

impl Manifest {
    fn encode_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(MANIFEST_MAGIC);
        enc.put_u32(MANIFEST_VERSION);
        enc.put_u32(self.segment_capacity);
        enc.put_u64(self.first_segment_id);
        enc.put_u64(self.first_block_number);
        enc.into_bytes()
    }

    fn decode_bytes(path: &Path, bytes: &[u8]) -> Result<Manifest, StoreError> {
        let mut dec = Decoder::new(bytes);
        let magic: [u8; 8] = dec
            .take_array()
            .map_err(|e| StoreError::corrupt(path, format!("manifest too short: {e}")))?;
        if &magic != MANIFEST_MAGIC {
            return Err(StoreError::corrupt(path, "bad manifest magic"));
        }
        let version = dec
            .take_u32()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let segment_capacity = dec
            .take_u32()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        let first_segment_id = dec
            .take_u64()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        let first_block_number = dec
            .take_u64()
            .map_err(|e| StoreError::corrupt(path, format!("manifest truncated: {e}")))?;
        if segment_capacity == 0 {
            return Err(StoreError::corrupt(path, "segment capacity is zero"));
        }
        if !dec.is_exhausted() {
            return Err(StoreError::corrupt(path, "trailing bytes in manifest"));
        }
        Ok(Manifest {
            segment_capacity,
            first_segment_id,
            first_block_number,
        })
    }
}

/// One row of the segment offset table: where a block's frame lives and
/// what replay learned about it — everything the store needs to *serve*
/// the block except the block bytes themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FrameMeta {
    /// Byte offset of the frame (length field included) in its segment
    /// file.
    offset: u64,
    /// Total frame length on disk (length field included).
    len: u32,
    /// Monotone per-store sequence number — the hot-cache key. Stable
    /// across drains, unlike the store index.
    seq: u64,
    /// The block's number.
    number: u64,
    /// The block's canonical encoded size in bytes.
    block_bytes: u32,
    /// The block's sealed digest (from the frame, checksum-covered).
    hash: Digest32,
    /// The body's Merkle root, when the writer sealed one.
    payload_root: Option<Digest32>,
}

/// One table entry: the meta plus, on unrooted stores only, the resident
/// block (there is no file to page it from).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    meta: FrameMeta,
    resident: Option<SealedBlock>,
}

/// One in-memory segment mirroring one on-disk file: just the offset
/// table rows, never the blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    /// File id (`seg-<id>.seg`).
    id: u64,
    /// Frame table, oldest first.
    frames: Vec<Frame>,
    /// Sealed segments never take another append.
    sealed: bool,
    /// Bytes of pruned front frames whose physical removal is deferred to
    /// the commit stage (pipelined mode). While non-zero the frame
    /// offsets above stay in the file's *original* coordinates; readers
    /// translate through the stage's layout table, which records how much
    /// of this cut a completed compaction has already removed. Zero on
    /// the synchronous path, where prunes rewrite the file immediately
    /// and shift the offsets in place.
    cut: u64,
}

impl Segment {
    /// Byte length of the segment file (where the next append lands).
    fn file_len(&self) -> u64 {
        self.frames
            .last()
            .map_or(0, |f| f.meta.offset + f.meta.len as u64)
    }
}

/// A cached hot block.
#[derive(Debug)]
struct CacheSlot {
    block: Arc<SealedBlock>,
    stamp: u64,
    bytes: u64,
}

/// The interior of the hot-block cache: `seq → slot` plus an LRU order
/// (`stamp → seq`). Guarded by a mutex because [`BlockStore::get`] takes
/// `&self` but a hit must bump recency and a miss must insert.
#[derive(Debug, Default)]
struct HotCacheInner {
    slots: HashMap<u64, CacheSlot>,
    lru: BTreeMap<u64, u64>,
    next_stamp: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
}

/// The hot-block LRU cache of a rooted store.
#[derive(Debug)]
struct HotCache {
    inner: Mutex<HotCacheInner>,
    capacity: usize,
}

impl HotCache {
    fn new(capacity: usize) -> HotCache {
        HotCache {
            inner: Mutex::new(HotCacheInner::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HotCacheInner> {
        // A poisoned cache mutex means a panic mid-bookkeeping; the data
        // is only derived state, so keep serving it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A hit bumps recency; a miss is counted.
    fn get(&self, seq: u64) -> Option<Arc<SealedBlock>> {
        let mut inner = self.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        match inner.slots.get_mut(&seq) {
            Some(slot) => {
                let old = slot.stamp;
                slot.stamp = stamp;
                let block = Arc::clone(&slot.block);
                inner.lru.remove(&old);
                inner.lru.insert(stamp, seq);
                inner.hits += 1;
                seldel_telemetry::count!("fstore.cache.hit");
                Some(block)
            }
            None => {
                inner.misses += 1;
                seldel_telemetry::count!("fstore.cache.miss");
                None
            }
        }
    }

    /// A plain lookup: no recency bump, no hit/miss accounting (the drain
    /// path peeks so pruning does not distort the counters).
    fn peek(&self, seq: u64) -> Option<Arc<SealedBlock>> {
        self.lock().slots.get(&seq).map(|s| Arc::clone(&s.block))
    }

    fn insert(&self, seq: u64, block: Arc<SealedBlock>) {
        if self.capacity == 0 {
            return;
        }
        let bytes = block.byte_size() as u64;
        let mut inner = self.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some(old) = inner.slots.insert(
            seq,
            CacheSlot {
                block,
                stamp,
                bytes,
            },
        ) {
            inner.lru.remove(&old.stamp);
            inner.bytes -= old.bytes;
        }
        inner.lru.insert(stamp, seq);
        inner.bytes += bytes;
        while inner.slots.len() > self.capacity {
            let (&oldest, &victim) = inner.lru.iter().next().expect("lru tracks every slot");
            inner.lru.remove(&oldest);
            let slot = inner.slots.remove(&victim).expect("slot tracked in lru");
            inner.bytes -= slot.bytes;
            seldel_telemetry::count!("fstore.cache.evict");
        }
    }

    fn remove(&self, seq: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.remove(&seq) {
            inner.lru.remove(&slot.stamp);
            inner.bytes -= slot.bytes;
        }
    }

    fn clear(&self) {
        let mut inner = self.lock();
        inner.slots.clear();
        inner.lru.clear();
        inner.bytes = 0;
    }

    fn len(&self) -> usize {
        self.lock().slots.len()
    }

    fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    fn hits(&self) -> u64 {
        self.lock().hits
    }

    fn misses(&self) -> u64 {
        self.lock().misses
    }
}

/// One queued unit of deferred storage work.
#[derive(Debug)]
enum CommitJob {
    /// Fsync `file` so every frame appended to that segment before the
    /// enqueue becomes durable through block `up_to`. The descriptor is a
    /// duplicate of the append handle — fsync on a dup reaches the inode
    /// even after the path is renamed or unlinked, so a prune racing the
    /// worker cannot strand the job.
    Fsync {
        file: fs::File,
        path: PathBuf,
        up_to: u64,
    },
    /// Physically remove the first `cut` bytes (in the segment's original
    /// byte coordinates) from the front segment at `path` — the prune's
    /// deferred file rewrite. Runs after the manifest already recorded
    /// the prune, so losing the job to a crash merely leaves garbage that
    /// replay removes on the next open (the same state a crash between
    /// manifest and rewrite always produced).
    Compact {
        path: PathBuf,
        segment_id: u64,
        cut: u64,
    },
}

/// The mutex-guarded half of the commit stage.
#[derive(Debug, Default)]
struct CommitQueue {
    jobs: VecDeque<CommitJob>,
    /// Test/sim hook: a held worker completes no fsync, freezing the
    /// watermark (foreground barriers drain the queue inline instead).
    hold: bool,
    shutdown: bool,
    /// First deferred-fsync failure; surfaced at the next barrier or
    /// enqueue. The worker stops consuming once set.
    error: Option<StoreError>,
}

/// State shared between a pipelined store and its commit worker.
#[derive(Debug)]
struct CommitShared {
    state: Mutex<CommitQueue>,
    wake: Condvar,
    /// Durable frontier advanced by the worker: highest durable block
    /// number + 1 (0 = none yet).
    frontier: AtomicU64,
    /// Fsyncs the worker completed (folds into `tail_fsyncs()`).
    fsyncs: AtomicU64,
    /// Physical-layout table for deferred compaction: `segment id →
    /// bytes already removed from the front of its file`. The lock is
    /// held across a compaction's read → rewrite → rename, by readers
    /// while translating a frame offset into the current physical layout
    /// and opening the file, and by the prune while unlinking retired
    /// segments — the three parties that must not interleave. A reader
    /// only needs it until its descriptor is open: a later compaction
    /// renames a fresh file into place and never mutates the open inode.
    layout: Mutex<HashMap<u64, u64>>,
}

impl CommitShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, CommitQueue> {
        // A poisoned queue mutex means a panic mid-bookkeeping; the jobs
        // are only pending fsyncs, so keep draining them.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn layout_lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, u64>> {
        // Same reasoning: the table only mirrors completed renames.
        self.layout.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The background half of pipelined mode: one worker thread that sits in
/// `sync_all` so the append path does not have to.
#[derive(Debug)]
struct CommitStage {
    shared: Arc<CommitShared>,
    worker: Option<thread::JoinHandle<()>>,
}

impl CommitStage {
    fn spawn() -> CommitStage {
        let shared = Arc::new(CommitShared {
            state: Mutex::new(CommitQueue::default()),
            wake: Condvar::new(),
            frontier: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            layout: Mutex::new(HashMap::new()),
        });
        let worker = thread::Builder::new()
            .name("seldel-commit".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || commit_worker(&shared)
            })
            .expect("spawn commit worker");
        CommitStage {
            shared,
            worker: Some(worker),
        }
    }

    fn enqueue(&self, job: CommitJob) {
        {
            let mut state = self.shared.lock();
            state.jobs.push_back(job);
            seldel_telemetry::count!("fstore.commit.enqueued");
            seldel_telemetry::gauge_set!("fstore.commit.queue_depth", state.jobs.len() as u64);
            seldel_telemetry::gauge_max!("fstore.commit.queue_peak", state.jobs.len() as u64);
        }
        self.shared.wake.notify_one();
    }

    /// Steals every queued job so the caller can run them inline — the
    /// foreground half of a durability barrier. Never waits on the
    /// worker, so a held stage cannot deadlock a barrier.
    fn steal_jobs(&self) -> Result<Vec<CommitJob>, StoreError> {
        let mut state = self.shared.lock();
        if let Some(err) = state.error.take() {
            return Err(err);
        }
        Ok(state.jobs.drain(..).collect())
    }

    fn take_error(&self) -> Option<StoreError> {
        self.shared.lock().error.take()
    }
}

impl Drop for CommitStage {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            state.hold = false;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            // The worker drains remaining jobs before exiting, so a clean
            // close leaves everything it was handed durable.
            let _ = worker.join();
        }
    }
}

fn commit_worker(shared: &CommitShared) {
    loop {
        let mut batch: Vec<CommitJob> = Vec::new();
        {
            let mut state = shared.lock();
            loop {
                if state.error.is_none() && !state.hold && !state.jobs.is_empty() {
                    batch.extend(state.jobs.drain(..));
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.wake.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        let mut i = 0;
        while i < batch.len() {
            let outcome = match &batch[i] {
                CommitJob::Compact {
                    path,
                    segment_id,
                    cut,
                } => {
                    i += 1;
                    let _span = seldel_telemetry::span!("fstore.compact");
                    perform_compact(shared, path, *segment_id, *cut)
                }
                CommitJob::Fsync { path: first, .. } => {
                    // Group commit: a run of fsyncs against the same file
                    // needs one fsync covering the run's last watermark.
                    // Runs against different files stay ordered — the
                    // frontier may only advance once every earlier frame
                    // is durable.
                    let mut last = i;
                    while let Some(CommitJob::Fsync { path, .. }) = batch.get(last + 1) {
                        if path != first {
                            break;
                        }
                        last += 1;
                    }
                    seldel_telemetry::observe!("fstore.commit.batch", (last - i + 1) as u64);
                    let CommitJob::Fsync { file, path, up_to } = &batch[last] else {
                        unreachable!("run scan only extends over fsync jobs");
                    };
                    i = last + 1;
                    let synced = {
                        let _span = seldel_telemetry::span!("fstore.fsync");
                        file.sync_all()
                    };
                    match synced {
                        Ok(()) => {
                            shared.fsyncs.fetch_add(1, Ordering::Relaxed);
                            shared.frontier.fetch_max(up_to + 1, Ordering::Release);
                            Ok(())
                        }
                        Err(e) => Err(StoreError::io("deferred fsync", path, &e)),
                    }
                }
            };
            if let Err(err) = outcome {
                let mut state = shared.lock();
                if state.error.is_none() {
                    state.error = Some(err);
                }
                break;
            }
        }
    }
}

/// Executes one deferred front-segment compaction: rewrites the file at
/// `path` without its first `cut` bytes, where `cut` is measured in the
/// segment's original byte coordinates and the layout table records how
/// much earlier compactions already removed. Idempotent and monotone —
/// replaying or re-stealing a job is harmless. A missing file means the
/// segment fully retired (and was unlinked) after the job was queued:
/// nothing left to compact.
fn perform_compact(
    shared: &CommitShared,
    path: &Path,
    segment_id: u64,
    cut: u64,
) -> Result<(), StoreError> {
    let mut applied = shared.layout_lock();
    let done = applied.get(&segment_id).copied().unwrap_or(0);
    if cut <= done {
        return Ok(());
    }
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(StoreError::io("read for compaction", path, &e)),
    };
    atomic_write(path, &bytes[(cut - done) as usize..])?;
    applied.insert(segment_id, cut);
    Ok(())
}

/// A durable, file-backed, paged segment store.
///
/// See the [module docs](self) for the on-disk format, the offset table /
/// hot-cache read path, fsync points and recovery behaviour.
///
/// `Default` yields an **unrooted** store (in-memory only, no directory);
/// [`Clone`] likewise produces an unrooted, fully **resident** in-memory
/// snapshot, detached from any directory — two handles appending to the
/// same files would corrupt the log, so clones deliberately do not share
/// the root (and a clone of a paged store must materialise the blocks it
/// can no longer page in).
#[derive(Debug)]
pub struct FileStore {
    root: Option<PathBuf>,
    segment_capacity: usize,
    segments: VecDeque<Segment>,
    len: usize,
    /// Id the next created segment file will get.
    next_segment_id: u64,
    /// Hot-cache key the next pushed/replayed frame will get.
    next_seq: u64,
    /// Number of the first live block (mirrors the manifest when rooted).
    first_block_number: u64,
    /// Cached append handle for the tail segment file, so the seal hot
    /// path does not reopen the file per block. Invalidated whenever the
    /// file may be renamed away (prune, reset) and never cloned.
    tail_file: Option<(u64, fs::File)>,
    /// Append-path fsync behaviour (see [`FsyncPolicy`]).
    fsync_policy: FsyncPolicy,
    /// Frames appended since the last tail fsync (drives `EveryN`).
    unsynced_appends: u32,
    /// Tail-segment fsyncs the store issued itself (fills, policy syncs,
    /// prune barriers) — a diagnostics counter the group-commit tests read.
    tail_fsyncs: u64,
    /// Highest durable block number + 1, advanced by the *synchronous*
    /// fsync paths (fills, policy syncs, barriers, replay). The commit
    /// stage advances its own atomic frontier; [`FileStore::durable_up_to`]
    /// reads the max of both.
    durable_frontier: u64,
    /// The deferred-durability commit stage (pipelined mode only).
    commit: Option<CommitStage>,
    /// Hot-block cache (rooted stores only; unrooted frames are resident).
    cache: HotCache,
}

impl Default for FileStore {
    fn default() -> FileStore {
        FileStore {
            root: None,
            segment_capacity: SEGMENT_CAPACITY,
            segments: VecDeque::new(),
            len: 0,
            next_segment_id: 0,
            next_seq: 0,
            first_block_number: 0,
            tail_file: None,
            fsync_policy: FsyncPolicy::default(),
            unsynced_appends: 0,
            tail_fsyncs: 0,
            durable_frontier: 0,
            commit: None,
            cache: HotCache::new(DEFAULT_HOT_CACHE_BLOCKS),
        }
    }
}

impl Clone for FileStore {
    fn clone(&self) -> FileStore {
        // A detached in-memory snapshot: two stores appending to the same
        // directory would corrupt the log, so the clone drops the root —
        // which also means every block must be materialised (there is no
        // file left to page from). One sequential pass per segment.
        let mut snapshot = FileStore {
            segment_capacity: self.segment_capacity,
            fsync_policy: self.fsync_policy,
            ..FileStore::default()
        };
        for sealed in self.iter() {
            snapshot.push(sealed.into_sealed());
        }
        if snapshot.len == 0 {
            snapshot.first_block_number = self.first_block_number;
        }
        snapshot
    }
}

impl PartialEq for FileStore {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: same blocks in the same order, regardless of
        // segment layout, root, cache state or pruning history.
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for FileStore {}

// ---------------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------------

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:010}.seg")
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn fsync_file(path: &Path) -> Result<(), StoreError> {
    let file = fs::File::open(path).map_err(|e| StoreError::io("open for fsync", path, &e))?;
    let _span = seldel_telemetry::span!("fstore.fsync");
    file.sync_all()
        .map_err(|e| StoreError::io("fsync", path, &e))
}

fn fsync_dir(path: &Path) -> Result<(), StoreError> {
    // Directory fsync is a no-op on platforms that do not support opening
    // directories; ignore failures to open, but not failures to sync.
    if let Ok(dir) = fs::File::open(path) {
        dir.sync_all()
            .map_err(|e| StoreError::io("fsync dir", path, &e))?;
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file =
            fs::File::create(&tmp).map_err(|e| StoreError::io("create temp", &tmp, &e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io("write temp", &tmp, &e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("fsync temp", &tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename temp", path, &e))
}

/// The checksum sealing a frame's content against bit rot.
fn frame_checksum(flags: u8, hash: &Digest32, root: &Digest32, block_bytes: &[u8]) -> Digest32 {
    let mut h = Sha256::new();
    h.update(FRAME_CHECKSUM_TAG);
    h.update([flags]);
    h.update(hash.as_bytes());
    h.update(root.as_bytes());
    h.update(block_bytes);
    h.finalize()
}

/// Encodes one on-disk v3 frame for a sealed block.
fn frame_bytes(sealed: &SealedBlock) -> Vec<u8> {
    let block_bytes = sealed.block().to_canonical_bytes();
    let (flags, root) = match sealed.payload_root() {
        Some(root) => (FRAME_FLAG_PAYLOAD_ROOT, root),
        None => (0, Digest32::ZERO),
    };
    let hash = sealed.hash();
    let checksum = frame_checksum(flags, &hash, &root, &block_bytes);
    let mut enc = Encoder::with_capacity(4 + FRAME_HEADER_LEN + block_bytes.len());
    enc.put_u32((FRAME_HEADER_LEN + block_bytes.len()) as u32);
    enc.put_u8(flags);
    enc.put_raw(hash.as_bytes());
    enc.put_raw(root.as_bytes());
    enc.put_raw(checksum.as_bytes());
    enc.put_raw(&block_bytes);
    enc.into_bytes()
}

/// How the parse of a segment file ended early, if it did.
enum FrameDamage {
    /// The file ends inside a frame (length field or body cut short) —
    /// the shape an interrupted `write_all` leaves, recoverable by
    /// truncation when it is the newest segment's tail.
    Truncated {
        /// Byte offset where the incomplete frame starts.
        at: u64,
    },
    /// A frame's bytes are fully present but fail their checksum or do
    /// not decode. An interrupted append can never leave this shape (the
    /// whole frame lands in one `write_all`), so it is bit corruption —
    /// never silently repaired, even at the tail.
    Undecodable {
        /// Byte offset of the offending frame.
        at: u64,
        /// What was wrong.
        detail: &'static str,
    },
}

/// One frame as streaming replay sees it: the meta-to-be (sans cache
/// seq), no block.
struct ReplayFrame {
    offset: u64,
    len: u32,
    number: u64,
    block_bytes: u32,
    hash: Digest32,
    payload_root: Option<Digest32>,
}

/// Outcome of parsing a segment file.
struct ParsedSegment {
    frames: Vec<ReplayFrame>,
    damage: Option<FrameDamage>,
}

/// Parses the frames of one segment file without materialising blocks:
/// per frame, one checksum verification and one block-header-prefix
/// decode. Any early stop is classified as truncation (crash shape) or
/// corruption; the caller decides what each means for the segment's
/// position in the store.
fn parse_segment(bytes: &[u8]) -> ParsedSegment {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 4 {
            return ParsedSegment {
                frames,
                damage: Some(FrameDamage::Truncated { at: pos as u64 }),
            };
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len < FRAME_HEADER_LEN || bytes.len() - pos - 4 < len {
            return ParsedSegment {
                frames,
                damage: Some(FrameDamage::Truncated { at: pos as u64 }),
            };
        }
        let frame = &bytes[pos + 4..pos + 4 + len];
        let flags = frame[0];
        let hash = Digest32::from_bytes(frame[1..33].try_into().expect("32 bytes"));
        let root = Digest32::from_bytes(frame[33..65].try_into().expect("32 bytes"));
        let checksum = Digest32::from_bytes(frame[65..97].try_into().expect("32 bytes"));
        let block_bytes = &frame[FRAME_HEADER_LEN..];
        if flags & !FRAME_FLAG_PAYLOAD_ROOT != 0 {
            return ParsedSegment {
                frames,
                damage: Some(FrameDamage::Undecodable {
                    at: pos as u64,
                    detail: "unknown frame flags",
                }),
            };
        }
        if frame_checksum(flags, &hash, &root, block_bytes) != checksum {
            return ParsedSegment {
                frames,
                damage: Some(FrameDamage::Undecodable {
                    at: pos as u64,
                    detail: "frame checksum mismatch",
                }),
            };
        }
        // Only the header prefix is decoded — the body stays bytes.
        let Ok(header) = BlockHeader::decode(&mut Decoder::new(block_bytes)) else {
            return ParsedSegment {
                frames,
                damage: Some(FrameDamage::Undecodable {
                    at: pos as u64,
                    detail: "block header does not decode",
                }),
            };
        };
        frames.push(ReplayFrame {
            offset: pos as u64,
            len: (4 + len) as u32,
            number: header.number.value(),
            block_bytes: (len - FRAME_HEADER_LEN) as u32,
            hash,
            payload_root: (flags & FRAME_FLAG_PAYLOAD_ROOT != 0).then_some(root),
        });
        pos += 4 + len;
    }
    ParsedSegment {
        frames,
        damage: None,
    }
}

/// Sim/test support: the `(byte offset, block number)` of every complete
/// frame in a segment file's raw bytes, in file order. The crash sim uses
/// this to fabricate power-cut states cut at an exact block boundary —
/// truncating or removing every frame past a durability watermark.
pub fn segment_frame_numbers(bytes: &[u8]) -> Vec<(u64, u64)> {
    parse_segment(bytes)
        .frames
        .iter()
        .map(|f| (f.offset, f.number))
        .collect()
}

/// Decodes the block bytes of one raw frame into a sealed block, reusing
/// the table's digests — a cold read costs a decode, never a hash.
fn decode_frame_block(meta: &FrameMeta, frame: &[u8]) -> Result<SealedBlock, String> {
    if frame.len() != meta.len as usize {
        return Err(format!(
            "frame read returned {} bytes, expected {}",
            frame.len(),
            meta.len
        ));
    }
    let block_bytes = &frame[4 + FRAME_HEADER_LEN..];
    let block = Block::from_canonical_bytes(block_bytes)
        .map_err(|e| format!("block bytes do not decode: {e}"))?;
    Ok(SealedBlock::from_parts(block, meta.hash, meta.payload_root))
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

impl FileStore {
    /// Opens (or creates) a durable store rooted at `path` with the
    /// default [`SEGMENT_CAPACITY`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and unrecoverable corruption; see
    /// [`StoreError`].
    pub fn open(path: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        FileStore::open_with_capacity(path, SEGMENT_CAPACITY)
    }

    /// Opens (or creates) a durable store rooted at `path`.
    ///
    /// `segment_capacity` applies only when the store is created; an
    /// existing store keeps the capacity recorded in its manifest. The
    /// hot-block cache opens at [`DEFAULT_HOT_CACHE_BLOCKS`] unless the
    /// `SELDEL_HOT_CACHE_BLOCKS` environment variable overrides it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and unrecoverable corruption; see
    /// [`StoreError`].
    pub fn open_with_capacity(
        path: impl AsRef<Path>,
        segment_capacity: usize,
    ) -> Result<FileStore, StoreError> {
        assert!(segment_capacity > 0, "segment capacity must be positive");
        let root = path.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| StoreError::io("create dir", &root, &e))?;
        let manifest_path = root.join(MANIFEST_NAME);

        let manifest = if manifest_path.exists() {
            let bytes = fs::read(&manifest_path)
                .map_err(|e| StoreError::io("read manifest", &manifest_path, &e))?;
            Manifest::decode_bytes(&manifest_path, &bytes)?
        } else {
            let manifest = Manifest {
                segment_capacity: segment_capacity as u32,
                first_segment_id: 0,
                first_block_number: 0,
            };
            atomic_write(&manifest_path, &manifest.encode_bytes())?;
            fsync_dir(&root)?;
            manifest
        };

        let cache_capacity = std::env::var(HOT_CACHE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_HOT_CACHE_BLOCKS);
        let fsync_policy = std::env::var(FSYNC_POLICY_ENV)
            .ok()
            .and_then(|v| parse_fsync_policy(&v))
            .unwrap_or_default();

        let mut store = FileStore {
            root: Some(root.clone()),
            segment_capacity: manifest.segment_capacity as usize,
            segments: VecDeque::new(),
            len: 0,
            tail_file: None,
            next_segment_id: manifest.first_segment_id,
            next_seq: 0,
            first_block_number: manifest.first_block_number,
            fsync_policy,
            unsynced_appends: 0,
            tail_fsyncs: 0,
            durable_frontier: 0,
            commit: None,
            cache: HotCache::new(cache_capacity),
        };
        {
            let _span = seldel_telemetry::span!("fstore.replay");
            store.replay(&root, manifest)?;
        }
        seldel_telemetry::count!("fstore.replay.frames", store.len as u64);
        // Everything replay accepted is on disk already and survived at
        // least one close or crash: the durable frontier opens at the tip.
        store.durable_frontier = store
            .segments
            .back()
            .and_then(|s| s.frames.last())
            .map_or(0, |f| f.meta.number + 1);
        Ok(store)
    }

    /// Replays the directory contents into the offset table, finishing
    /// any prune a crash interrupted (see the module docs' recovery
    /// steps). Streaming: each segment file is read once, transiently —
    /// no block is materialised, nothing is re-sealed.
    fn replay(&mut self, root: &Path, manifest: Manifest) -> Result<(), StoreError> {
        // Step 1+2: collect segment files, removing temp leftovers and
        // segments already retired by the manifest.
        let mut ids: Vec<u64> = Vec::new();
        let entries = fs::read_dir(root).map_err(|e| StoreError::io("read dir", root, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir entry", root, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let p = entry.path();
                fs::remove_file(&p).map_err(|e| StoreError::io("remove temp", &p, &e))?;
                continue;
            }
            let Some(id) = parse_segment_id(name) else {
                continue;
            };
            if id < manifest.first_segment_id {
                // Crash between manifest update and unlink: finish the job.
                let p = entry.path();
                fs::remove_file(&p).map_err(|e| StoreError::io("remove retired", &p, &e))?;
                continue;
            }
            ids.push(id);
        }
        ids.sort_unstable();
        if let Some(window) = ids.windows(2).find(|w| w[1] != w[0] + 1) {
            return Err(StoreError::corrupt(
                root,
                format!("segment id gap between {} and {}", window[0], window[1]),
            ));
        }

        // Steps 3–5: parse each file; drop pruned front frames; truncate a
        // torn tail; reject everything else.
        let last_id = ids.last().copied();
        for id in ids {
            let file_path = root.join(segment_file_name(id));
            let bytes =
                fs::read(&file_path).map_err(|e| StoreError::io("read segment", &file_path, &e))?;
            let parsed = parse_segment(&bytes);
            let mut replay_frames = parsed.frames;
            match parsed.damage {
                None => {}
                Some(FrameDamage::Undecodable { at, detail }) => {
                    // Fully present but checksum-failing/undecodable frame:
                    // bit corruption, not a crash artifact — refuse,
                    // wherever it sits.
                    return Err(StoreError::corrupt(
                        &file_path,
                        format!("bad frame at offset {at}: {detail}"),
                    ));
                }
                Some(FrameDamage::Truncated { at }) => {
                    if Some(id) != last_id {
                        return Err(StoreError::corrupt(
                            &file_path,
                            format!("truncated frame at offset {at} in a non-tail segment"),
                        ));
                    }
                    // Crash mid-append: drop the torn suffix.
                    let file = fs::OpenOptions::new()
                        .write(true)
                        .open(&file_path)
                        .map_err(|e| StoreError::io("open for truncate", &file_path, &e))?;
                    file.set_len(at)
                        .map_err(|e| StoreError::io("truncate torn tail", &file_path, &e))?;
                    file.sync_all()
                        .map_err(|e| StoreError::io("fsync truncated", &file_path, &e))?;
                }
            }
            // Crash between manifest update and front rewrite: the first
            // segment may still hold already-pruned frames. The rewrite is
            // a raw byte-range copy — the survivors' bytes as they are.
            if self.segments.is_empty() {
                let keep_from = replay_frames
                    .iter()
                    .position(|f| f.number >= manifest.first_block_number)
                    .unwrap_or(replay_frames.len());
                if keep_from > 0 {
                    let cut = replay_frames
                        .get(keep_from)
                        .map_or(bytes.len() as u64, |f| f.offset);
                    replay_frames.drain(..keep_from);
                    for frame in &mut replay_frames {
                        frame.offset -= cut;
                    }
                    atomic_write(&file_path, &bytes[cut as usize..])?;
                }
            }
            if replay_frames.is_empty() {
                // Nothing live in this file (fully pruned front, or a tail
                // whose only frame was torn): drop it.
                fs::remove_file(&file_path)
                    .map_err(|e| StoreError::io("remove empty segment", &file_path, &e))?;
                continue;
            }
            let sealed = replay_frames.len() >= self.segment_capacity || Some(id) != last_id;
            self.len += replay_frames.len();
            let frames = replay_frames
                .into_iter()
                .map(|f| {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    Frame {
                        meta: FrameMeta {
                            offset: f.offset,
                            len: f.len,
                            seq,
                            number: f.number,
                            block_bytes: f.block_bytes,
                            hash: f.hash,
                            payload_root: f.payload_root,
                        },
                        resident: None,
                    }
                })
                .collect();
            self.segments.push_back(Segment {
                id,
                frames,
                sealed,
                cut: 0,
            });
        }
        self.next_segment_id = self
            .segments
            .back()
            .map_or(manifest.first_segment_id, |s| s.id + 1);

        // Layout check: O(1) indexing relies on every segment except the
        // (front-pruned) first and the (still filling) last holding exactly
        // `segment_capacity` blocks.
        let count = self.segments.len();
        for (i, segment) in self.segments.iter().enumerate() {
            let file = root.join(segment_file_name(segment.id));
            if segment.frames.len() > self.segment_capacity {
                return Err(StoreError::corrupt(
                    &file,
                    format!(
                        "{} frames exceed the segment capacity {}",
                        segment.frames.len(),
                        self.segment_capacity
                    ),
                ));
            }
            if i > 0 && i + 1 < count && segment.frames.len() != self.segment_capacity {
                return Err(StoreError::corrupt(
                    &file,
                    format!(
                        "interior segment holds {} frames, expected {}",
                        segment.frames.len(),
                        self.segment_capacity
                    ),
                ));
            }
        }

        // Contiguity check across all replayed frame metas — no disk I/O.
        let mut expected: Option<u64> = None;
        for segment in &self.segments {
            for frame in &segment.frames {
                let n = frame.meta.number;
                if let Some(e) = expected {
                    if n != e {
                        return Err(StoreError::corrupt(
                            root,
                            format!("non-contiguous block numbers: expected {e}, found {n}"),
                        ));
                    }
                }
                expected = Some(n + 1);
            }
        }
        if let Some(first) = self.segments.front().and_then(|s| s.frames.first()) {
            self.first_block_number = first.meta.number;
        }
        Ok(())
    }

    /// The directory this store persists to, when rooted.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Whether this store writes through to disk.
    pub fn is_durable(&self) -> bool {
        self.root.is_some()
    }

    /// Blocks per segment file.
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Number of retained segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Hot-block cache capacity, in blocks.
    pub fn hot_cache_capacity(&self) -> usize {
        self.cache.capacity
    }

    /// Blocks currently held by the hot cache.
    pub fn hot_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache hits served since open (diagnostics).
    pub fn hot_cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses taken since open (diagnostics).
    pub fn hot_cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Sets the hot-block cache capacity, evicting down if needed.
    pub fn set_hot_cache_capacity(&mut self, blocks: usize) {
        let old = std::mem::replace(&mut self.cache, HotCache::new(blocks));
        if blocks > 0 {
            // Keep the hottest survivors rather than dropping the working
            // set on a resize.
            let mut inner = old.lock();
            let keep: Vec<u64> = inner.lru.values().rev().take(blocks).copied().collect();
            for seq in keep.into_iter().rev() {
                if let Some(slot) = inner.slots.remove(&seq) {
                    self.cache.insert(seq, slot.block);
                }
            }
        }
    }

    /// Builder-style [`FileStore::set_hot_cache_capacity`].
    #[must_use]
    pub fn with_hot_cache_capacity(mut self, blocks: usize) -> FileStore {
        self.set_hot_cache_capacity(blocks);
        self
    }

    /// Fsyncs the tail segment file, making every appended frame durable.
    ///
    /// Called internally before each prune's manifest update; exposed so
    /// drivers can force a durability barrier (e.g. before a planned
    /// shutdown).
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let Some(root) = &self.root else {
            return Ok(());
        };
        if let Some(tail) = self.segments.back() {
            fsync_file(&root.join(segment_file_name(tail.id)))?;
        }
        Ok(())
    }

    /// Append-path fsync behaviour.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync_policy
    }

    /// Sets the append-path fsync behaviour (takes effect on the next
    /// append; the structural barriers are unaffected).
    pub fn set_fsync_policy(&mut self, policy: FsyncPolicy) {
        self.fsync_policy = policy;
    }

    /// Builder-style [`FileStore::set_fsync_policy`].
    #[must_use]
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> FileStore {
        self.fsync_policy = policy;
        self
    }

    /// Segment fsyncs this store issued itself (segment fills,
    /// policy-driven group commits, prune barriers, deferred commits).
    /// Diagnostics only. In pipelined mode this folds in the fsyncs the
    /// commit stage has *completed* — deferred-but-pending ones are not
    /// counted yet.
    pub fn tail_fsyncs(&self) -> u64 {
        let deferred = self
            .commit
            .as_ref()
            .map_or(0, |s| s.shared.fsyncs.load(Ordering::Relaxed));
        self.tail_fsyncs + deferred
    }

    /// Whether the deferred-durability commit stage is running.
    pub fn is_pipelined(&self) -> bool {
        self.commit.is_some()
    }

    /// Switches a rooted store into **pipelined** mode: the fsyncs the
    /// append path owes (segment fills, [`FsyncPolicy`] group commits)
    /// are handed to a background commit stage instead of stalling the
    /// caller, and [`FileStore::durable_up_to`] reports how far that
    /// stage has actually gotten. Unrooted stores have nothing to fsync
    /// and ignore the call. See the module docs' "Deferred-durability
    /// commit stage" section.
    pub fn enable_pipelined_commits(&mut self) {
        if self.root.is_some() && self.commit.is_none() {
            self.commit = Some(CommitStage::spawn());
        }
    }

    /// Builder-style [`FileStore::enable_pipelined_commits`].
    #[must_use]
    pub fn with_pipelined_commits(mut self) -> FileStore {
        self.enable_pipelined_commits();
        self
    }

    /// Appends a block through the pipelined path: the write lands now,
    /// any fsync it makes due is deferred to the commit stage, and the
    /// caller keeps building the next block while the disk catches up.
    /// Shorthand for [`FileStore::enable_pipelined_commits`] followed by
    /// [`BlockStore::push`].
    pub fn append_deferred(&mut self, block: SealedBlock) {
        self.enable_pipelined_commits();
        self.push(block);
    }

    /// The highest block number guaranteed to survive a crash (power cut
    /// included), or `None` when nothing is durable yet.
    ///
    /// On an unrooted store every block is as safe as it gets (there is
    /// no disk to lag behind), so the watermark is simply the tip. On a
    /// rooted store it advances at fsync points: segment fills, policy
    /// syncs and barriers move it synchronously; in pipelined mode the
    /// commit stage moves it as deferred fsyncs complete. After a prune
    /// empties the store the number may exceed the tip — "everything
    /// still stored is durable" stays true either way.
    pub fn durable_up_to(&self) -> Option<crate::types::BlockNumber> {
        if self.root.is_none() {
            let last = self.segments.back().and_then(|s| s.frames.last())?;
            return Some(crate::types::BlockNumber(last.meta.number));
        }
        let mut frontier = self.durable_frontier;
        if let Some(stage) = &self.commit {
            frontier = frontier.max(stage.shared.frontier.load(Ordering::Acquire));
        }
        frontier.checked_sub(1).map(crate::types::BlockNumber)
    }

    /// Foreground durability barrier: returns only once every appended
    /// block is durable, after which [`FileStore::durable_up_to`] equals
    /// the tip. Drains the commit stage's queue **inline** — it never
    /// waits on the background worker, so a paused stage cannot deadlock
    /// it — then fsyncs the tail (covering appends no deferred job was
    /// queued for, e.g. under [`FsyncPolicy::OnFill`]).
    ///
    /// # Errors
    ///
    /// Surfaces any deferred-fsync failure the worker recorded, or the
    /// inline fsync failures themselves.
    pub fn commit_durable(&mut self) -> Result<(), StoreError> {
        if self.root.is_none() {
            return Ok(());
        }
        if let Some(stage) = &self.commit {
            for job in stage.steal_jobs()? {
                match job {
                    CommitJob::Fsync { file, path, up_to } => {
                        {
                            let _span = seldel_telemetry::span!("fstore.fsync");
                            file.sync_all()
                        }
                        .map_err(|e| StoreError::io("commit fsync", &path, &e))?;
                        self.tail_fsyncs += 1;
                        self.durable_frontier = self.durable_frontier.max(up_to + 1);
                    }
                    CommitJob::Compact {
                        path,
                        segment_id,
                        cut,
                    } => perform_compact(&stage.shared, &path, segment_id, cut)?,
                }
            }
        }
        self.sync_tail_counted()
    }

    /// Tail-durability barrier for the §IV-C prune ordering: drains and
    /// runs every deferred *fsync* inline, then fsyncs the tail, but
    /// leaves deferred compactions queued. The prune needs the carried Σ
    /// durable before its manifest update — not the physical rewrite of
    /// *previously* pruned bytes, which may keep overlapping with sealing
    /// ([`FileStore::commit_durable`] and a clean close still complete
    /// it). Running those multi-megabyte rewrites here would put the file
    /// ops of every prune right back on the seal path.
    fn commit_appended(&mut self) -> Result<(), StoreError> {
        if let Some(stage) = &self.commit {
            let mut kept: Vec<CommitJob> = Vec::new();
            for job in stage.steal_jobs()? {
                match job {
                    CommitJob::Fsync { file, path, up_to } => {
                        {
                            let _span = seldel_telemetry::span!("fstore.fsync");
                            file.sync_all()
                        }
                        .map_err(|e| StoreError::io("commit fsync", &path, &e))?;
                        self.tail_fsyncs += 1;
                        self.durable_frontier = self.durable_frontier.max(up_to + 1);
                    }
                    compact => kept.push(compact),
                }
            }
            if !kept.is_empty() {
                // Only the foreground enqueues, so nothing slipped into
                // the queue between the steal and this re-queue: pushing
                // the survivors back to the front preserves order.
                let mut state = stage.shared.lock();
                for job in kept.into_iter().rev() {
                    state.jobs.push_front(job);
                }
                drop(state);
                stage.shared.wake.notify_one();
            }
        }
        self.sync_tail_counted()
    }

    /// Test/sim hook: pauses (`true`) or resumes (`false`) the background
    /// commit worker. While paused no deferred fsync completes, so the
    /// durable watermark stays put — the deterministic way to observe the
    /// watermark lag and to fabricate crash states behind it. Foreground
    /// barriers ([`FileStore::commit_durable`], prunes) are unaffected:
    /// they drain the queue inline. No-op unless pipelined.
    pub fn pause_commits(&self, paused: bool) {
        if let Some(stage) = &self.commit {
            stage.shared.lock().hold = paused;
            stage.shared.wake.notify_all();
        }
    }

    /// Fsyncs the tail and books it: every internal tail fsync goes
    /// through here so the counter, the `EveryN` window and the durable
    /// frontier stay honest. Correct to call directly only when every
    /// *earlier* segment is already durable (always true outside
    /// pipelined mode; pipelined callers go through
    /// [`FileStore::commit_durable`], which drains deferred jobs first).
    fn sync_tail_counted(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        if self.root.is_some() && !self.segments.is_empty() {
            self.tail_fsyncs += 1;
            if let Some(last) = self.segments.back().and_then(|s| s.frames.last()) {
                self.durable_frontier = self.durable_frontier.max(last.meta.number + 1);
            }
        }
        self.unsynced_appends = 0;
        Ok(())
    }

    /// The fsync a filled segment owes — inline, or deferred to the
    /// commit stage in pipelined mode. Either way the cached append
    /// handle is released: the next push starts a new file.
    fn fill_barrier(&mut self, tail_id: u64, block_number: u64) -> Result<(), StoreError> {
        if self.commit.is_some() {
            self.defer_tail_fsync(tail_id, block_number)?;
        } else {
            let root = self.root.clone().expect("rooted");
            fsync_file(&root.join(segment_file_name(tail_id)))?;
            self.tail_fsyncs += 1;
            self.durable_frontier = self.durable_frontier.max(block_number + 1);
        }
        self.unsynced_appends = 0;
        self.tail_file = None;
        Ok(())
    }

    /// The fsync an [`FsyncPolicy`] (`Always` / `EveryN`) makes due —
    /// inline, or deferred to the commit stage in pipelined mode.
    fn policy_sync(&mut self, tail_id: u64, block_number: u64) -> Result<(), StoreError> {
        if self.commit.is_some() {
            self.defer_tail_fsync(tail_id, block_number)?;
            self.unsynced_appends = 0;
            Ok(())
        } else {
            self.sync_tail_counted()
        }
    }

    /// Enqueues a deferred fsync of segment `tail_id` covering every
    /// block up to `block_number`, on a duplicated descriptor (a later
    /// prune's rename/unlink cannot invalidate the job).
    fn defer_tail_fsync(&mut self, tail_id: u64, block_number: u64) -> Result<(), StoreError> {
        let root = self.root.clone().expect("rooted");
        let path = root.join(segment_file_name(tail_id));
        let file = match self.tail_file.as_ref() {
            Some((id, file)) if *id == tail_id => file
                .try_clone()
                .map_err(|e| StoreError::io("dup for deferred fsync", &path, &e))?,
            _ => fs::File::open(&path)
                .map_err(|e| StoreError::io("open for deferred fsync", &path, &e))?,
        };
        let stage = self.commit.as_ref().expect("pipelined");
        // Surface any failure the worker already hit before queueing more.
        if let Some(err) = stage.take_error() {
            return Err(err);
        }
        stage.enqueue(CommitJob::Fsync {
            file,
            path,
            up_to: block_number,
        });
        Ok(())
    }

    fn write_manifest(&self, root: &Path) -> Result<(), StoreError> {
        let manifest = Manifest {
            segment_capacity: self.segment_capacity as u32,
            first_segment_id: self.segments.front().map_or(self.next_segment_id, |s| s.id),
            first_block_number: self.first_block_number,
        };
        atomic_write(&root.join(MANIFEST_NAME), &manifest.encode_bytes())?;
        fsync_dir(root)
    }

    /// Appends one frame to the tail segment file, through the cached
    /// append handle (opened on first use per segment — the seal hot path
    /// must not pay an open/close per block).
    fn append_frame(&mut self, root: &Path, id: u64, bytes: &[u8]) -> Result<(), StoreError> {
        if self.tail_file.as_ref().map(|(tid, _)| *tid) != Some(id) {
            let path = root.join(segment_file_name(id));
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::io("open segment", &path, &e))?;
            self.tail_file = Some((id, file));
        }
        let (_, file) = self.tail_file.as_mut().expect("handle cached above");
        file.write_all(bytes)
            .map_err(|e| StoreError::io("append frame", &root.join(segment_file_name(id)), &e))
    }

    /// Opens `segment`'s file positioned at `logical` — an offset in the
    /// frame table's coordinates. With a compaction pending on the
    /// segment the physical file may already have lost some front bytes;
    /// the translation happens under the layout lock, and holds for the
    /// returned descriptor's whole life even after the guard drops — a
    /// later compaction renames a fresh file into place, never mutating
    /// the inode this descriptor pins.
    fn open_frames(&self, segment: &Segment, logical: u64) -> Result<fs::File, StoreError> {
        let root = self.root.as_ref().expect("paged frames imply a root");
        let path = root.join(segment_file_name(segment.id));
        let guard = match (&self.commit, segment.cut > 0) {
            (Some(stage), true) => Some(stage.shared.layout_lock()),
            _ => None,
        };
        let applied = guard
            .as_ref()
            .map_or(0, |table| table.get(&segment.id).copied().unwrap_or(0));
        let mut file =
            fs::File::open(&path).map_err(|e| StoreError::io("open for read", &path, &e))?;
        file.seek(SeekFrom::Start(logical - applied))
            .map_err(|e| StoreError::io("seek frame", &path, &e))?;
        Ok(file)
    }

    /// Reads one frame's bytes from its segment file and decodes the
    /// block — the cold half of the paged read path.
    fn read_frame(&self, segment: &Segment, meta: &FrameMeta) -> Result<SealedBlock, StoreError> {
        let root = self.root.as_ref().expect("paged frames imply a root");
        let path = root.join(segment_file_name(segment.id));
        let mut file = self.open_frames(segment, meta.offset)?;
        let mut frame = vec![0u8; meta.len as usize];
        file.read_exact(&mut frame)
            .map_err(|e| StoreError::io("read frame", &path, &e))?;
        decode_frame_block(meta, &frame).map_err(|detail| StoreError::corrupt(&path, detail))
    }

    /// The position of store index `index` as (segment position, frame
    /// position). O(1): every segment except the (front-pruned) first and
    /// the (still filling) last holds exactly `segment_capacity` frames.
    fn position(&self, index: usize) -> Option<(usize, usize)> {
        if index >= self.len {
            return None;
        }
        let first = self.segments.front()?;
        if index < first.frames.len() {
            return Some((0, index));
        }
        let rest = index - first.frames.len();
        Some((
            1 + rest / self.segment_capacity,
            rest % self.segment_capacity,
        ))
    }

    /// Materialises the block at `index` without touching the hot cache's
    /// LRU or counters (the drain path, which is about to evict the
    /// blocks anyway).
    fn materialize(&self, index: usize) -> Option<SealedBlock> {
        let (si, fi) = self.position(index)?;
        let segment = self.segments.get(si)?;
        let frame = segment.frames.get(fi)?;
        if let Some(block) = &frame.resident {
            return Some(block.clone());
        }
        if let Some(arc) = self.cache.peek(frame.meta.seq) {
            return Some((*arc).clone());
        }
        match self.read_frame(segment, &frame.meta) {
            Ok(block) => Some(block),
            Err(err) => panic!("file store page-in failed: {err}"),
        }
    }

    /// Panic adapter: the `BlockStore` trait is infallible, so persistence
    /// failures on a rooted store are unrecoverable here. Callers who need
    /// graceful handling should check disk health via [`FileStore::sync`].
    fn persist(result: Result<(), StoreError>) {
        if let Err(err) = result {
            panic!("file store persistence failed: {err}");
        }
    }
}

impl BlockStore for FileStore {
    type Iter<'a> = FileIter<'a>;

    fn push(&mut self, block: SealedBlock) {
        let needs_new = match self.segments.back() {
            Some(segment) => segment.sealed,
            None => true,
        };
        if needs_new {
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            self.segments.push_back(Segment {
                id,
                frames: Vec::with_capacity(self.segment_capacity),
                sealed: false,
                cut: 0,
            });
        }
        let tail_id = self.segments.back().expect("tail exists").id;
        let offset = self.segments.back().expect("tail exists").file_len();
        let bytes = frame_bytes(&block);
        if let Some(root) = self.root.clone() {
            let write = self.append_frame(&root, tail_id, &bytes);
            Self::persist(write);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let block_number = block.number().value();
        let meta = FrameMeta {
            offset,
            len: bytes.len() as u32,
            seq,
            number: block_number,
            block_bytes: (bytes.len() - 4 - FRAME_HEADER_LEN) as u32,
            hash: block.hash(),
            payload_root: block.payload_root(),
        };
        // Rooted stores keep the table row and push the block through the
        // hot cache (the tip is the next linkage check's predecessor);
        // unrooted stores have no file to page from, so the block stays
        // resident in the table itself.
        let resident = if self.root.is_some() {
            self.cache.insert(seq, Arc::new(block));
            None
        } else {
            Some(block)
        };
        let capacity = self.segment_capacity;
        let tail = self.segments.back_mut().expect("tail exists");
        tail.frames.push(Frame { meta, resident });
        let filled = tail.frames.len() >= capacity;
        if filled {
            tail.sealed = true;
        }
        self.len += 1;
        if self.len == 1 && self.first_block_number != block_number {
            // First block into an emptied store, at a different number than
            // the manifest's `first_block_number` (e.g. a fresh chain
            // starting over at 0 after a drain left the watermark higher).
            // The manifest must follow, or replay would classify every
            // frame below the stale watermark as pruned and drop it.
            self.first_block_number = block_number;
            // Renumbering restarts the durable frontier: watermarks from
            // the previous numbering no longer name these blocks. The old
            // commit stage (whose atomic frontier cannot go backwards) is
            // joined and replaced.
            self.durable_frontier = 0;
            if self.commit.take().is_some() {
                self.commit = Some(CommitStage::spawn());
            }
            if let Some(root) = self.root.clone() {
                Self::persist(self.write_manifest(&root));
            }
        }
        if self.root.is_some() {
            self.unsynced_appends = self.unsynced_appends.saturating_add(1);
        }
        if filled {
            if self.root.is_some() {
                // A filled segment is the durability unit: fsync it — or,
                // in pipelined mode, hand the fsync to the commit stage so
                // sealing overlaps the disk wait.
                Self::persist(self.fill_barrier(tail_id, block_number));
            }
        } else if self.root.is_some() {
            let due = match self.fsync_policy {
                FsyncPolicy::OnFill => false,
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => n > 0 && self.unsynced_appends >= n,
            };
            if due {
                Self::persist(self.policy_sync(tail_id, block_number));
            }
        }
    }

    fn get(&self, index: usize) -> Option<BlockRef<'_>> {
        let (si, fi) = self.position(index)?;
        let segment = self.segments.get(si)?;
        let frame = segment.frames.get(fi)?;
        if let Some(block) = &frame.resident {
            return Some(BlockRef::Borrowed(block));
        }
        if let Some(arc) = self.cache.get(frame.meta.seq) {
            return Some(BlockRef::Shared(arc));
        }
        let block = match self.read_frame(segment, &frame.meta) {
            Ok(block) => Arc::new(block),
            Err(err) => panic!("file store page-in failed: {err}"),
        };
        self.cache.insert(frame.meta.seq, Arc::clone(&block));
        Some(BlockRef::Shared(block))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn drain_front(&mut self, count: usize) -> Vec<SealedBlock> {
        let count = count.min(self.len);
        if count == 0 {
            return Vec::new();
        }
        // Materialise the departing blocks before any file mutation — the
        // trait hands them to the caller (prune accounting, Σ archival).
        let mut removed: Vec<SealedBlock> = Vec::with_capacity(count);
        for index in 0..count {
            removed.push(self.materialize(index).expect("index below len"));
        }

        let mut retired_ids: Vec<u64> = Vec::new();
        let mut rewrite_front: Option<(u64, u64)> = None;
        let mut defer_compact: Option<(u64, u64)> = None;
        let mut drained_seqs: Vec<u64> = Vec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let front_live = self.segments.front().expect("non-empty").frames.len();
            if remaining >= front_live {
                let segment = self.segments.pop_front().expect("non-empty");
                retired_ids.push(segment.id);
                drained_seqs.extend(segment.frames.iter().map(|f| f.meta.seq));
                remaining -= front_live;
            } else {
                // Deferring the front rewrite to the commit stage only
                // works off the tail: appends record offsets against the
                // current file, so a pending rename under the append
                // handle would corrupt the log. A front segment with a
                // deferred cut retires (and is unlinked) before any later
                // segment can become the front, so the tail can never
                // carry one.
                let defer = self.commit.is_some() && self.segments.len() > 1;
                let front = self.segments.front_mut().expect("non-empty");
                let cut = front.frames[remaining].meta.offset;
                drained_seqs.extend(front.frames.drain(..remaining).map(|f| f.meta.seq));
                if defer {
                    // Offsets stay in the file's original coordinates;
                    // readers translate through the layout table.
                    front.cut = cut;
                    defer_compact = Some((front.id, cut));
                } else {
                    for frame in &mut front.frames {
                        frame.meta.offset -= cut;
                    }
                    rewrite_front = Some((front.id, cut));
                }
                remaining = 0;
            }
        }
        self.len -= count;
        self.first_block_number = match self.segments.front().and_then(|s| s.frames.first()) {
            Some(first) => first.meta.number,
            // Store emptied: the next live block is whatever follows the
            // last drained one.
            None => removed.last().expect("count > 0").number().value() + 1,
        };
        // Physical deletion reaches the cache too: a pruned payload must
        // not linger in memory after the files forget it.
        for seq in &drained_seqs {
            self.cache.remove(*seq);
        }

        if let Some(root) = self.root.clone() {
            // The front rewrite below may rename the very file the cached
            // append handle points at; drop it (fsync still reaches the
            // inode through a fresh descriptor).
            self.tail_file = None;
            // §IV-C ordering: the tail (holding the carried-forward Σ) must
            // be durable before the manifest makes the prune irreversible.
            // This barrier holds under every FsyncPolicy — group commit
            // may defer append fsyncs, never this one — and in pipelined
            // mode it also drains every deferred fsync the commit stage
            // still owes (some may cover the very segments about to be
            // rewritten or unlinked). Deferred *compactions* stay queued:
            // they only remove bytes the manifest already disowned.
            Self::persist(self.commit_appended());
            Self::persist(self.write_manifest(&root));
            if let Some((id, cut)) = rewrite_front {
                // Raw byte-range rewrite through the offset table: the
                // surviving frames' bytes, shifted to offset zero.
                let path = root.join(segment_file_name(id));
                let result = fs::read(&path)
                    .map_err(|e| StoreError::io("read for rewrite", &path, &e))
                    .and_then(|bytes| atomic_write(&path, &bytes[cut as usize..]));
                Self::persist(result);
            }
            if let Some((id, cut)) = defer_compact {
                let stage = self
                    .commit
                    .as_ref()
                    .expect("deferred cut implies pipelined");
                if let Some(err) = stage.take_error() {
                    Self::persist(Err(err));
                }
                stage.enqueue(CommitJob::Compact {
                    path: root.join(segment_file_name(id)),
                    segment_id: id,
                    cut,
                });
            }
            {
                // The layout lock excludes a compaction mid-rename: without
                // it the worker could re-create a just-unlinked file by
                // renaming its rewrite into place. Holding it, the worker
                // either finished (the unlink removes the compacted file)
                // or has not started (its read finds nothing and skips).
                let guard = self.commit.as_ref().map(|stage| Arc::clone(&stage.shared));
                let mut layout = guard.as_ref().map(|shared| shared.layout_lock());
                for id in retired_ids {
                    if let Some(layout) = layout.as_mut() {
                        layout.remove(&id);
                    }
                    let path = root.join(segment_file_name(id));
                    Self::persist(
                        fs::remove_file(&path)
                            .map_err(|e| StoreError::io("unlink retired", &path, &e)),
                    );
                }
            }
            Self::persist(fsync_dir(&root));
        }
        removed
    }

    fn iter(&self) -> Self::Iter<'_> {
        FileIter {
            store: self,
            next: 0,
            reader: None,
        }
    }

    fn reset(&mut self) {
        self.segments.clear();
        self.len = 0;
        self.first_block_number = 0;
        self.tail_file = None;
        self.unsynced_appends = 0;
        // A wiped store has nothing durable; the old commit stage (whose
        // atomic frontier cannot go backwards) is joined and replaced.
        self.durable_frontier = 0;
        if self.commit.take().is_some() {
            self.commit = Some(CommitStage::spawn());
        }
        self.cache.clear();
        if let Some(root) = self.root.clone() {
            let result = (|| -> Result<(), StoreError> {
                // Manifest first: once `first_segment_id` points past every
                // existing file, a crash anywhere in the unlink loop leaves
                // only stale segments, which `open` removes — never an id
                // gap. (A crash *before* the manifest keeps the old chain
                // intact; a crash *after* leaves a valid empty store, the
                // same state the caller was creating anyway — callers of
                // reset, e.g. `adopt_chain`, re-sync content from peers.)
                self.write_manifest(&root)?;
                let entries =
                    fs::read_dir(&root).map_err(|e| StoreError::io("read dir", &root, &e))?;
                for entry in entries {
                    let entry = entry.map_err(|e| StoreError::io("read dir entry", &root, &e))?;
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if parse_segment_id(name).is_some() || name.ends_with(".tmp") {
                        let p = entry.path();
                        fs::remove_file(&p)
                            .map_err(|e| StoreError::io("remove segment", &p, &e))?;
                    }
                }
                fsync_dir(&root)
            })();
            Self::persist(result);
        }
    }

    fn hash_at(&self, index: usize) -> Option<Digest32> {
        // Offset-table hit: no block bytes touched, no hash computed.
        let (si, fi) = self.position(index)?;
        Some(self.segments.get(si)?.frames.get(fi)?.meta.hash)
    }

    fn first_number(&self) -> Option<crate::types::BlockNumber> {
        // Served from the tracked watermark: the marker query must never
        // page the oldest block in (it would evict a hot block per call).
        (self.len > 0).then_some(crate::types::BlockNumber(self.first_block_number))
    }

    fn resident_bytes(&self) -> u64 {
        // Blocks actually held in memory: resident (unrooted) frames plus
        // the hot cache — NOT the on-disk chain size.
        let resident: u64 = self
            .segments
            .iter()
            .flat_map(|s| &s.frames)
            .filter_map(|f| f.resident.as_ref())
            .map(|b| b.byte_size() as u64)
            .sum();
        resident + self.cache.bytes()
    }

    fn durable_tip(&self) -> Option<crate::types::BlockNumber> {
        self.durable_up_to()
    }

    fn flush_durable(&mut self) {
        Self::persist(self.commit_durable());
    }

    fn enable_pipeline(&mut self) {
        self.enable_pipelined_commits();
    }
}

/// Oldest-first iterator over a [`FileStore`].
///
/// Streams each segment through its own buffered reader and **bypasses
/// the hot cache**: an O(n) scan must not evict the hot set, and
/// sequential frame reads are faster than per-block open/seek anyway.
/// Resident (unrooted) frames are lent as plain borrows.
#[derive(Debug)]
pub struct FileIter<'a> {
    store: &'a FileStore,
    next: usize,
    /// The open segment reader: (segment id, next byte offset, reader).
    reader: Option<(u64, u64, BufReader<fs::File>)>,
}

impl<'a> Iterator for FileIter<'a> {
    type Item = BlockRef<'a>;

    fn next(&mut self) -> Option<BlockRef<'a>> {
        let (si, fi) = self.store.position(self.next)?;
        let segment = self.store.segments.get(si)?;
        let frame = segment.frames.get(fi)?;
        self.next += 1;
        if let Some(block) = &frame.resident {
            return Some(BlockRef::Borrowed(block));
        }
        let root = self.store.root.as_ref().expect("paged frames imply a root");
        let needs_open = !matches!(
            &self.reader,
            Some((id, pos, _)) if *id == segment.id && *pos == frame.meta.offset
        );
        if needs_open {
            // `pos` stays in frame-table coordinates; only the physical
            // seek inside `open_frames` translates through any pending
            // compaction (the descriptor pins that layout thereafter).
            let file = match self.store.open_frames(segment, frame.meta.offset) {
                Ok(file) => file,
                Err(err) => panic!("file store page-in failed: {err}"),
            };
            self.reader = Some((segment.id, frame.meta.offset, BufReader::new(file)));
        }
        let (_, pos, reader) = self.reader.as_mut().expect("opened above");
        let mut bytes = vec![0u8; frame.meta.len as usize];
        if let Err(e) = reader.read_exact(&mut bytes) {
            let path = root.join(segment_file_name(segment.id));
            panic!(
                "file store page-in failed: {}",
                StoreError::io("read frame", &path, &e)
            );
        }
        *pos += frame.meta.len as u64;
        match decode_frame_block(&frame.meta, &bytes) {
            Ok(block) => Some(BlockRef::Shared(Arc::new(block))),
            Err(detail) => panic!(
                "file store page-in failed: {}",
                StoreError::corrupt(&root.join(segment_file_name(segment.id)), detail)
            ),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.store.len.saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for FileIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::store::MemStore;
    use crate::testutil::ScratchDir as Scratch;
    use crate::types::{BlockNumber, Timestamp};

    fn sealed(n: u64) -> SealedBlock {
        SealedBlock::seal(Block::new(
            BlockNumber(n),
            Timestamp(n * 10),
            seldel_crypto::sha256(n.to_le_bytes()),
            BlockBody::Empty,
            Seal::Deterministic,
        ))
    }

    fn store_with(dir: &Path, cap: usize, blocks: std::ops::Range<u64>) -> FileStore {
        let mut store = FileStore::open_with_capacity(dir, cap).unwrap();
        for n in blocks {
            store.push(sealed(n));
        }
        store
    }

    #[test]
    fn unrooted_default_matches_mem_store() {
        let mut file = FileStore::default();
        let mut mem = MemStore::default();
        for n in 0..150 {
            file.push(sealed(n));
            mem.push(sealed(n));
        }
        file.drain_front(70);
        mem.drain_front(70);
        assert_eq!(file.len(), mem.len());
        assert!(file.iter().eq(mem.iter()));
        for i in 0..mem.len() {
            assert_eq!(file.get(i), mem.get(i));
        }
        assert!(!file.is_durable());
    }

    #[test]
    fn close_and_reopen_round_trips() {
        let scratch = Scratch::new("reopen");
        {
            let _store = store_with(scratch.path(), 8, 0..30);
        }
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.segment_capacity(), 8);
        assert_eq!(reopened.len(), 30);
        let fresh: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(fresh, (0..30).collect::<Vec<_>>());
        // The table's digests match a from-scratch recomputation.
        assert!(reopened.iter().all(|s| s.hash() == s.block().hash()));
    }

    #[test]
    fn open_replays_streaming_with_one_hash_per_block() {
        // The replay-cost pin (the "small fix" satellite): open() used to
        // re-seal every block — one header hash plus a payload tree per
        // block. Streaming replay verifies one frame checksum per block
        // and hashes nothing else.
        let scratch = Scratch::new("replay-hashes");
        let blocks = 40u64;
        drop(store_with(scratch.path(), 8, 0..blocks));
        let before = seldel_crypto::digests_finalized();
        let reopened = FileStore::open(scratch.path()).unwrap();
        let spent = seldel_crypto::digests_finalized() - before;
        assert_eq!(reopened.len(), blocks as usize);
        assert!(
            spent <= blocks + 2,
            "streaming replay must cost ≤ one hash per block (+slack), spent {spent} for {blocks}"
        );
    }

    #[test]
    fn open_materializes_no_blocks_and_reads_page_in() {
        let scratch = Scratch::new("paged-open");
        drop(store_with(scratch.path(), 8, 0..30));
        let store = FileStore::open(scratch.path()).unwrap();
        assert_eq!(
            store.resident_bytes(),
            0,
            "open must build the offset table only"
        );
        // A cold read pages exactly that block in through the cache.
        let block = store.get(13).expect("live index");
        assert_eq!(block.number(), BlockNumber(13));
        assert_eq!(block.hash(), sealed(13).hash());
        drop(block);
        assert_eq!(store.hot_cache_len(), 1);
        assert!(store.resident_bytes() > 0);
        // A warm re-read is a cache hit.
        let misses = store.hot_cache_misses();
        let again = store.get(13).expect("live index");
        assert_eq!(again.number(), BlockNumber(13));
        assert_eq!(store.hot_cache_misses(), misses);
        assert!(store.hot_cache_hits() > 0);
    }

    #[test]
    fn hot_cache_is_bounded_and_evicts_lru() {
        let scratch = Scratch::new("cache-bound");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_hot_cache_capacity(3);
        for n in 0..20 {
            store.push(sealed(n));
        }
        assert!(store.hot_cache_len() <= 3, "push path respects the bound");
        for i in 0..20 {
            assert_eq!(
                store.get(i).unwrap().number(),
                BlockNumber(i as u64),
                "index {i}"
            );
            assert!(store.hot_cache_len() <= 3, "read path respects the bound");
        }
        // Resident bytes stay bounded by the cached blocks, not the chain.
        let one = sealed(0).byte_size() as u64;
        assert!(store.resident_bytes() <= 3 * (one + 16));
    }

    #[test]
    fn cache_capacity_zero_still_serves_reads() {
        let scratch = Scratch::new("cache-zero");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_hot_cache_capacity(0);
        for n in 0..9 {
            store.push(sealed(n));
        }
        assert_eq!(store.hot_cache_len(), 0);
        assert_eq!(store.resident_bytes(), 0);
        for i in 0..9 {
            assert_eq!(store.get(i).unwrap().number(), BlockNumber(i as u64));
        }
        assert_eq!(store.hot_cache_len(), 0);
    }

    #[test]
    fn hash_at_serves_from_the_table() {
        let scratch = Scratch::new("hash-at");
        drop(store_with(scratch.path(), 4, 0..10));
        let store = FileStore::open(scratch.path()).unwrap();
        for i in 0..10u64 {
            assert_eq!(store.hash_at(i as usize), Some(sealed(i).hash()));
        }
        assert!(store.hash_at(10).is_none());
        // hash_at is metadata-only: nothing was paged in.
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.hot_cache_len(), 0);
    }

    #[test]
    fn prune_unlinks_whole_segments_and_rewrites_partial_front() {
        let scratch = Scratch::new("prune");
        let mut store = store_with(scratch.path(), 4, 0..12); // 3 files
        assert_eq!(store.segment_count(), 3);
        let removed = store.drain_front(6); // 1.5 files
        assert_eq!(removed.len(), 6);
        assert!(!scratch.path().join(segment_file_name(0)).exists());
        // The partial front file only holds the live frames.
        let bytes = fs::read(scratch.path().join(segment_file_name(1))).unwrap();
        let parsed = parse_segment(&bytes);
        assert!(parsed.damage.is_none());
        assert_eq!(parsed.frames.len(), 2);
        assert_eq!(parsed.frames[0].number, 6);
        // The drained blocks were evicted from the cache too.
        assert!(store.iter().all(|s| s.block().number() >= BlockNumber(6)));
        // Reopen agrees.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(6));
    }

    #[test]
    fn drain_front_clamps_beyond_len() {
        // The trait contract: count > len() empties the store, no panic.
        let scratch = Scratch::new("clamp");
        let mut store = store_with(scratch.path(), 4, 0..5);
        let removed = store.drain_front(99);
        assert_eq!(removed.len(), 5);
        assert!(store.is_empty());
        // The directory holds no segment files anymore.
        let leftover: Vec<_> = fs::read_dir(scratch.path())
            .unwrap()
            .filter_map(|e| parse_segment_id(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        assert!(leftover.is_empty(), "segments left: {leftover:?}");
        // And pushes keep working after emptying.
        store.push(sealed(5));
        assert_eq!(store.get(0).unwrap().block().number(), BlockNumber(5));
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn emptied_store_refilled_with_lower_numbers_survives_reopen() {
        // Draining to empty leaves the manifest watermark at last+1; a new
        // chain started in the same store from block 0 must move the
        // watermark back down, or replay would classify every frame below
        // it as pruned-front garbage and silently drop the whole chain.
        let scratch = Scratch::new("refill-low");
        let mut store = store_with(scratch.path(), 4, 10..15);
        store.drain_front(99);
        assert!(store.is_empty());
        for n in 0..3 {
            store.push(sealed(n));
        }
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(0));
    }

    #[test]
    fn torn_tail_frame_is_truncated_on_open() {
        let scratch = Scratch::new("torn");
        let store = store_with(scratch.path(), 8, 0..10);
        let tail = scratch.path().join(segment_file_name(1));
        drop(store);
        // Chop a few bytes off the last frame: crash mid-append.
        let len = fs::metadata(&tail).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&tail).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 9, "torn frame must be dropped");
        assert_eq!(reopened.last().unwrap().block().number(), BlockNumber(8));
        // The file was physically truncated, so a second open is clean.
        let reopened2 = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened2.len(), 9);
    }

    #[test]
    fn bit_flip_in_tail_segment_is_corruption_not_torn_tail() {
        // A fully present frame that fails its checksum can never come
        // from an interrupted append (the whole frame lands in one
        // write), so it must be refused even in the newest segment —
        // silently truncating it would discard valid (possibly fsynced)
        // frames after the flip.
        let scratch = Scratch::new("tailflip");
        let store = store_with(scratch.path(), 8, 0..6);
        let tail = scratch.path().join(segment_file_name(0));
        drop(store);
        let mut bytes = fs::read(&tail).unwrap();
        // Flip one bit in the first frame's block bytes (its length prefix
        // stays intact, so the frame is "fully present" yet fails the
        // checksum); frames 1..6 after it remain valid.
        bytes[4 + FRAME_HEADER_LEN + 2] ^= 0x01;
        fs::write(&tail, bytes).unwrap();
        let err = FileStore::open(scratch.path()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn corruption_in_middle_segment_is_rejected() {
        let scratch = Scratch::new("corrupt");
        let store = store_with(scratch.path(), 4, 0..12);
        drop(store);
        let middle = scratch.path().join(segment_file_name(1));
        let mut bytes = fs::read(&middle).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        fs::write(&middle, bytes).unwrap();
        let err = FileStore::open(scratch.path()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn stale_retired_segment_is_removed_on_open() {
        let scratch = Scratch::new("stale");
        let mut store = store_with(scratch.path(), 4, 0..12);
        // Keep a copy of the first file, prune it away, then "un-delete"
        // it — the state a crash between manifest update and unlink leaves.
        let first = scratch.path().join(segment_file_name(0));
        let saved = fs::read(&first).unwrap();
        store.drain_front(4);
        assert!(!first.exists());
        drop(store);
        fs::write(&first, saved).unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 8);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(4));
        assert!(!first.exists(), "stale segment must be unlinked");
    }

    #[test]
    fn stale_front_frames_are_dropped_on_open() {
        let scratch = Scratch::new("stalefront");
        let mut store = store_with(scratch.path(), 4, 0..10);
        // Save the front-to-be before a partial prune, restore it after:
        // the state a crash between manifest update and front rewrite
        // leaves behind.
        let front = scratch.path().join(segment_file_name(1));
        let saved = fs::read(&front).unwrap();
        store.drain_front(6); // drops file 0 whole, halves file 1
        drop(store);
        fs::write(&front, saved).unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(6));
        // The recovery rewrote the file: pruned frames are physically gone.
        let bytes = fs::read(&front).unwrap();
        let parsed = parse_segment(&bytes);
        assert!(parsed.damage.is_none());
        assert_eq!(parsed.frames.len(), 2);
        assert_eq!(parsed.frames[0].offset, 0, "survivors rebased to zero");
    }

    #[test]
    fn temp_files_are_cleaned_on_open() {
        let scratch = Scratch::new("tmp");
        let store = store_with(scratch.path(), 4, 0..3);
        drop(store);
        let stray = scratch.path().join("MANIFEST.tmp");
        fs::write(&stray, b"half-written").unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert!(!stray.exists());
    }

    #[test]
    fn clone_is_a_detached_resident_snapshot() {
        let scratch = Scratch::new("clone");
        let store = store_with(scratch.path(), 4, 0..6);
        let mut snapshot = store.clone();
        assert!(!snapshot.is_durable());
        assert_eq!(snapshot, store);
        // The clone has no files to page from: everything is resident.
        assert!(snapshot.resident_bytes() >= 6 * sealed(0).byte_size() as u64);
        // Mutating the clone never touches the original's directory.
        snapshot.push(sealed(6));
        drop(snapshot);
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
    }

    #[test]
    fn reset_keeps_the_root_but_wipes_the_log() {
        let scratch = Scratch::new("reset");
        let mut store = store_with(scratch.path(), 4, 0..9);
        store.reset();
        assert!(store.is_empty());
        assert!(store.is_durable());
        assert_eq!(store.hot_cache_len(), 0, "reset purges the cache");
        store.push(sealed(0));
        store.push(sealed(1));
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(0));
    }

    #[test]
    fn refilled_front_segment_seals_at_capacity() {
        // A single partially pruned, unsealed segment keeps taking appends
        // until its *live* count reaches capacity, so the middle-segments-
        // are-full invariant behind O(1) get() holds.
        let scratch = Scratch::new("refill");
        let mut store = store_with(scratch.path(), 4, 0..3);
        store.drain_front(2);
        for n in 3..8 {
            store.push(sealed(n));
        }
        assert_eq!(store.len(), 6);
        for (i, expect) in (2..8).enumerate() {
            assert_eq!(
                store.get(i).unwrap().block().number(),
                BlockNumber(expect),
                "index {i}"
            );
        }
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 6);
        let numbers: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(numbers, (2..8).collect::<Vec<_>>());
    }

    #[test]
    fn fsync_policies_drive_the_tail_fsync_cadence() {
        // OnFill: no tail fsync until a segment fills. Set explicitly —
        // the process default is OnFill, but SELDEL_FSYNC_POLICY (the CI
        // pipeline-smoke job sets `always`) can move it at open time.
        let scratch = Scratch::new("policy-default");
        let mut store = FileStore::open_with_capacity(scratch.path(), 8)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::OnFill);
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 0, "OnFill must not sync mid-segment");
        for n in 5..8 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 1, "the fill fsync");

        // Always: one tail fsync per appended frame.
        let scratch = Scratch::new("policy-always");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Always);
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 5);

        // EveryN(2): group commit at frames 2 and 4.
        let scratch = Scratch::new("policy-every2");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::EveryN(2));
        for n in 0..5 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 2);
        assert_eq!(store.fsync_policy(), FsyncPolicy::EveryN(2));
    }

    #[test]
    fn every_n_still_fsyncs_the_tail_before_each_prunes_manifest_write() {
        // The group-commit window must never defer the §IV-C barrier: even
        // with EveryN far from due, drain_front fsyncs the tail before the
        // manifest write makes the prune irreversible.
        let scratch = Scratch::new("policy-barrier");
        let mut store = FileStore::open_with_capacity(scratch.path(), 100)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::EveryN(1_000_000));
        for n in 0..6 {
            store.push(sealed(n));
        }
        assert_eq!(store.tail_fsyncs(), 0, "window far from due");
        let removed = store.drain_front(2);
        assert_eq!(removed.len(), 2);
        assert_eq!(
            store.tail_fsyncs(),
            1,
            "prune barrier must fsync the tail regardless of the policy"
        );
        // The surviving frames were durable before the manifest moved:
        // a reopen sees exactly blocks 2..6.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(2));
        assert_eq!(reopened.last().unwrap().block().number(), BlockNumber(5));
    }

    #[test]
    fn fsync_policy_env_values_parse() {
        assert_eq!(parse_fsync_policy("always"), Some(FsyncPolicy::Always));
        assert_eq!(parse_fsync_policy(" Always "), Some(FsyncPolicy::Always));
        assert_eq!(parse_fsync_policy("onfill"), Some(FsyncPolicy::OnFill));
        assert_eq!(parse_fsync_policy("on-fill"), Some(FsyncPolicy::OnFill));
        assert_eq!(parse_fsync_policy("every:8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(parse_fsync_policy("every:"), None);
        assert_eq!(parse_fsync_policy("sometimes"), None);
    }

    #[test]
    fn durable_watermark_tracks_fsync_points_without_pipelining() {
        let scratch = Scratch::new("watermark-sync");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::OnFill);
        assert_eq!(store.durable_up_to(), None, "empty store: nothing durable");
        for n in 0..3 {
            store.push(sealed(n));
        }
        assert_eq!(
            store.durable_up_to(),
            None,
            "OnFill appends are not durable until the segment fills"
        );
        store.push(sealed(3));
        assert_eq!(
            store.durable_up_to(),
            Some(BlockNumber(3)),
            "the fill fsync moves the watermark to the fill"
        );
        store.push(sealed(4));
        assert_eq!(store.durable_up_to(), Some(BlockNumber(3)));
        store.commit_durable().unwrap();
        assert_eq!(
            store.durable_up_to(),
            Some(BlockNumber(4)),
            "the barrier moves the watermark to the tip"
        );

        // A reopen trusts whatever replay accepted.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.durable_up_to(), Some(BlockNumber(4)));

        // Unrooted stores have no disk to lag behind: watermark == tip.
        let mut unrooted = FileStore::default();
        assert_eq!(unrooted.durable_up_to(), None);
        unrooted.push(sealed(0));
        assert_eq!(unrooted.durable_up_to(), Some(BlockNumber(0)));
    }

    #[test]
    fn paused_pipeline_freezes_the_watermark_until_a_barrier() {
        let scratch = Scratch::new("pipeline-pause");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Always)
            .with_pipelined_commits();
        assert!(store.is_pipelined());
        store.pause_commits(true);
        for n in 0..6 {
            store.append_deferred(sealed(n));
        }
        // Every push owed an fsync (Always), all deferred, none completed:
        // the watermark has not moved and neither has the fsync counter.
        assert_eq!(store.durable_up_to(), None, "held worker completes none");
        assert_eq!(store.tail_fsyncs(), 0);
        // The foreground barrier drains the queue inline — a paused stage
        // must not deadlock it.
        store.commit_durable().unwrap();
        assert_eq!(store.durable_up_to(), Some(BlockNumber(5)));
        store.pause_commits(false);
    }

    #[test]
    fn resumed_pipeline_advances_the_watermark_in_the_background() {
        let scratch = Scratch::new("pipeline-resume");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Always)
            .with_pipelined_commits();
        for n in 0..6 {
            store.append_deferred(sealed(n));
        }
        // The worker owns the fsyncs now; it reaches the tip without any
        // foreground barrier. Bounded wait, generous for slow CI disks.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while store.durable_up_to() != Some(BlockNumber(5)) {
            assert!(
                std::time::Instant::now() < deadline,
                "commit stage never reached the tip: {:?}",
                store.durable_up_to()
            );
            thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(store.tail_fsyncs() >= 1, "worker fsyncs are counted");
    }

    #[test]
    fn prune_barrier_drains_a_paused_pipeline_first() {
        // §IV-C under pipelining: deferred fill fsyncs may cover the very
        // segments a prune rewrites/unlinks — drain_front must land them
        // before the manifest write, even with the worker held.
        let scratch = Scratch::new("pipeline-prune");
        let mut store = FileStore::open_with_capacity(scratch.path(), 2)
            .unwrap()
            .with_pipelined_commits();
        store.pause_commits(true);
        for n in 0..6 {
            store.append_deferred(sealed(n));
        }
        let removed = store.drain_front(3);
        assert_eq!(removed.len(), 3);
        assert_eq!(
            store.durable_up_to(),
            Some(BlockNumber(5)),
            "the prune barrier is a full durability barrier"
        );
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.first().unwrap().block().number(), BlockNumber(3));
        assert_eq!(reopened.last().unwrap().block().number(), BlockNumber(5));
    }

    #[test]
    fn dropping_a_pipelined_store_lands_every_deferred_fsync() {
        let scratch = Scratch::new("pipeline-drop");
        let mut store = FileStore::open_with_capacity(scratch.path(), 2)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::Always)
            .with_pipelined_commits();
        store.pause_commits(true);
        for n in 0..5 {
            store.append_deferred(sealed(n));
        }
        // Drop joins the worker, which drains the queue on shutdown even
        // though it was held — a clean close loses nothing.
        drop(store);
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 5);
        assert_eq!(reopened.durable_up_to(), Some(BlockNumber(4)));
    }

    #[test]
    fn pipelined_clone_is_detached_and_unpipelined() {
        let scratch = Scratch::new("pipeline-clone");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_pipelined_commits();
        for n in 0..3 {
            store.append_deferred(sealed(n));
        }
        let clone = store.clone();
        assert!(!clone.is_pipelined(), "clones are unrooted: no stage");
        assert_eq!(clone.durable_up_to(), Some(BlockNumber(2)));
        assert_eq!(clone, store);
    }

    #[test]
    fn reset_restarts_the_durable_frontier() {
        let scratch = Scratch::new("pipeline-reset");
        let mut store = FileStore::open_with_capacity(scratch.path(), 2)
            .unwrap()
            .with_pipelined_commits();
        for n in 0..4 {
            store.append_deferred(sealed(n));
        }
        store.commit_durable().unwrap();
        assert_eq!(store.durable_up_to(), Some(BlockNumber(3)));
        store.reset();
        assert!(store.is_pipelined(), "reset keeps pipelined mode");
        assert_eq!(
            store.durable_up_to(),
            None,
            "a wiped store has nothing durable — the old frontier must not leak"
        );
        store.push(sealed(0));
        assert_eq!(
            store.durable_up_to(),
            None,
            "the refilled tail is not durable until its first fsync point"
        );
        store.commit_durable().unwrap();
        assert_eq!(store.durable_up_to(), Some(BlockNumber(0)));
    }

    #[test]
    fn segment_frame_numbers_reports_frame_boundaries() {
        let scratch = Scratch::new("frame-numbers");
        let store = store_with(scratch.path(), 10, 0..3);
        let path = scratch.path().join(segment_file_name(0));
        drop(store);
        let bytes = fs::read(&path).unwrap();
        let frames = segment_frame_numbers(&bytes);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], (0, 0));
        assert_eq!(
            frames.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Truncating at a reported offset leaves a clean shorter log.
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(frames[2].0)
            .unwrap();
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 2);
    }

    #[test]
    fn unsupported_version_is_reported() {
        let scratch = Scratch::new("version");
        let store = store_with(scratch.path(), 4, 0..1);
        drop(store);
        let manifest = Manifest {
            segment_capacity: 4,
            first_segment_id: 0,
            first_block_number: 0,
        };
        let mut bytes = manifest.encode_bytes();
        bytes[8] = 0xEE; // clobber the version field
        fs::write(scratch.path().join(MANIFEST_NAME), bytes).unwrap();
        assert!(matches!(
            FileStore::open(scratch.path()),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn deferred_compaction_translates_reads_and_lands_at_the_barrier() {
        let scratch = Scratch::new("deferred-compaction");
        let mut store = FileStore::open_with_capacity(scratch.path(), 4)
            .unwrap()
            .with_pipelined_commits();
        for n in 0..12 {
            store.push(sealed(n));
        }
        // Freeze the worker so the queued compaction provably stays
        // pending until a foreground barrier runs it.
        store.pause_commits(true);
        let front = scratch.path().join(segment_file_name(0));
        let full_len = fs::metadata(&front).unwrap().len();

        store.drain_front(2);
        assert_eq!(
            fs::metadata(&front).unwrap().len(),
            full_len,
            "the front rewrite is deferred: the prune left the file bytes alone"
        );
        // The scan iterator reads from disk (bypassing the hot cache), so
        // this pins the offset translation over the still-pending cut.
        let nums: Vec<u64> = store.iter().map(|s| s.block().number().value()).collect();
        assert_eq!(nums, (2..12).collect::<Vec<_>>());

        // The barrier steals and executes the compaction inline even with
        // the worker paused.
        store.commit_durable().unwrap();
        let compacted_len = fs::metadata(&front).unwrap().len();
        assert!(
            compacted_len < full_len,
            "the barrier landed the physical rewrite"
        );

        // A second deferred cut on the same segment: the new absolute cut
        // exceeds the applied one, so reads now translate through a
        // partially-compacted file, and the follow-up compaction removes
        // only the delta.
        store.drain_front(1);
        let nums: Vec<u64> = store.iter().map(|s| s.block().number().value()).collect();
        assert_eq!(nums, (3..12).collect::<Vec<_>>());
        store.commit_durable().unwrap();
        assert!(fs::metadata(&front).unwrap().len() < compacted_len);
        let nums: Vec<u64> = store.iter().map(|s| s.block().number().value()).collect();
        assert_eq!(nums, (3..12).collect::<Vec<_>>());
        store.pause_commits(false);
    }

    #[test]
    fn clean_close_lands_pending_compactions() {
        let scratch = Scratch::new("deferred-compaction-close");
        let front = scratch.path().join(segment_file_name(0));
        let full_len;
        {
            let mut store = FileStore::open_with_capacity(scratch.path(), 4)
                .unwrap()
                .with_pipelined_commits();
            for n in 0..12 {
                store.push(sealed(n));
            }
            full_len = fs::metadata(&front).unwrap().len();
            store.drain_front(2);
            // Close with the compaction possibly still queued: the worker
            // drains before the store drops.
        }
        assert!(
            fs::metadata(&front).unwrap().len() < full_len,
            "a clean close completes the physical deletion"
        );
        let reopened = FileStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.len(), 10);
        let nums: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(nums, (2..12).collect::<Vec<_>>());
    }

    #[test]
    fn losing_a_queued_compaction_is_healed_on_reopen() {
        let scratch = Scratch::new("deferred-compaction-crash");
        let crashed = Scratch::new("deferred-compaction-crash-copy");
        let uncompacted_len;
        {
            let mut store = FileStore::open_with_capacity(scratch.path(), 4)
                .unwrap()
                .with_pipelined_commits();
            for n in 0..12 {
                store.push(sealed(n));
            }
            store.pause_commits(true);
            store.drain_front(2);
            // Snapshot the directory while the compaction is still queued
            // — exactly what a power cut after the manifest write but
            // before the deferred rewrite leaves behind.
            fs::create_dir_all(crashed.path()).unwrap();
            for entry in fs::read_dir(scratch.path()).unwrap() {
                let entry = entry.unwrap();
                fs::copy(entry.path(), crashed.path().join(entry.file_name())).unwrap();
            }
            uncompacted_len = fs::metadata(crashed.path().join(segment_file_name(0)))
                .unwrap()
                .len();
        }
        let reopened = FileStore::open(crashed.path()).unwrap();
        assert_eq!(reopened.len(), 10);
        let nums: Vec<u64> = reopened
            .iter()
            .map(|s| s.block().number().value())
            .collect();
        assert_eq!(nums, (2..12).collect::<Vec<_>>());
        // Recovery finished the prune physically, not just in memory.
        let healed = fs::metadata(crashed.path().join(segment_file_name(0)))
            .unwrap()
            .len();
        assert!(healed < uncompacted_len);
    }
}

//! The sharded query & intake subsystem: partitioned entry index and
//! sharded mempool.
//!
//! "Where does data set X live now" is the hot query of the whole system
//! (§V: every validation, deletion and sync check resolves entries against
//! the live chain). PR 2's maintained [`EntryIndex`] made that O(log n) —
//! but as a single monolithic `BTreeMap` it is rebuilt serially on
//! recovery and contended by every author. This module partitions it:
//!
//! * [`ShardMap`] — a stable key → shard-id mapping (power-of-two shard
//!   count, FNV-1a over canonical bytes). **Stability rule:** the route is
//!   a pure function of the key's canonical bytes and the shard count,
//!   never of process state (no randomized hashers), so two nodes — or
//!   one node across restarts — with the same shard count route every key
//!   identically, and per-shard parallel rebuilds land each id in the
//!   same shard a live chain maintains it in.
//! * [`ShardedIndex`] — the [`EntryIndex`] partitioned by *entry id*
//!   (the only key a lookup holds), behind the same
//!   `get`/`contains`/`index_block`/`retire_before` API. The monolithic
//!   [`EntryIndex`] stays as the oracle the property tests compare
//!   against. [`ShardedIndex::build_from_store`] rebuilds all shards in
//!   parallel with `std::thread::scope` — the recovery path for
//!   `MemStore`/`SegStore`/`FileStore` replays.
//! * [`ShardedMempool`] — the leader's intake queue partitioned by
//!   *author key*, with per-shard dedup (a byte-identical entry already
//!   pending is refused) and a fair round-robin drain at seal time, so a
//!   single hot author can no longer occupy every slot of a sealed block.
//!
//! Everything here is **derived state**: shards never enter a hash or a
//! canonical encoding, so invariant I2 (bit-identical summary blocks
//! across nodes) cannot see the shard count — the same separation that
//! lets redactable-chain designs keep mutable bookkeeping outside
//! consensus. Resharding is always safe and purely local.

use std::collections::{BTreeSet, VecDeque};

use seldel_crypto::{sha256, Digest32, VerifyingKey};

use crate::block::Block;
use crate::entry::Entry;
use crate::index::{block_index_pairs, EntryIndex, Location};
use crate::store::BlockStore;
use crate::types::{BlockNumber, EntryId};

/// Default shard count for chains and mempools that do not pick one.
///
/// Small enough that tiny test chains pay no measurable routing overhead,
/// large enough that multi-tenant lookups and recovery rebuilds
/// parallelise on common hardware. Any power of two gives bit-identical
/// query results (property-tested); only performance differs.
pub const DEFAULT_SHARD_COUNT: usize = 4;

/// Rebuilds with fewer blocks than this stay serial: spawning scoped
/// threads costs more than replaying a short chain.
const PARALLEL_REBUILD_MIN_BLOCKS: usize = 64;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms and
/// process runs (unlike `std`'s randomized `DefaultHasher`).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable key → shard-id mapping over a power-of-two shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// Creates a map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two in `1..=65536` — the
    /// power-of-two constraint keeps routing a single mask instead of a
    /// modulo, and makes doubling/halving the count an even split.
    pub fn new(shards: usize) -> ShardMap {
        assert!(
            (1..=1 << 16).contains(&shards),
            "shard count {shards} outside 1..=65536"
        );
        assert!(
            shards.is_power_of_two(),
            "shard count {shards} is not a power of two"
        );
        ShardMap {
            shards: shards as u32,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Routes an arbitrary canonical byte string.
    pub fn shard_of_bytes(&self, bytes: &[u8]) -> usize {
        (fnv1a64(bytes) & u64::from(self.shards - 1)) as usize
    }

    /// Routes an author key — the mempool partition.
    pub fn shard_of_author(&self, author: &VerifyingKey) -> usize {
        self.shard_of_bytes(author.as_bytes())
    }

    /// Routes an entry id — the index partition. Lookups only hold the id
    /// (not the author), so the index must shard by something derivable
    /// from the id alone.
    pub fn shard_of_entry(&self, id: EntryId) -> usize {
        let mut bytes = [0u8; 12];
        bytes[..8].copy_from_slice(&id.block.value().to_le_bytes());
        bytes[8..].copy_from_slice(&id.entry.value().to_le_bytes());
        self.shard_of_bytes(&bytes)
    }
}

impl Default for ShardMap {
    fn default() -> ShardMap {
        ShardMap::new(DEFAULT_SHARD_COUNT)
    }
}

/// The [`EntryIndex`] partitioned by entry id.
///
/// Exposes the monolithic index's query API and must answer every query
/// bit-identically to it (the property tests pin this against the
/// [`EntryIndex`] oracle). Routing an id is a pure function of the id and
/// the shard count, so an id's entire location history — insert,
/// newest-carrier overwrite, retire — plays out inside one shard, which is
/// why per-shard state needs no cross-shard coordination.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    map: ShardMap,
    shards: Vec<EntryIndex>,
}

impl Default for ShardedIndex {
    fn default() -> ShardedIndex {
        ShardedIndex::new(DEFAULT_SHARD_COUNT)
    }
}

impl ShardedIndex {
    /// An empty index over `shards` shards (see [`ShardMap::new`]).
    pub fn new(shards: usize) -> ShardedIndex {
        ShardedIndex::with_map(ShardMap::new(shards))
    }

    /// An empty index routed by an existing map.
    pub fn with_map(map: ShardMap) -> ShardedIndex {
        ShardedIndex {
            map,
            shards: vec![EntryIndex::new(); map.shards()],
        }
    }

    /// The routing map.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of ids held by shard `shard` (diagnostics / balance tests).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// The location of `id`, if indexed.
    pub fn get(&self, id: EntryId) -> Option<Location> {
        self.shards[self.map.shard_of_entry(id)].get(id)
    }

    /// Whether `id` is indexed (the data set is physically live).
    pub fn contains(&self, id: EntryId) -> bool {
        self.shards[self.map.shard_of_entry(id)].contains(id)
    }

    /// Total number of indexed data sets across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EntryIndex::len).sum()
    }

    /// Whether no shard holds anything.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EntryIndex::is_empty)
    }

    /// Iterates `(id, location)` pairs in global id order — a k-way merge
    /// of the per-shard (already ordered) iterators.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Location)> + '_ {
        MergedIter {
            shards: self
                .shards
                .iter()
                .map(|s| (Box::new(s.iter()) as ShardIter<'_>).peekable())
                .collect(),
        }
    }

    /// Indexes a freshly appended block, routing each contributed pair to
    /// its shard (same inputs as [`EntryIndex::index_block`]).
    pub fn index_block(&mut self, block: &Block) {
        for (id, location) in block_index_pairs(block) {
            self.shards[self.map.shard_of_entry(id)].insert(id, location);
        }
    }

    /// Drops every entry whose holder block lies before `marker`, shard by
    /// shard (same semantics as [`EntryIndex::retire_before`]).
    pub fn retire_before(&mut self, marker: BlockNumber) {
        for shard in &mut self.shards {
            shard.retire_before(marker);
        }
    }

    /// Whether [`ShardedIndex::build_from_store`] would actually engage
    /// its parallel path for `blocks` blocks — callers that already walk
    /// the store serially (e.g. a linkage check) can index inline during
    /// that walk when this is `false`, instead of paying a second pass.
    pub fn parallel_build_applies(map: ShardMap, blocks: usize) -> bool {
        map.shards() > 1
            && blocks >= PARALLEL_REBUILD_MIN_BLOCKS
            && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
    }

    /// Rebuilds the index from a store's blocks, replaying shards in
    /// parallel — the recovery path.
    ///
    /// Two phases under `std::thread::scope`:
    ///
    /// 1. **Scatter**: workers over contiguous block ranges route every
    ///    contributed `(id, location)` pair to its shard bucket,
    ///    preserving block order within each range.
    /// 2. **Build**: workers (bounded by cores, each owning every
    ///    `workers`-th shard) insert their buckets in range order, so the
    ///    newest-carrier-wins overwrite replays exactly as a serial pass
    ///    would.
    ///
    /// The result is bit-identical to a serial replay regardless of thread
    /// scheduling (merge order is fixed by the range order); short chains
    /// and single-core hosts skip the threads entirely
    /// ([`ShardedIndex::parallel_build_applies`]).
    pub fn build_from_store<S: BlockStore>(map: ShardMap, store: &S) -> ShardedIndex {
        let blocks = store.len();
        if !ShardedIndex::parallel_build_applies(map, blocks) {
            // Serial replay — still sharded (smaller, hotter trees), just
            // without thread overhead the hardware cannot amortise.
            let mut index = ShardedIndex::with_map(map);
            for sealed in store.iter() {
                index.index_block(sealed.block());
            }
            return index;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = map.shards().min(blocks).min(cores.max(2));
        ShardedIndex::build_parallel(map, store, workers)
    }

    /// The threaded half of [`ShardedIndex::build_from_store`], with an
    /// explicit worker count. Split out (and directly unit-tested) so
    /// single-core hosts, whose `build_from_store` always takes the
    /// serial path, still exercise the scatter/build phases.
    fn build_parallel<S: BlockStore>(map: ShardMap, store: &S, workers: usize) -> ShardedIndex {
        let shards = map.shards();
        let blocks = store.len();
        let workers = workers.clamp(1, blocks.max(1));
        let chunk = blocks.div_ceil(workers);
        let scattered: Vec<Vec<Vec<(EntryId, Location)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut buckets: Vec<Vec<(EntryId, Location)>> = vec![Vec::new(); shards];
                        let start = w * chunk;
                        let end = ((w + 1) * chunk).min(blocks);
                        for i in start..end {
                            let block = store.get(i).expect("index in range");
                            for (id, location) in block_index_pairs(block.block()) {
                                buckets[map.shard_of_entry(id)].push((id, location));
                            }
                        }
                        buckets
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        });

        // Workers, not one thread per shard: a worker owns every
        // `shards / workers`-th shard, so huge shard counts never
        // translate into huge thread counts.
        let built: Vec<EntryIndex> = std::thread::scope(|scope| {
            let scattered = &scattered;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, EntryIndex)> = Vec::new();
                        let mut s = w;
                        while s < shards {
                            let mut shard = EntryIndex::new();
                            for range in scattered {
                                for (id, location) in &range[s] {
                                    shard.insert(*id, *location);
                                }
                            }
                            mine.push((s, shard));
                            s += workers;
                        }
                        mine
                    })
                })
                .collect();
            let mut built: Vec<Option<EntryIndex>> = (0..shards).map(|_| None).collect();
            for handle in handles {
                for (s, shard) in handle.join().expect("build worker panicked") {
                    built[s] = Some(shard);
                }
            }
            built
                .into_iter()
                .map(|s| s.expect("every shard built exactly once"))
                .collect()
        });

        ShardedIndex { map, shards: built }
    }
}

/// Logical equality: same `(id, location)` pairs, regardless of shard
/// count or layout — two chains only differing in shard count compare
/// equal, like stores only differing in pruning history do.
impl PartialEq for ShardedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for ShardedIndex {}

/// Equality against the monolithic oracle, so existing
/// `assert_eq!(chain.entry_index(), &chain.rebuilt_index())` checks keep
/// comparing maintained state to a full-scan rebuild.
impl PartialEq<EntryIndex> for ShardedIndex {
    fn eq(&self, other: &EntryIndex) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// One shard's ordered pair stream, boxed for the merge.
type ShardIter<'a> = Box<dyn Iterator<Item = (EntryId, Location)> + 'a>;

/// K-way merge over per-shard ordered iterators.
struct MergedIter<'a> {
    shards: Vec<std::iter::Peekable<ShardIter<'a>>>,
}

impl Iterator for MergedIter<'_> {
    type Item = (EntryId, Location);

    fn next(&mut self) -> Option<(EntryId, Location)> {
        let mut best: Option<(usize, EntryId)> = None;
        for (i, iter) in self.shards.iter_mut().enumerate() {
            if let Some((id, _)) = iter.peek() {
                if best.is_none_or(|(_, best_id)| *id < best_id) {
                    best = Some((i, *id));
                }
            }
        }
        let (winner, _) = best?;
        self.shards[winner].next()
    }
}

/// One queued mempool entry.
#[derive(Debug, Clone)]
struct QueuedEntry {
    /// Global arrival sequence (drives the uncapped exact-FIFO drain).
    seq: u64,
    /// Digest of the canonical bytes (the dedup key).
    digest: Digest32,
    /// The entry itself.
    entry: Entry,
    /// Glued to the entry queued right behind it in the same shard: the
    /// two must seal in the same block (atomic bundles, e.g. a
    /// correction's deletion + replacement).
    glued_to_next: bool,
}

/// The leader's intake queue, partitioned by author key.
///
/// Entries wait per author shard in arrival order; a global arrival
/// sequence number preserves exact first-in-first-out sealing when no
/// block capacity is configured. Under a capacity limit
/// ([`ShardedMempool::drain_fair`] with `Some(cap)`), the drain turns
/// round-robin across shards so one flooding author cannot occupy every
/// slot of a sealed block — the entries a round leaves behind stay queued
/// for the next block (atomic bundles always travel whole; see
/// [`ShardedMempool::insert_atomic`]).
///
/// **Per-shard dedup:** inserting an entry whose canonical bytes are
/// already pending is refused. Identical entries always route to the same
/// shard (same author), so per-shard dedup is global dedup at per-shard
/// cost.
#[derive(Debug, Clone)]
pub struct ShardedMempool {
    map: ShardMap,
    /// Queued entries per shard, arrival order.
    shards: Vec<VecDeque<QueuedEntry>>,
    /// Digests of pending entries, per shard (the dedup filter).
    pending: Vec<BTreeSet<Digest32>>,
    /// Where the next capped drain's round-robin starts. Persisted across
    /// drains: without it every block would restart at shard 0, handing
    /// low-index shards a standing advantage and starving high-index
    /// shards under caps smaller than the number of active shards.
    cursor: usize,
    next_seq: u64,
    len: usize,
}

impl Default for ShardedMempool {
    fn default() -> ShardedMempool {
        ShardedMempool::new(DEFAULT_SHARD_COUNT)
    }
}

impl ShardedMempool {
    /// An empty mempool over `shards` author shards.
    pub fn new(shards: usize) -> ShardedMempool {
        let map = ShardMap::new(shards);
        ShardedMempool {
            map,
            shards: vec![VecDeque::new(); map.shards()],
            pending: vec![BTreeSet::new(); map.shards()],
            cursor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of author shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending entries in shard `shard` (diagnostics / fairness tests).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Whether a byte-identical entry is already pending (what
    /// [`ShardedMempool::insert`] would refuse) — lets callers staging a
    /// multi-entry submission check the whole batch before enqueuing any
    /// of it.
    pub fn contains(&self, entry: &Entry) -> bool {
        use seldel_codec::Codec;
        let digest = sha256(entry.to_canonical_bytes());
        self.pending[self.map.shard_of_author(&entry.author())].contains(&digest)
    }

    /// Enqueues an entry into its author's shard. Returns `false` — and
    /// enqueues nothing — when a byte-identical entry is already pending.
    pub fn insert(&mut self, entry: Entry) -> bool {
        self.insert_atomic(vec![entry])
    }

    /// Enqueues several entries **atomically**: either all are accepted,
    /// or (if any is a pending duplicate, or the entries span more than
    /// one author shard) none is — and once accepted, the bundle also
    /// *seals* atomically: a capped drain never splits it across blocks.
    /// This is the primitive behind corrections, whose deletion +
    /// replacement must land together (same author, hence same shard).
    pub fn insert_atomic(&mut self, entries: Vec<Entry>) -> bool {
        use seldel_codec::Codec;
        let Some(first) = entries.first() else {
            return true;
        };
        let shard = self.map.shard_of_author(&first.author());
        let digests: Vec<Digest32> = entries
            .iter()
            .map(|e| sha256(e.to_canonical_bytes()))
            .collect();
        // All-or-nothing: every check before any mutation.
        let same_shard = entries
            .iter()
            .all(|e| self.map.shard_of_author(&e.author()) == shard);
        let mut staged = BTreeSet::new();
        let all_fresh = digests
            .iter()
            .all(|d| !self.pending[shard].contains(d) && staged.insert(*d));
        if !same_shard || !all_fresh {
            return false;
        }
        let last = entries.len() - 1;
        for (i, (entry, digest)) in entries.into_iter().zip(digests).enumerate() {
            self.pending[shard].insert(digest);
            self.shards[shard].push_back(QueuedEntry {
                seq: self.next_seq,
                digest,
                entry,
                glued_to_next: i < last,
            });
            self.next_seq += 1;
            self.len += 1;
        }
        true
    }

    /// Drains entries for the next block.
    ///
    /// With no capacity (or when everything fits) the drain is the exact
    /// global arrival order — byte-identical blocks to the historical
    /// single-queue mempool. When `cap` bites, the drain takes the oldest
    /// entry of each non-empty shard, round after round, until `cap`
    /// entries are out: every author shard with pending work gets a slot
    /// before any shard gets a second one. Rounds start at a cursor
    /// **persisted across drains** (just past the last shard served), so
    /// low-index shards hold no standing advantage block after block —
    /// even a cap of 1 rotates through every active shard over
    /// consecutive blocks. Atomic bundles
    /// ([`ShardedMempool::insert_atomic`]) always drain whole; a block
    /// may exceed the cap by a bundle tail rather than split one.
    pub fn drain_fair(&mut self, cap: Option<usize>) -> Vec<Entry> {
        let take = cap.map_or(self.len, |c| c.min(self.len));
        if take == 0 {
            return Vec::new();
        }
        if take == self.len {
            // Everything goes: merge by arrival sequence (exact FIFO).
            let mut all: Vec<(u64, Entry)> = Vec::with_capacity(self.len);
            for shard in &mut self.shards {
                all.extend(shard.drain(..).map(|q| (q.seq, q.entry)));
            }
            for pending in &mut self.pending {
                pending.clear();
            }
            self.len = 0;
            all.sort_unstable_by_key(|(seq, _)| *seq);
            return all.into_iter().map(|(_, entry)| entry).collect();
        }
        let shard_count = self.shards.len();
        let mut out = Vec::with_capacity(take);
        'rounds: while out.len() < take {
            let mut progressed = false;
            for step in 0..shard_count {
                let shard = (self.cursor + step) % shard_count;
                // Pop the head — and, if it opens a glued bundle, the
                // whole bundle: atomic pairs never split across blocks,
                // even when that overshoots the cap by a bundle tail.
                let mut glued = true;
                let mut popped = false;
                while glued {
                    let Some(queued) = self.shards[shard].pop_front() else {
                        break;
                    };
                    self.pending[shard].remove(&queued.digest);
                    glued = queued.glued_to_next;
                    out.push(queued.entry);
                    popped = true;
                }
                if popped {
                    progressed = true;
                    if out.len() >= take {
                        self.cursor = (shard + 1) % shard_count;
                        break 'rounds;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.len -= out.len();
        out
    }

    /// Drops everything pending.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        for pending in &mut self.pending {
            pending.clear();
        }
        self.cursor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::store::{MemStore, SealedBlock, SegStore};
    use crate::summary::SummaryRecord;
    use crate::types::{EntryNumber, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn data_entry(seed: u8, n: u64) -> Entry {
        Entry::sign_data(&key(seed), DataRecord::new("log").with("n", n))
    }

    fn normal_block(number: u64, entries: Vec<Entry>) -> Block {
        Block::new(
            BlockNumber(number),
            Timestamp(number * 10),
            seldel_crypto::Digest32::ZERO,
            BlockBody::Normal { entries },
            Seal::Deterministic,
        )
    }

    fn summary_block(number: u64, records: Vec<SummaryRecord>) -> Block {
        Block::new(
            BlockNumber(number),
            Timestamp(number * 10),
            seldel_crypto::Digest32::ZERO,
            BlockBody::Summary {
                records,
                deletions: vec![],
                anchor: None,
            },
            Seal::Deterministic,
        )
    }

    #[test]
    fn shard_map_routes_are_stable_and_in_range() {
        let map = ShardMap::new(8);
        let id = EntryId::new(BlockNumber(17), EntryNumber(3));
        let route = map.shard_of_entry(id);
        assert!(route < 8);
        // Stability: same inputs, same route, every time and across maps.
        assert_eq!(route, map.shard_of_entry(id));
        assert_eq!(route, ShardMap::new(8).shard_of_entry(id));
        let author = key(1).verifying_key();
        assert_eq!(map.shard_of_author(&author), map.shard_of_author(&author));
        // Halving the count is a strict coarsening of the same hash.
        let coarse = ShardMap::new(4);
        assert_eq!(coarse.shard_of_entry(id), route & 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shard_map_rejects_non_power_of_two() {
        ShardMap::new(3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn shard_map_rejects_zero() {
        ShardMap::new(0);
    }

    #[test]
    fn sharded_index_matches_monolithic_on_blocks() {
        for shards in [1usize, 2, 8] {
            let mut sharded = ShardedIndex::new(shards);
            let mut oracle = EntryIndex::new();
            let block1 = normal_block(1, vec![data_entry(1, 1), data_entry(2, 2)]);
            let block2 = normal_block(2, vec![data_entry(3, 3)]);
            let carried = EntryId::new(BlockNumber(1), EntryNumber(0));
            let record = SummaryRecord::from_entry(&block1.entries()[0], carried, Timestamp(10))
                .expect("data entry");
            let sigma = summary_block(3, vec![record]);
            for block in [&block1, &block2, &sigma] {
                sharded.index_block(block);
                oracle.index_block(block);
            }
            assert_eq!(sharded.len(), oracle.len());
            assert!(sharded.iter().eq(oracle.iter()), "shards = {shards}");
            assert_eq!(&sharded, &oracle);
            for (id, _) in oracle.iter() {
                assert_eq!(sharded.get(id), oracle.get(id));
                assert!(sharded.contains(id));
            }

            // Retire: both drop the same ids.
            sharded.retire_before(BlockNumber(2));
            oracle.retire_before(BlockNumber(2));
            assert_eq!(&sharded, &oracle);
            assert_eq!(sharded.get(carried), oracle.get(carried));
        }
    }

    #[test]
    fn sharded_index_logical_equality_ignores_shard_count() {
        let block = normal_block(1, vec![data_entry(1, 1), data_entry(2, 2)]);
        let mut one = ShardedIndex::new(1);
        let mut eight = ShardedIndex::new(8);
        one.index_block(&block);
        eight.index_block(&block);
        assert_eq!(one, eight);
        eight.retire_before(BlockNumber(2));
        assert_ne!(one, eight);
    }

    fn store_with_blocks<S: BlockStore>(blocks: u64) -> S {
        let mut store = S::default();
        for n in 0..blocks {
            let block = if n > 0 && n % 5 == 0 {
                // Re-carry an earlier entry so overwrites happen.
                let origin = EntryId::new(BlockNumber(n - 2), EntryNumber(0));
                let entry = data_entry((n % 7) as u8 + 1, n - 2);
                let record = SummaryRecord::from_entry(&entry, origin, Timestamp((n - 2) * 10))
                    .expect("data entry");
                summary_block(n, vec![record])
            } else {
                normal_block(
                    n,
                    vec![
                        data_entry((n % 7) as u8 + 1, n),
                        data_entry((n % 5) as u8 + 1, n + 1000),
                    ],
                )
            };
            store.push(SealedBlock::seal(block));
        }
        store
    }

    #[test]
    fn parallel_rebuild_equals_serial_replay() {
        // Above and below the parallel threshold, on two backends.
        for blocks in [10u64, 300] {
            let mem: MemStore = store_with_blocks(blocks);
            let seg: SegStore = store_with_blocks(blocks);
            let mut serial = ShardedIndex::new(8);
            for sealed in mem.iter() {
                serial.index_block(sealed.block());
            }
            for shards in [1usize, 4, 16] {
                let parallel = ShardedIndex::build_from_store(ShardMap::new(shards), &mem);
                assert_eq!(parallel, serial, "{blocks} blocks, {shards} shards");
                let from_seg = ShardedIndex::build_from_store(ShardMap::new(shards), &seg);
                assert_eq!(from_seg, serial);
            }
        }
    }

    #[test]
    fn threaded_build_matches_serial_for_any_worker_count() {
        // build_from_store only engages threads on multi-core hosts; this
        // drives the scatter/build phases directly so the path is
        // exercised everywhere, including odd worker counts that leave
        // some workers idle or owning several shards.
        let mem: MemStore = store_with_blocks(150);
        for shards in [2usize, 4, 16] {
            let map = ShardMap::new(shards);
            let mut serial = ShardedIndex::with_map(map);
            for sealed in mem.iter() {
                serial.index_block(sealed.block());
            }
            for workers in [1usize, 2, 3, 7, 16, 64] {
                let parallel = ShardedIndex::build_parallel(map, &mem, workers);
                assert_eq!(parallel, serial, "{shards} shards, {workers} workers");
            }
        }
    }

    #[test]
    fn capped_drain_cursor_rotates_across_blocks() {
        // Regression guard: the round-robin cursor must persist across
        // drains. Restarting at shard 0 every block would hand low-index
        // shards a standing advantage — with cap = 1 a quiet author on a
        // high-index shard would never be served at all.
        let mut pool = ShardedMempool::new(4);
        let seeds = distinct_shard_author_seeds(ShardMap::new(4), 2);
        for n in 0..6 {
            assert!(pool.insert(data_entry(seeds[0], n)));
        }
        assert!(pool.insert(data_entry(seeds[1], 100)));
        let quiet_key = key(seeds[1]).verifying_key();
        let mut served_quiet = false;
        for _ in 0..4 {
            let block = pool.drain_fair(Some(1));
            assert_eq!(block.len(), 1);
            served_quiet |= block[0].author() == quiet_key;
        }
        assert!(
            served_quiet,
            "four cap-1 drains over 4 shards never reached the quiet shard"
        );
    }

    #[test]
    fn mempool_preserves_fifo_without_cap() {
        let mut pool = ShardedMempool::new(8);
        let entries: Vec<Entry> = (0..10).map(|n| data_entry((n % 3) as u8 + 1, n)).collect();
        for entry in &entries {
            assert!(pool.insert(entry.clone()));
        }
        assert_eq!(pool.len(), 10);
        let drained = pool.drain_fair(None);
        assert_eq!(drained, entries, "uncapped drain must be exact FIFO");
        assert!(pool.is_empty());
    }

    use crate::testutil::distinct_shard_author_seeds;

    #[test]
    fn mempool_capped_drain_is_fair_round_robin() {
        let mut pool = ShardedMempool::new(4);
        let seeds = distinct_shard_author_seeds(ShardMap::new(4), 3);
        // The first author floods; the other two each submit one entry
        // after the flood is already queued.
        for n in 0..12 {
            assert!(pool.insert(data_entry(seeds[0], n)));
        }
        assert!(pool.insert(data_entry(seeds[1], 100)));
        assert!(pool.insert(data_entry(seeds[2], 200)));

        let block = pool.drain_fair(Some(4));
        assert_eq!(block.len(), 4);
        let authors: BTreeSet<[u8; 32]> = block.iter().map(|e| e.author().to_bytes()).collect();
        for late in &seeds[1..] {
            assert!(
                authors.contains(&key(*late).verifying_key().to_bytes()),
                "author {late} starved out of the block"
            );
        }
        // Leftovers stay queued and drain in arrival order next time.
        assert_eq!(pool.len(), 10);
        let rest = pool.drain_fair(None);
        assert_eq!(rest.len(), 10);
        assert!(pool.is_empty());
    }

    #[test]
    fn mempool_rejects_duplicate_pending_entries() {
        let mut pool = ShardedMempool::new(4);
        let entry = data_entry(1, 7);
        assert!(pool.insert(entry.clone()));
        assert!(!pool.insert(entry.clone()), "duplicate must be refused");
        assert_eq!(pool.len(), 1);
        // Once drained, the same bytes may be submitted again.
        assert_eq!(pool.drain_fair(None).len(), 1);
        assert!(pool.insert(entry));
    }

    #[test]
    fn mempool_clear_resets_dedup() {
        let mut pool = ShardedMempool::new(2);
        let entry = data_entry(1, 1);
        assert!(pool.insert(entry.clone()));
        pool.clear();
        assert!(pool.is_empty());
        assert!(pool.insert(entry), "cleared digests must not linger");
    }
}

//! Structural and cryptographic chain validation.
//!
//! §V-B3 of the paper: nodes "only accept a blockchain which is traceable
//! from its current status quo" — validation therefore starts at the live
//! marker, never at the original block 0 (which may be long pruned). The
//! first live block's `prev_hash` is the quorum-attested trust anchor and
//! is not checked against anything.

use seldel_crypto::MerkleTree;

use crate::block::BlockKind;
use crate::chain::Blockchain;
use crate::error::ChainError;
use crate::store::{BlockStore, SealedBlock};
use crate::summary::Anchor;
use crate::types::BlockNumber;

/// What to verify beyond pure structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// Verify every entry's author signature.
    pub verify_entry_signatures: bool,
    /// Verify the carried signatures inside summary records.
    pub verify_summary_records: bool,
    /// Verify Fig. 9 anchors whose ranges are still live.
    pub verify_anchors: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            verify_entry_signatures: true,
            verify_summary_records: true,
            verify_anchors: true,
        }
    }
}

impl ValidationOptions {
    /// Structure-only validation (hash links, numbering, timestamps).
    pub fn structural() -> ValidationOptions {
        ValidationOptions {
            verify_entry_signatures: false,
            verify_summary_records: false,
            verify_anchors: false,
        }
    }
}

/// Counters describing a completed validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Blocks checked.
    pub blocks_checked: u64,
    /// Entry signatures verified.
    pub entries_verified: u64,
    /// Summary-record signatures verified.
    pub records_verified: u64,
    /// Anchors verified against live history.
    pub anchors_verified: u64,
}

/// Validates the live chain from the marker to the tip.
///
/// Hash-link checks read the per-block digest cache (computed once when
/// each block entered the store); payload commitments are still re-derived
/// from the bodies, so tampering with a stored body is caught regardless.
///
/// # Errors
///
/// Returns the first violation found, as a [`ChainError`].
pub fn validate_chain<S: BlockStore>(
    chain: &Blockchain<S>,
    opts: &ValidationOptions,
) -> Result<ValidationReport, ChainError> {
    let mut report = ValidationReport::default();
    let mut prev: Option<&SealedBlock> = None;

    for sealed in chain.iter_sealed() {
        let block = sealed.block();
        let number = block.number();

        if !block.is_payload_consistent() {
            return Err(ChainError::PayloadMismatch { number });
        }
        if block.kind() == BlockKind::Genesis && number != BlockNumber::GENESIS {
            return Err(ChainError::GenesisMisplaced { number });
        }

        if let Some(prev_sealed) = prev {
            let prev_block = prev_sealed.block();
            if number != prev_block.number().next() {
                return Err(ChainError::NonContiguousNumber {
                    expected: prev_block.number().next(),
                    found: number,
                });
            }
            if block.header().prev_hash != prev_sealed.hash() {
                return Err(ChainError::PrevHashMismatch { number });
            }
            match block.kind() {
                BlockKind::Summary => {
                    if block.timestamp() != prev_block.timestamp() {
                        return Err(ChainError::SummaryTimestampMismatch { number });
                    }
                }
                _ => {
                    if block.timestamp() < prev_block.timestamp() {
                        return Err(ChainError::TimestampRegression { number });
                    }
                }
            }
        }

        if opts.verify_entry_signatures {
            for (i, entry) in block.entries().iter().enumerate() {
                entry
                    .verify()
                    .map_err(|source| ChainError::EntrySignatureInvalid {
                        block: number,
                        entry: i as u32,
                        source,
                    })?;
                report.entries_verified += 1;
            }
        }
        if opts.verify_summary_records {
            for record in block.summary_records() {
                record
                    .verify()
                    .map_err(|source| ChainError::RecordSignatureInvalid {
                        block: number,
                        origin: record.origin(),
                        source,
                    })?;
                report.records_verified += 1;
            }
        }
        if opts.verify_anchors {
            if let Some(anchor) = block.anchor() {
                // Anchors over pruned ranges cannot be re-derived; only
                // check those still fully live.
                if chain.get(anchor.start).is_some() && chain.get(anchor.end).is_some() {
                    if !verify_anchor(chain, anchor) {
                        return Err(ChainError::AnchorMismatch { block: number });
                    }
                    report.anchors_verified += 1;
                }
            }
        }

        report.blocks_checked += 1;
        prev = Some(sealed);
    }

    Ok(report)
}

/// Recomputes an anchor's Merkle root from live block hashes.
///
/// Returns `false` when the range is not live or the root mismatches.
pub fn verify_anchor<S: BlockStore>(chain: &Blockchain<S>, anchor: &Anchor) -> bool {
    let Some(hashes) = chain.block_hashes(anchor.start, anchor.end) else {
        return false;
    };
    let tree = MerkleTree::from_leaf_hashes(hashes);
    tree.root() == anchor.merkle_root
}

/// Builds a Fig. 9 anchor over a live block range.
///
/// Returns `None` when the range is not fully live.
pub fn build_anchor<S: BlockStore>(
    chain: &Blockchain<S>,
    start: BlockNumber,
    end: BlockNumber,
) -> Option<Anchor> {
    let hashes = chain.block_hashes(start, end)?;
    let tree = MerkleTree::from_leaf_hashes(hashes);
    Some(Anchor::new(start, end, tree.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBody, Seal};
    use crate::entry::Entry;
    use crate::types::Timestamp;
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn chain(n: u64) -> Blockchain {
        let key = SigningKey::from_seed([1u8; 32]);
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        for i in 1..=n {
            let prev = chain.tip().hash();
            chain
                .push(Block::new(
                    BlockNumber(i),
                    Timestamp(i * 10),
                    prev,
                    BlockBody::Normal {
                        entries: vec![Entry::sign_data(&key, DataRecord::new("x").with("n", i))],
                    },
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        chain
    }

    #[test]
    fn valid_chain_passes_full_validation() {
        let c = chain(6);
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.blocks_checked, 7);
        assert_eq!(report.entries_verified, 6);
    }

    #[test]
    fn structural_only_skips_signatures() {
        let c = chain(3);
        let report = validate_chain(&c, &ValidationOptions::structural()).unwrap();
        assert_eq!(report.blocks_checked, 4);
        assert_eq!(report.entries_verified, 0);
    }

    #[test]
    fn validation_starts_at_marker_after_pruning() {
        let mut c = chain(6);
        c.truncate_front(BlockNumber(3)).unwrap();
        // First live block's prev_hash points at a pruned block — validation
        // must still pass (trust anchor semantics).
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.blocks_checked, 4);
    }

    #[test]
    fn anchor_build_and_verify() {
        let c = chain(8);
        let anchor = build_anchor(&c, BlockNumber(2), BlockNumber(5)).unwrap();
        assert!(verify_anchor(&c, &anchor));
        // Tamper with the root.
        let bad = Anchor::new(anchor.start, anchor.end, seldel_crypto::sha256(b"bad"));
        assert!(!verify_anchor(&c, &bad));
        // Range not live.
        assert!(build_anchor(&c, BlockNumber(7), BlockNumber(12)).is_none());
    }

    #[test]
    fn anchored_summary_block_validates() {
        let mut c = chain(6);
        let anchor = build_anchor(&c, BlockNumber(2), BlockNumber(4)).unwrap();
        let prev = c.tip().hash();
        let ts = c.tip().timestamp();
        c.push(Block::new(
            BlockNumber(7),
            ts,
            prev,
            BlockBody::Summary {
                records: vec![],
                anchor: Some(anchor),
            },
            Seal::Deterministic,
        ))
        .unwrap();
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.anchors_verified, 1);
    }

    #[test]
    fn corrupted_anchor_fails_validation() {
        let mut c = chain(6);
        let anchor = Anchor::new(BlockNumber(2), BlockNumber(4), seldel_crypto::sha256(b"no"));
        let prev = c.tip().hash();
        let ts = c.tip().timestamp();
        c.push(Block::new(
            BlockNumber(7),
            ts,
            prev,
            BlockBody::Summary {
                records: vec![],
                anchor: Some(anchor),
            },
            Seal::Deterministic,
        ))
        .unwrap();
        assert!(matches!(
            validate_chain(&c, &ValidationOptions::default()),
            Err(ChainError::AnchorMismatch { .. })
        ));
    }
}

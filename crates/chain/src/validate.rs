//! Structural and cryptographic chain validation.
//!
//! §V-B3 of the paper: nodes "only accept a blockchain which is traceable
//! from its current status quo" — validation therefore starts at the live
//! marker, never at the original block 0 (which may be long pruned). The
//! first live block's `prev_hash` is the quorum-attested trust anchor and
//! is not checked against anything.

use seldel_crypto::MerkleTree;

use crate::block::BlockKind;
use crate::chain::Blockchain;
use crate::error::ChainError;
use crate::store::{BlockRef, BlockStore};
use crate::summary::Anchor;
use crate::types::BlockNumber;

/// What to verify beyond pure structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// Verify every entry's author signature.
    pub verify_entry_signatures: bool,
    /// Verify the carried signatures inside summary records.
    pub verify_summary_records: bool,
    /// Verify Fig. 9 anchors whose ranges are still live.
    pub verify_anchors: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            verify_entry_signatures: true,
            verify_summary_records: true,
            verify_anchors: true,
        }
    }
}

impl ValidationOptions {
    /// Structure-only validation (hash links, numbering, timestamps).
    pub fn structural() -> ValidationOptions {
        ValidationOptions {
            verify_entry_signatures: false,
            verify_summary_records: false,
            verify_anchors: false,
        }
    }
}

/// Counters describing a completed validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Blocks checked.
    pub blocks_checked: u64,
    /// Entry signatures verified.
    pub entries_verified: u64,
    /// Summary-record signatures verified.
    pub records_verified: u64,
    /// Anchors verified against live history.
    pub anchors_verified: u64,
}

/// Counters describing a completed [`validate_incremental`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalReport {
    /// Blocks checked.
    pub blocks_checked: u64,
    /// Blocks whose payload commitment was checked against the cached
    /// seal-time root (no body re-hash).
    pub roots_cached: u64,
    /// Blocks whose root was absent from the seal cache (legacy stores)
    /// and had to be re-derived from the body.
    pub roots_recomputed: u64,
}

/// Validates the live chain from the marker to the tip.
///
/// Hash-link checks read the per-block digest cache (computed once when
/// each block entered the store); payload commitments are still re-derived
/// from the bodies, so tampering with a stored body is caught regardless.
///
/// # Errors
///
/// Returns the first violation found, as a [`ChainError`].
pub fn validate_chain<S: BlockStore>(
    chain: &Blockchain<S>,
    opts: &ValidationOptions,
) -> Result<ValidationReport, ChainError> {
    let mut report = ValidationReport::default();
    let mut prev: Option<BlockRef<'_>> = None;

    for sealed in chain.iter_sealed() {
        let block = sealed.block();
        let number = block.number();

        if !block.is_payload_consistent() {
            return Err(ChainError::PayloadMismatch { number });
        }
        if block.kind() == BlockKind::Genesis && number != BlockNumber::GENESIS {
            return Err(ChainError::GenesisMisplaced { number });
        }
        if !block.tombstones_sorted() {
            return Err(ChainError::TombstonesUnsorted { number });
        }

        if let Some(prev_sealed) = &prev {
            let prev_block = prev_sealed.block();
            if number != prev_block.number().next() {
                return Err(ChainError::NonContiguousNumber {
                    expected: prev_block.number().next(),
                    found: number,
                });
            }
            if block.header().prev_hash != prev_sealed.hash() {
                return Err(ChainError::PrevHashMismatch { number });
            }
            match block.kind() {
                BlockKind::Summary => {
                    if block.timestamp() != prev_block.timestamp() {
                        return Err(ChainError::SummaryTimestampMismatch { number });
                    }
                }
                _ => {
                    if block.timestamp() < prev_block.timestamp() {
                        return Err(ChainError::TimestampRegression { number });
                    }
                }
            }
        }

        if opts.verify_entry_signatures {
            for (i, entry) in block.entries().iter().enumerate() {
                entry
                    .verify()
                    .map_err(|source| ChainError::EntrySignatureInvalid {
                        block: number,
                        entry: i as u32,
                        source,
                    })?;
                report.entries_verified += 1;
            }
        }
        if opts.verify_summary_records {
            for record in block.summary_records() {
                record
                    .verify()
                    .map_err(|source| ChainError::RecordSignatureInvalid {
                        block: number,
                        origin: record.origin(),
                        source,
                    })?;
                report.records_verified += 1;
            }
        }
        if opts.verify_anchors {
            if let Some(anchor) = block.anchor() {
                // Anchors over pruned ranges cannot be re-derived; only
                // check those still fully live.
                if chain.get(anchor.start).is_some() && chain.get(anchor.end).is_some() {
                    if !verify_anchor(chain, anchor) {
                        return Err(ChainError::AnchorMismatch { block: number });
                    }
                    report.anchors_verified += 1;
                }
            }
        }

        report.blocks_checked += 1;
        prev = Some(sealed);
    }

    Ok(report)
}

/// Full validation with the default options — the expensive auditor pass
/// (`validate_chain` re-hashing every payload and verifying every
/// signature) the incremental pass is benchmarked against.
///
/// # Errors
///
/// Same as [`validate_chain`].
pub fn validate_full<S: BlockStore>(chain: &Blockchain<S>) -> Result<ValidationReport, ChainError> {
    validate_chain(chain, &ValidationOptions::default())
}

/// Incremental validation over the cached seal-time commitments.
///
/// Where [`validate_chain`] re-derives every payload root from the body
/// (hashing every entry and record again), this pass compares each sealed
/// block's **cached** payload root — computed once when the block entered
/// the store, whether by live push or durable replay — against the header
/// commitment, and checks linkage through the cached header digests. Only
/// blocks whose root is absent from the cache (legacy stores,
/// [`crate::store::SealedBlock::seal_header_only`]) fall back to a full
/// body re-hash,
/// counted in [`IncrementalReport::roots_recomputed`].
///
/// This is sound because the cached root is derived from the bytes the
/// store actually holds: a durable backend re-hashes what it *decoded*
/// from disk on replay, so a tampered stored body yields a root that no
/// longer matches the header and the offending block is flagged exactly.
/// Signatures and anchors are **not** re-verified — they were checked when
/// the chain was built; this is the cheap always-on structural audit
/// (§V-B3's joining-node check made sublinear in payload size).
///
/// # Errors
///
/// Returns the first violation found, as a [`ChainError`] naming the
/// offending block.
pub fn validate_incremental<S: BlockStore>(
    chain: &Blockchain<S>,
) -> Result<IncrementalReport, ChainError> {
    validate_store_incremental(chain.store())
}

/// [`validate_incremental`] over a raw store — the form tamper audits use
/// when the store may be too damaged for chain reconstruction to accept.
///
/// # Errors
///
/// Same as [`validate_incremental`].
pub fn validate_store_incremental<S: BlockStore>(
    store: &S,
) -> Result<IncrementalReport, ChainError> {
    let _span = seldel_telemetry::span!("chain.validate_incremental");
    let mut report = IncrementalReport::default();
    let mut prev: Option<BlockRef<'_>> = None;

    for sealed in store.iter() {
        let block = sealed.block();
        let number = block.number();

        if sealed.payload_root().is_some() {
            report.roots_cached += 1;
        } else {
            report.roots_recomputed += 1;
        }
        if !sealed.is_payload_consistent() {
            return Err(ChainError::PayloadMismatch { number });
        }
        if block.kind() == BlockKind::Genesis && number != BlockNumber::GENESIS {
            return Err(ChainError::GenesisMisplaced { number });
        }
        if !block.tombstones_sorted() {
            return Err(ChainError::TombstonesUnsorted { number });
        }

        if let Some(prev_sealed) = &prev {
            let prev_block = prev_sealed.block();
            if number != prev_block.number().next() {
                return Err(ChainError::NonContiguousNumber {
                    expected: prev_block.number().next(),
                    found: number,
                });
            }
            if block.header().prev_hash != prev_sealed.hash() {
                return Err(ChainError::PrevHashMismatch { number });
            }
            match block.kind() {
                BlockKind::Summary => {
                    if block.timestamp() != prev_block.timestamp() {
                        return Err(ChainError::SummaryTimestampMismatch { number });
                    }
                }
                _ => {
                    if block.timestamp() < prev_block.timestamp() {
                        return Err(ChainError::TimestampRegression { number });
                    }
                }
            }
        }

        report.blocks_checked += 1;
        prev = Some(sealed);
    }

    if report.blocks_checked == 0 {
        return Err(ChainError::EmptyChain);
    }
    Ok(report)
}

/// Recomputes an anchor's Merkle root from live block hashes.
///
/// Returns `false` when the range is not live or the root mismatches.
pub fn verify_anchor<S: BlockStore>(chain: &Blockchain<S>, anchor: &Anchor) -> bool {
    let Some(hashes) = chain.block_hashes(anchor.start, anchor.end) else {
        return false;
    };
    let tree = MerkleTree::from_leaf_hashes(hashes);
    tree.root() == anchor.merkle_root
}

/// Builds a Fig. 9 anchor over a live block range.
///
/// Returns `None` when the range is not fully live.
pub fn build_anchor<S: BlockStore>(
    chain: &Blockchain<S>,
    start: BlockNumber,
    end: BlockNumber,
) -> Option<Anchor> {
    let hashes = chain.block_hashes(start, end)?;
    let tree = MerkleTree::from_leaf_hashes(hashes);
    Some(Anchor::new(start, end, tree.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBody, Seal};
    use crate::entry::Entry;
    use crate::types::{EntryId, EntryNumber, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn chain(n: u64) -> Blockchain {
        let key = SigningKey::from_seed([1u8; 32]);
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        for i in 1..=n {
            let prev = chain.tip().hash();
            chain
                .push(Block::new(
                    BlockNumber(i),
                    Timestamp(i * 10),
                    prev,
                    BlockBody::Normal {
                        entries: vec![Entry::sign_data(&key, DataRecord::new("x").with("n", i))],
                    },
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        chain
    }

    #[test]
    fn valid_chain_passes_full_validation() {
        let c = chain(6);
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.blocks_checked, 7);
        assert_eq!(report.entries_verified, 6);
    }

    #[test]
    fn structural_only_skips_signatures() {
        let c = chain(3);
        let report = validate_chain(&c, &ValidationOptions::structural()).unwrap();
        assert_eq!(report.blocks_checked, 4);
        assert_eq!(report.entries_verified, 0);
    }

    #[test]
    fn validation_starts_at_marker_after_pruning() {
        let mut c = chain(6);
        c.truncate_front(BlockNumber(3)).unwrap();
        // First live block's prev_hash points at a pruned block — validation
        // must still pass (trust anchor semantics).
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.blocks_checked, 4);
    }

    #[test]
    fn anchor_build_and_verify() {
        let c = chain(8);
        let anchor = build_anchor(&c, BlockNumber(2), BlockNumber(5)).unwrap();
        assert!(verify_anchor(&c, &anchor));
        // Tamper with the root.
        let bad = Anchor::new(anchor.start, anchor.end, seldel_crypto::sha256(b"bad"));
        assert!(!verify_anchor(&c, &bad));
        // Range not live.
        assert!(build_anchor(&c, BlockNumber(7), BlockNumber(12)).is_none());
    }

    #[test]
    fn anchored_summary_block_validates() {
        let mut c = chain(6);
        let anchor = build_anchor(&c, BlockNumber(2), BlockNumber(4)).unwrap();
        let prev = c.tip().hash();
        let ts = c.tip().timestamp();
        c.push(Block::new(
            BlockNumber(7),
            ts,
            prev,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: Some(anchor),
            },
            Seal::Deterministic,
        ))
        .unwrap();
        let report = validate_chain(&c, &ValidationOptions::default()).unwrap();
        assert_eq!(report.anchors_verified, 1);
    }

    #[test]
    fn incremental_uses_cached_roots_only() {
        let c = chain(6);
        let report = validate_incremental(&c).unwrap();
        assert_eq!(report.blocks_checked, 7);
        assert_eq!(report.roots_cached, 7);
        assert_eq!(report.roots_recomputed, 0);
    }

    #[test]
    fn incremental_matches_full_verdict_after_pruning() {
        let mut c = chain(6);
        c.truncate_front(BlockNumber(3)).unwrap();
        let report = validate_incremental(&c).unwrap();
        assert_eq!(report.blocks_checked, 4);
        assert!(validate_full(&c).is_ok());
    }

    #[test]
    fn incremental_recomputes_rootless_legacy_blocks() {
        // A store populated through seal_header_only has no cached roots
        // (the legacy pre-commitment-cache layout): the incremental pass
        // must fall back to a body re-hash and still accept the chain.
        let c = chain(3);
        let mut store = crate::store::MemStore::default();
        for sealed in c.iter_sealed() {
            store.push(crate::store::SealedBlock::seal_header_only(
                sealed.block().clone(),
            ));
        }
        let report = validate_store_incremental(&store).unwrap();
        assert_eq!(report.blocks_checked, 4);
        assert_eq!(report.roots_cached, 0);
        assert_eq!(report.roots_recomputed, 4);
    }

    #[test]
    fn incremental_flags_exact_tampered_block() {
        // Swap block 2's body while keeping its header: the cached root
        // (derived from the bytes the store holds) no longer matches the
        // header commitment, and the report names block 2 — not a later
        // casualty of the broken linkage.
        let c = chain(4);
        let key = SigningKey::from_seed([9u8; 32]);
        let mut store = crate::store::MemStore::default();
        for sealed in c.iter_sealed() {
            if sealed.block().number() == BlockNumber(2) {
                let forged = Block::from_parts(
                    sealed.block().header().clone(),
                    BlockBody::Normal {
                        entries: vec![Entry::sign_data(&key, DataRecord::new("forged"))],
                    },
                );
                store.push(crate::store::SealedBlock::seal(forged));
            } else {
                store.push(sealed.into_sealed());
            }
        }
        assert_eq!(
            validate_store_incremental(&store),
            Err(ChainError::PayloadMismatch {
                number: BlockNumber(2)
            })
        );
    }

    #[test]
    fn incremental_rejects_unsorted_tombstones() {
        let c = chain(2);
        let prev = c.tip().hash();
        let ts = c.tip().timestamp();
        // Block::new derives a (valid) commitment over the unsorted list,
        // so only the canonical-order rule can reject it.
        let rogue = Block::new(
            BlockNumber(3),
            ts,
            prev,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![
                    EntryId::new(BlockNumber(2), EntryNumber(0)),
                    EntryId::new(BlockNumber(1), EntryNumber(0)),
                ],
                anchor: None,
            },
            Seal::Deterministic,
        );
        let mut store: crate::store::MemStore = c.store().clone();
        store.push(crate::store::SealedBlock::seal(rogue));
        assert_eq!(
            validate_store_incremental(&store),
            Err(ChainError::TombstonesUnsorted {
                number: BlockNumber(3)
            })
        );
    }

    #[test]
    fn corrupted_anchor_fails_validation() {
        let mut c = chain(6);
        let anchor = Anchor::new(BlockNumber(2), BlockNumber(4), seldel_crypto::sha256(b"no"));
        let prev = c.tip().hash();
        let ts = c.tip().timestamp();
        c.push(Block::new(
            BlockNumber(7),
            ts,
            prev,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: Some(anchor),
            },
            Seal::Deterministic,
        ))
        .unwrap();
        assert!(matches!(
            validate_chain(&c, &ValidationOptions::default()),
            Err(ChainError::AnchorMismatch { .. })
        ));
    }
}

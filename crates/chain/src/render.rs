//! Console rendering of the chain in the paper's Figs. 6–8 format.
//!
//! "To visualize the blockchain, the entries are listed line by line. Each
//! block has the following header structure: block number; timestamp;
//! previous block hash; own block hash; optional data entry. An data entry
//! is structured as follows: D stores data record; K holds the user; S
//! poses as signature (here simplified). … blocks starting with S are the
//! summary blocks." (§V)

use seldel_crypto::VerifyingKey;

use crate::block::{Block, BlockBody, BlockKind};
use crate::chain::Blockchain;
use crate::entry::EntryPayload;

/// Resolves author keys to display names (the paper prints ALPHA/BRAVO/
/// CHARLIE instead of raw keys).
pub trait NameResolver {
    /// Returns the display name for a key, or `None` to fall back to the
    /// abbreviated key.
    fn resolve(&self, key: &VerifyingKey) -> Option<String>;
}

/// Resolver that always falls back to abbreviated keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNames;

impl NameResolver for NoNames {
    fn resolve(&self, _key: &VerifyingKey) -> Option<String> {
        None
    }
}

impl<F> NameResolver for F
where
    F: Fn(&VerifyingKey) -> Option<String>,
{
    fn resolve(&self, key: &VerifyingKey) -> Option<String> {
        self(key)
    }
}

fn display_user(names: &impl NameResolver, key: &VerifyingKey) -> String {
    names.resolve(key).unwrap_or_else(|| key.short())
}

/// Renders one block in the console format.
pub fn render_block(block: &Block, names: &impl NameResolver) -> String {
    let mut out = String::new();
    let prefix = if block.kind() == BlockKind::Summary {
        "S"
    } else {
        ""
    };
    out.push_str(&format!(
        "{prefix}{}; {}; {}; {}",
        block.number(),
        block.timestamp(),
        block.header().prev_hash.short(),
        block.hash().short(),
    ));

    match block.body() {
        BlockBody::Genesis { note } => {
            out.push_str(&format!("; GENESIS {note}"));
        }
        BlockBody::Empty => {
            out.push_str("; (empty block)");
        }
        BlockBody::Normal { entries } => {
            if entries.is_empty() {
                out.push_str("; (no entries)");
            }
            for (i, entry) in entries.iter().enumerate() {
                let user = display_user(names, &entry.author());
                let sig = entry.signature().to_hex()[..5].to_uppercase();
                match entry.payload() {
                    EntryPayload::Data(record) => {
                        out.push_str(&format!("\n  {i}: D {record} K {user} S {sig}"));
                        if let Some(expiry) = entry.expiry() {
                            out.push_str(&format!(" T {expiry}"));
                        }
                    }
                    EntryPayload::Delete(req) => {
                        out.push_str(&format!("\n  {i}: DEL {} K {user} S {sig}", req.target()));
                    }
                }
            }
        }
        BlockBody::Summary {
            records,
            deletions,
            anchor,
        } => {
            if records.is_empty() {
                out.push_str("; (empty)");
            }
            for record in records {
                let user = display_user(names, &record.author());
                let sig = record.signature().to_hex()[..5].to_uppercase();
                out.push_str(&format!(
                    "\n  {}@τ{}: D {} K {user} S {sig}",
                    record.origin(),
                    record.origin_timestamp(),
                    record.record(),
                ));
                if let Some(expiry) = record.expiry() {
                    out.push_str(&format!(" T {expiry}"));
                }
            }
            if !deletions.is_empty() {
                let ids: Vec<String> = deletions.iter().map(|id| id.to_string()).collect();
                out.push_str(&format!("\n  deleted: {}", ids.join(", ")));
            }
            if let Some(anchor) = anchor {
                out.push_str(&format!("\n  {anchor}"));
            }
        }
    }
    out
}

/// Renders the whole live chain, one block per paragraph, with the marker
/// line on top (Fig. 7: "The maker for the Genesis Block is changed to
/// block number 6").
pub fn render_chain<S: crate::store::BlockStore>(
    chain: &Blockchain<S>,
    names: &impl NameResolver,
) -> String {
    let mut out = format!("marker m = {}\n", chain.marker());
    for block in chain.iter() {
        out.push_str(&render_block(block.block(), names));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Seal;
    use crate::entry::{DeleteRequest, Entry};
    use crate::types::{BlockNumber, EntryId, EntryNumber, Expiry, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn alpha() -> SigningKey {
        SigningKey::from_seed([0xA1; 32])
    }

    fn names(key: &VerifyingKey) -> Option<String> {
        if *key == alpha().verifying_key() {
            Some("ALPHA".to_string())
        } else {
            None
        }
    }

    fn demo_chain() -> Blockchain {
        let mut chain = Blockchain::new(Block::genesis("audit-chain", Timestamp(0)));
        let entries = vec![
            Entry::sign_data(&alpha(), DataRecord::new("login").with("user", "ALPHA")),
            Entry::sign_delete(
                &alpha(),
                DeleteRequest::new(EntryId::new(BlockNumber(1), EntryNumber(0)), ""),
            ),
            Entry::sign_data_with(
                &alpha(),
                DataRecord::new("log").with("msg", "tmp"),
                Some(Expiry::AtTimestamp(Timestamp(8888))),
                vec![],
            ),
        ];
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(1),
                Timestamp(10),
                prev,
                crate::block::BlockBody::Normal { entries },
                Seal::Deterministic,
            ))
            .unwrap();
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(2),
                Timestamp(10),
                prev,
                crate::block::BlockBody::Summary {
                    records: vec![],
                    deletions: vec![],
                    anchor: None,
                },
                Seal::Deterministic,
            ))
            .unwrap();
        chain
    }

    #[test]
    fn genesis_line_shows_deadb() {
        let chain = demo_chain();
        let rendered = render_chain(&chain, &names);
        assert!(rendered.contains("0; 0; DEADB; "), "{rendered}");
        assert!(rendered.starts_with("marker m = 0\n"));
    }

    #[test]
    fn entries_rendered_with_d_k_s() {
        let rendered = render_chain(&demo_chain(), &names);
        assert!(
            rendered.contains("0: D login{user=ALPHA} K ALPHA S "),
            "{rendered}"
        );
        assert!(rendered.contains("1: DEL 1:0 K ALPHA S "), "{rendered}");
        assert!(rendered.contains(" T τ8888"), "{rendered}");
    }

    #[test]
    fn summary_block_prefixed_with_s() {
        let rendered = render_chain(&demo_chain(), &names);
        assert!(rendered.contains("\nS2; 10; "), "{rendered}");
        assert!(rendered.contains("(empty)"), "{rendered}");
    }

    #[test]
    fn unknown_keys_fall_back_to_short_form() {
        let rendered = render_chain(&demo_chain(), &NoNames);
        assert!(!rendered.contains("ALPHA S"), "{rendered}");
    }
}

//! Pluggable block storage for the live chain β.
//!
//! [`Blockchain`](crate::chain::Blockchain) is generic over a
//! [`BlockStore`]: the ordered container holding the live blocks between
//! the shifting genesis marker `m` and the tip. Two backends ship with the
//! crate:
//!
//! * [`MemStore`] — a plain `VecDeque`, the historical behaviour and the
//!   default type parameter;
//! * [`SegStore`] — an append-only segmented store. Blocks are written
//!   into fixed-size segments that are never mutated after being filled;
//!   pruning the front (the §IV-C physical deletion step) advances a
//!   cursor and drops whole retired segments. This is the in-memory shape
//!   of a file-backed log (one segment per file) and the stepping stone to
//!   durable storage.
//!
//! Stores hold [`SealedBlock`]s, not raw [`Block`]s: a sealed block pairs
//! the immutable block with its digest, computed **once** when the block
//! enters the store. Every later consumer — validation, summary
//! derivation, Σ-hash sync checks, anchor building — reads the cached
//! digest instead of re-encoding and re-hashing the block.

use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::Arc;

use seldel_crypto::Digest32;

use crate::block::{Block, BlockHeader, BlockKind};
use crate::entry::Entry;
use crate::summary::SummaryRecord;
use crate::types::{BlockNumber, EntryId, Timestamp};

/// A block plus its digest and payload Merkle root, computed once when the
/// block was stored.
///
/// Blocks are immutable after sealing (the chain never mutates a stored
/// block; it only appends and prunes), so the cached digests can never go
/// stale. Equality compares the block only — the digests are derived
/// state.
///
/// The cached payload root is what makes
/// [`validate_incremental`](crate::validate::validate_incremental) cheap:
/// the body was hashed when it entered the store (live push or durable
/// replay), so later validation passes compare the cached root against the
/// header commitment instead of re-hashing every entry. The root is an
/// `Option` because sealed blocks can come from sources that never hashed
/// the body ([`SealedBlock::seal_header_only`], legacy stores); those fall
/// back to a full re-hash when checked.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    block: Block,
    hash: Digest32,
    payload_root: Option<Digest32>,
}

impl SealedBlock {
    /// Seals a block, computing its header digest and payload root exactly
    /// once.
    pub fn seal(block: Block) -> SealedBlock {
        let hash = block.hash();
        let payload_root = Some(block.body().payload_hash());
        SealedBlock {
            block,
            hash,
            payload_root,
        }
    }

    /// Seals a block without hashing its body — the shape of a sealed
    /// block recovered from a store predating payload-root caching. Checks
    /// against such a block re-derive the root from the body.
    pub fn seal_header_only(block: Block) -> SealedBlock {
        let hash = block.hash();
        SealedBlock {
            block,
            hash,
            payload_root: None,
        }
    }

    /// Reassembles a sealed block from digests computed earlier — the
    /// paged [`FileStore`](crate::fstore::FileStore) read path, which
    /// stores the digests in its frame table and must not re-hash a block
    /// every time it is materialised from disk. The caller vouches that
    /// `hash`/`payload_root` were derived from exactly this block (the
    /// durable store covers them with a per-frame checksum).
    pub(crate) fn from_parts(
        block: Block,
        hash: Digest32,
        payload_root: Option<Digest32>,
    ) -> SealedBlock {
        SealedBlock {
            block,
            hash,
            payload_root,
        }
    }

    /// The block.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The cached block digest.
    pub fn hash(&self) -> Digest32 {
        self.hash
    }

    /// The cached payload Merkle root, when the body was hashed at seal
    /// time.
    pub fn payload_root(&self) -> Option<Digest32> {
        self.payload_root
    }

    /// Whether the header's payload commitment and kind match the body —
    /// [`Block::is_payload_consistent`] served from the cached root when
    /// one exists, re-deriving it from the body otherwise.
    pub fn is_payload_consistent(&self) -> bool {
        match self.payload_root {
            Some(root) => {
                self.block.header().kind == self.block.body().kind()
                    && self.block.header().payload_hash == root
            }
            None => self.block.is_payload_consistent(),
        }
    }

    /// Unwraps the block, discarding the cached digests.
    pub fn into_block(self) -> Block {
        self.block
    }

    // Block accessors delegated onto the sealed wrapper, so code holding a
    // [`BlockRef`] (or a `&SealedBlock`) reads like code holding a
    // `&Block`. `hash()` intentionally shadows [`Block::hash`] with the
    // cached digest — same value, no re-hash.

    /// Block number α ([`Block::number`]).
    pub fn number(&self) -> BlockNumber {
        self.block.number()
    }

    /// Timestamp τ ([`Block::timestamp`]).
    pub fn timestamp(&self) -> Timestamp {
        self.block.timestamp()
    }

    /// Block kind ([`Block::kind`]).
    pub fn kind(&self) -> BlockKind {
        self.block.kind()
    }

    /// The header ([`Block::header`]).
    pub fn header(&self) -> &BlockHeader {
        self.block.header()
    }

    /// The body ([`Block::body`]).
    pub fn body(&self) -> &crate::block::BlockBody {
        self.block.body()
    }

    /// Entries of a normal block ([`Block::entries`]).
    pub fn entries(&self) -> &[Entry] {
        self.block.entries()
    }

    /// The embedded Merkle anchor, if any ([`Block::anchor`]).
    pub fn anchor(&self) -> Option<&crate::summary::Anchor> {
        self.block.anchor()
    }

    /// Carried records of a summary block ([`Block::summary_records`]).
    pub fn summary_records(&self) -> &[SummaryRecord] {
        self.block.summary_records()
    }

    /// Deletion tombstones of a summary block ([`Block::deletions`]).
    pub fn deletions(&self) -> &[EntryId] {
        self.block.deletions()
    }

    /// Canonical encoded size ([`Block::byte_size`]).
    pub fn byte_size(&self) -> usize {
        self.block.byte_size()
    }
}

impl PartialEq for SealedBlock {
    fn eq(&self, other: &Self) -> bool {
        // The digest is a pure function of the block; comparing it again
        // would be redundant.
        self.block == other.block
    }
}

impl Eq for SealedBlock {}

/// A guarded reference to a stored block — what [`BlockStore::get`] and
/// [`BlockStore::iter`] hand out.
///
/// Fully resident backends ([`MemStore`], [`SegStore`], unrooted
/// `FileStore`) lend plain borrows; the paged, disk-rooted
/// [`FileStore`](crate::fstore::FileStore) materialises cold blocks from
/// its segment files and hands out shared ownership of the cached copy
/// instead — a `&SealedBlock` into the store would require the block to
/// be resident for the store's whole lifetime, which is exactly what
/// paging exists to avoid. `Deref` makes both shapes read as a
/// `&SealedBlock` (and, through the sealed wrapper's delegates, mostly
/// like a `&Block`).
#[derive(Debug, Clone)]
pub enum BlockRef<'a> {
    /// Borrowed straight out of a resident store.
    Borrowed(&'a SealedBlock),
    /// Shared ownership of a block materialised by a paged backend.
    Shared(Arc<SealedBlock>),
}

impl Deref for BlockRef<'_> {
    type Target = SealedBlock;

    fn deref(&self) -> &SealedBlock {
        match self {
            BlockRef::Borrowed(sealed) => sealed,
            BlockRef::Shared(sealed) => sealed,
        }
    }
}

impl BlockRef<'_> {
    /// Converts the guard into an owned [`SealedBlock`], cloning only when
    /// the underlying block is still shared.
    pub fn into_sealed(self) -> SealedBlock {
        match self {
            BlockRef::Borrowed(sealed) => sealed.clone(),
            BlockRef::Shared(sealed) => {
                Arc::try_unwrap(sealed).unwrap_or_else(|shared| (*shared).clone())
            }
        }
    }
}

impl PartialEq for BlockRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for BlockRef<'_> {}

/// Ordered storage for the live blocks of a chain.
///
/// Index 0 is the oldest live block (the marker block); `len() - 1` is the
/// tip. Implementations must behave like a deque of [`SealedBlock`]s:
/// `push` appends at the back, `drain_front` removes from the front.
/// Logical equality (same blocks in the same order) must hold regardless
/// of internal layout, because [`Blockchain`](crate::chain::Blockchain)
/// derives its own `PartialEq` from the store's.
///
/// Stores are `Send + Sync`: the shard subsystem replays segments into
/// index shards concurrently and answers batched lookups shard-parallel,
/// both of which share `&Store` across scoped threads. Mutation stays
/// exclusive (`&mut self`), so implementations need no interior locking.
pub trait BlockStore:
    Default + Clone + PartialEq + Eq + std::fmt::Debug + Send + Sync + 'static
{
    /// Iterator over stored blocks, oldest first. Items are guards, not
    /// borrows: a paged backend materialises each block as the iterator
    /// reaches it, so consumers that need the predecessor (linkage walks)
    /// hold on to the previous guard instead of a store borrow.
    type Iter<'a>: Iterator<Item = BlockRef<'a>> + 'a
    where
        Self: 'a;

    /// Appends a sealed block at the back.
    fn push(&mut self, block: SealedBlock);

    /// The block at `index` (0 = oldest live).
    fn get(&self, index: usize) -> Option<BlockRef<'_>>;

    /// Number of stored blocks.
    fn len(&self) -> usize;

    /// Removes the first `count` blocks and returns them oldest-first.
    ///
    /// `count` is **clamped** to [`BlockStore::len`]: asking for more
    /// blocks than the store holds empties it and returns everything,
    /// never panics. This is part of the trait contract (it used to be
    /// backend-defined) and every backend pins it with a unit test.
    fn drain_front(&mut self, count: usize) -> Vec<SealedBlock>;

    /// Iterates stored blocks oldest-first.
    fn iter(&self) -> Self::Iter<'_>;

    /// Empties the store, keeping its identity (for file-backed stores:
    /// the root directory) so it can be refilled in place. The default
    /// simply swaps in `Self::default()`; stores with external state
    /// override this.
    fn reset(&mut self) {
        *self = Self::default();
    }

    /// Whether the store holds no blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The oldest stored block.
    fn first(&self) -> Option<BlockRef<'_>> {
        self.get(0)
    }

    /// The newest stored block.
    fn last(&self) -> Option<BlockRef<'_>> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// The cached digest of the block at `index`.
    ///
    /// The default reads the whole block; paged backends override this to
    /// serve the digest straight from their frame table, so hash-only
    /// consumers (anchor ranges, Σ-hash sync checks) never pull a cold
    /// block off disk.
    fn hash_at(&self, index: usize) -> Option<Digest32> {
        self.get(index).map(|sealed| sealed.hash())
    }

    /// The block number of the oldest stored block.
    ///
    /// The chain's shifting marker `m` asks for this on **every**
    /// by-number lookup, so the default (materialise the first block) is
    /// overridden by paged backends to answer from their offset table —
    /// otherwise each `locate` would drag a cold genesis read through the
    /// hot cache and evict a block the workload actually wants.
    fn first_number(&self) -> Option<crate::types::BlockNumber> {
        self.first().map(|sealed| sealed.number())
    }

    /// Approximate bytes of live-block data resident in memory: the whole
    /// chain for in-memory backends, the hot-cache contents for paged
    /// ones. Diagnostics only — the default walks and re-encodes every
    /// block, so call it per measurement, not per operation.
    fn resident_bytes(&self) -> u64 {
        self.iter().map(|sealed| sealed.byte_size() as u64).sum()
    }

    /// The highest block number guaranteed to survive a process crash,
    /// or `None` when nothing is (an empty store).
    ///
    /// In-memory backends have no durability lag — whatever they hold is
    /// as safe as it gets — so the default reports the tip. Durable
    /// backends override this with their real fsync watermark
    /// ([`FileStore::durable_up_to`](crate::fstore::FileStore::durable_up_to)),
    /// which lags the tip while fsyncs are pending. The node layer holds
    /// `NewBlock` broadcasts behind this watermark so replicas never see
    /// a block the leader could lose.
    fn durable_tip(&self) -> Option<crate::types::BlockNumber> {
        self.last().map(|sealed| sealed.number())
    }

    /// Durability barrier: returns only once every stored block would
    /// survive a crash, after which [`BlockStore::durable_tip`] equals
    /// the tip. No-op for in-memory backends. Durable backends that
    /// cannot reach the disk panic, matching their `push` contract.
    fn flush_durable(&mut self) {}

    /// Switches the store into pipelined-commit mode, if it has one:
    /// append-path fsyncs move to a background commit stage and
    /// [`BlockStore::durable_tip`] starts lagging until they complete.
    /// No-op (the default) for backends with no deferred durability.
    fn enable_pipeline(&mut self) {}
}

/// The default in-memory store: a `VecDeque` of sealed blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStore {
    blocks: VecDeque<SealedBlock>,
}

impl BlockStore for MemStore {
    type Iter<'a> = std::iter::Map<
        std::collections::vec_deque::Iter<'a, SealedBlock>,
        fn(&'a SealedBlock) -> BlockRef<'a>,
    >;

    fn push(&mut self, block: SealedBlock) {
        self.blocks.push_back(block);
    }

    fn get(&self, index: usize) -> Option<BlockRef<'_>> {
        self.blocks.get(index).map(BlockRef::Borrowed)
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn drain_front(&mut self, count: usize) -> Vec<SealedBlock> {
        let count = count.min(self.blocks.len());
        self.blocks.drain(..count).collect()
    }

    fn iter(&self) -> Self::Iter<'_> {
        self.blocks.iter().map(BlockRef::Borrowed)
    }
}

/// Number of blocks per [`SegStore`] segment.
///
/// Segments mirror the paper's sequences ω: retirement always cuts whole
/// sequence prefixes, so moderately sized segments retire cleanly without
/// long partial-segment tails.
pub const SEGMENT_CAPACITY: usize = 64;

/// An append-only segmented store.
///
/// Blocks are appended into fixed-capacity segments; the append path never
/// rewrites a filled segment. Pruning moves retired blocks *out* of their
/// slots (physical deletion — the pruned data must not linger in memory,
/// §IV-C), advances `front_skip`, and drops whole exhausted segments, so
/// the store appends at the back and releases at the front — exactly the
/// access pattern of the marker-shift rule (DESIGN.md §Marker-shift
/// rules), and the shape a file-backed segment log would have.
#[derive(Debug, Clone, Default)]
pub struct SegStore {
    /// All live segments; every segment except the last holds exactly
    /// [`SEGMENT_CAPACITY`] slots, so logical index arithmetic stays O(1).
    /// Slots below `front_skip` in the first segment are `None`: their
    /// blocks were handed out by `drain_front` and are physically gone.
    segments: VecDeque<Vec<Option<SealedBlock>>>,
    /// Slots of the front segment already pruned (always < the front
    /// segment's length while the store is non-empty).
    front_skip: usize,
    /// Logical number of live blocks.
    len: usize,
}

impl SegStore {
    /// Physical position of logical `index`: `(segment, offset)`.
    fn position(&self, index: usize) -> (usize, usize) {
        let absolute = self.front_skip + index;
        (absolute / SEGMENT_CAPACITY, absolute % SEGMENT_CAPACITY)
    }

    /// Number of retained segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl PartialEq for SegStore {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: same blocks in the same order, regardless of
        // how pruning left the segment layout.
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for SegStore {}

impl BlockStore for SegStore {
    type Iter<'a> = SegIter<'a>;

    fn push(&mut self, block: SealedBlock) {
        match self.segments.back_mut() {
            Some(segment) if segment.len() < SEGMENT_CAPACITY => segment.push(Some(block)),
            _ => {
                let mut segment = Vec::with_capacity(SEGMENT_CAPACITY);
                segment.push(Some(block));
                self.segments.push_back(segment);
            }
        }
        self.len += 1;
    }

    fn get(&self, index: usize) -> Option<BlockRef<'_>> {
        if index >= self.len {
            return None;
        }
        let (segment, offset) = self.position(index);
        self.segments
            .get(segment)?
            .get(offset)?
            .as_ref()
            .map(BlockRef::Borrowed)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn drain_front(&mut self, count: usize) -> Vec<SealedBlock> {
        let count = count.min(self.len);
        // Physical deletion: the blocks are *moved* out of their slots (the
        // slot becomes None immediately), then the cursor advances and
        // exhausted front segments are dropped whole.
        let removed: Vec<SealedBlock> = (0..count)
            .map(|i| {
                let (segment, offset) = self.position(i);
                self.segments[segment][offset]
                    .take()
                    .expect("live slots hold blocks")
            })
            .collect();
        self.front_skip += count;
        self.len -= count;
        if self.len == 0 {
            self.segments.clear();
            self.front_skip = 0;
        } else {
            while self.front_skip >= SEGMENT_CAPACITY {
                self.segments.pop_front();
                self.front_skip -= SEGMENT_CAPACITY;
            }
        }
        removed
    }

    fn iter(&self) -> Self::Iter<'_> {
        SegIter {
            store: self,
            next: 0,
        }
    }
}

/// Oldest-first iterator over a [`SegStore`].
#[derive(Debug)]
pub struct SegIter<'a> {
    store: &'a SegStore,
    next: usize,
}

impl<'a> Iterator for SegIter<'a> {
    type Item = BlockRef<'a>;

    fn next(&mut self) -> Option<BlockRef<'a>> {
        let item = self.store.get(self.next)?;
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.store.len.saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SegIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, Seal};
    use crate::types::{BlockNumber, Timestamp};

    fn sealed(n: u64) -> SealedBlock {
        SealedBlock::seal(Block::new(
            BlockNumber(n),
            Timestamp(n * 10),
            seldel_crypto::sha256(n.to_le_bytes()),
            BlockBody::Empty,
            Seal::Deterministic,
        ))
    }

    fn drive<S: BlockStore>(pushes: u64, drains: &[usize]) -> S {
        let mut store = S::default();
        let mut drains = drains.iter();
        for next in 0..pushes {
            store.push(sealed(next));
            if let Some(&n) = drains.next() {
                store.drain_front(n.min(store.len().saturating_sub(1)));
            }
        }
        store
    }

    #[test]
    fn sealed_block_caches_the_digest() {
        let s = sealed(7);
        assert_eq!(s.hash(), s.block().hash());
        assert_eq!(s.clone(), s);
    }

    #[test]
    fn mem_and_seg_stores_agree() {
        let mem: MemStore = drive(200, &[3, 10, 0, 60, 7]);
        let seg: SegStore = drive(200, &[3, 10, 0, 60, 7]);
        assert_eq!(mem.len(), seg.len());
        assert!(mem.iter().eq(seg.iter()));
        for i in 0..mem.len() {
            assert_eq!(mem.get(i), seg.get(i));
        }
        assert_eq!(mem.first(), seg.first());
        assert_eq!(mem.last(), seg.last());
    }

    #[test]
    fn seg_store_drops_exhausted_segments() {
        let mut store = SegStore::default();
        for n in 0..(3 * SEGMENT_CAPACITY as u64) {
            store.push(sealed(n));
        }
        assert_eq!(store.segment_count(), 3);
        let removed = store.drain_front(2 * SEGMENT_CAPACITY + 5);
        assert_eq!(removed.len(), 2 * SEGMENT_CAPACITY + 5);
        assert_eq!(removed[0].block().number(), BlockNumber(0));
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.len(), SEGMENT_CAPACITY - 5);
        assert_eq!(
            store.first().unwrap().block().number(),
            BlockNumber(2 * SEGMENT_CAPACITY as u64 + 5)
        );
    }

    #[test]
    fn drained_slots_are_physically_cleared() {
        // §IV-C physical deletion: pruned blocks must not linger in the
        // store's memory behind the cursor.
        let mut store = SegStore::default();
        for n in 0..10 {
            store.push(sealed(n));
        }
        let removed = store.drain_front(4);
        assert_eq!(removed.len(), 4);
        assert!(store.segments[0][..4].iter().all(Option::is_none));
        assert_eq!(store.get(0).unwrap().block().number(), BlockNumber(4));
    }

    #[test]
    fn seg_store_logical_equality_ignores_layout() {
        // Same logical content, different pruning history.
        let mut a = SegStore::default();
        let mut b = SegStore::default();
        for n in 0..10 {
            a.push(sealed(n));
        }
        a.drain_front(4);
        for n in 4..10 {
            b.push(sealed(n));
        }
        assert_eq!(a, b);
        b.push(sealed(10));
        assert_ne!(a, b);
    }

    /// Pins the clamped `drain_front` contract on one backend: draining
    /// more than `len()` empties the store and returns everything.
    fn assert_drain_clamps<S: BlockStore>() {
        let mut store = S::default();
        for n in 0..7 {
            store.push(sealed(n));
        }
        let removed = store.drain_front(1_000);
        assert_eq!(removed.len(), 7);
        assert_eq!(removed[0].block().number(), BlockNumber(0));
        assert_eq!(removed[6].block().number(), BlockNumber(6));
        assert!(store.is_empty());
        // And a drained-empty store accepts new blocks.
        store.push(sealed(7));
        assert_eq!(store.len(), 1);
        assert!(store.drain_front(0).is_empty());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn mem_store_drain_front_clamps() {
        assert_drain_clamps::<MemStore>();
    }

    #[test]
    fn seg_store_drain_front_clamps() {
        assert_drain_clamps::<SegStore>();
    }

    #[test]
    fn file_store_drain_front_clamps() {
        // Unrooted variant here; the rooted variant (with on-disk effects)
        // is pinned in `fstore::tests::drain_front_clamps_beyond_len`.
        assert_drain_clamps::<crate::fstore::FileStore>();
    }

    #[test]
    fn drain_to_empty_resets_cursor() {
        let mut store = SegStore::default();
        for n in 0..5 {
            store.push(sealed(n));
        }
        let removed = store.drain_front(9);
        assert_eq!(removed.len(), 5);
        assert!(store.is_empty());
        store.push(sealed(5));
        assert_eq!(store.get(0).unwrap().block().number(), BlockNumber(5));
        assert_eq!(store.iter().count(), 1);
    }
}

//! Blocks and headers.
//!
//! Four block kinds exist in the selective-deletion design:
//!
//! * **Genesis** — the original first block (Fig. 6 shows it with
//!   predecessor hash `DEADB`).
//! * **Normal** — carries signed entries.
//! * **Summary (Σ)** — the special deterministic block type of §IV-B. It
//!   consists "of deterministic information only", carries the same
//!   timestamp τ as its predecessor, and is created locally by every node.
//! * **Empty** — idle filler blocks (§IV-D3) bounding deletion latency.

use std::fmt;

use seldel_codec::{decode_seq, encode_seq, Codec, DecodeError, Decoder, Encoder};
use seldel_crypto::{Digest32, MerkleTree, Signature, VerifyingKey};

use crate::entry::Entry;
use crate::summary::{Anchor, SummaryRecord};
use crate::types::{BlockNumber, EntryId, Timestamp};

/// Domain separation tag for block hashes.
const BLOCK_HASH_DOMAIN: &[u8] = b"seldel/block/v1";

/// First byte of a carried-record leaf in a summary block's payload tree.
pub const SUMMARY_LEAF_RECORD: u8 = b'R';
/// First byte of a deletion-tombstone leaf in a summary block's payload tree.
pub const SUMMARY_LEAF_TOMBSTONE: u8 = b'T';
/// First byte of the anchor leaf in a summary block's payload tree.
pub const SUMMARY_LEAF_ANCHOR: u8 = b'A';

/// The conventional predecessor hash of the original genesis block.
///
/// The paper's Fig. 6 shows the genesis block with previous hash `DEADB`;
/// this constant renders exactly that via [`Digest32::short`].
pub const GENESIS_PREV_HASH: Digest32 = Digest32::from_bytes([
    0xde, 0xad, 0xb0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
]);

/// Block kinds (discriminants are part of the wire format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// The original first block.
    Genesis,
    /// An ordinary entry-carrying block.
    Normal,
    /// A summary block Σ.
    Summary,
    /// An idle filler block.
    Empty,
}

impl BlockKind {
    const fn tag(self) -> u8 {
        match self {
            BlockKind::Genesis => 0,
            BlockKind::Normal => 1,
            BlockKind::Summary => 2,
            BlockKind::Empty => 3,
        }
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BlockKind::Genesis => "genesis",
            BlockKind::Normal => "normal",
            BlockKind::Summary => "summary",
            BlockKind::Empty => "empty",
        };
        f.write_str(name)
    }
}

impl Codec for BlockKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(BlockKind::Genesis),
            1 => Ok(BlockKind::Normal),
            2 => Ok(BlockKind::Summary),
            3 => Ok(BlockKind::Empty),
            tag => Err(DecodeError::InvalidTag {
                what: "BlockKind",
                tag,
            }),
        }
    }
}

/// The consensus seal of a block.
///
/// The selective-deletion concept is independent of the consensus algorithm
/// (§IV-A); the seal variant reflects whichever engine sealed the block.
/// Summary blocks always carry [`Seal::Deterministic`] — the paper drops the
/// nonce for summarised content ("the nonce and previous hash of a block
/// are not needed anymore") and the block must be derivable by every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seal {
    /// No seal: deterministic blocks (genesis, summary, empty filler).
    Deterministic,
    /// Proof-of-work nonce.
    Nonce(u64),
    /// Proof-of-authority signature over the pre-seal header hash.
    Authority {
        /// The sealing authority.
        signer: VerifyingKey,
        /// Signature over the pre-seal header digest.
        signature: Signature,
    },
}

impl Codec for Seal {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Seal::Deterministic => enc.put_u8(0),
            Seal::Nonce(n) => {
                enc.put_u8(1);
                enc.put_u64(*n);
            }
            Seal::Authority { signer, signature } => {
                enc.put_u8(2);
                enc.put_raw(signer.as_bytes());
                enc.put_raw(&signature.to_bytes());
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Seal::Deterministic),
            1 => Ok(Seal::Nonce(dec.take_u64()?)),
            2 => {
                let key_bytes: [u8; 32] = dec.take_array()?;
                let signer =
                    VerifyingKey::from_bytes(&key_bytes).map_err(|_| DecodeError::InvalidTag {
                        what: "Seal.signer",
                        tag: key_bytes[0],
                    })?;
                let sig_bytes: [u8; 64] = dec.take_array()?;
                Ok(Seal::Authority {
                    signer,
                    signature: Signature::from_bytes(&sig_bytes),
                })
            }
            tag => Err(DecodeError::InvalidTag { what: "Seal", tag }),
        }
    }
}

/// A block header.
///
/// The paper's console format (§V): "block number; timestamp; previous
/// block hash; own block hash; optional data entry". The "own block hash"
/// is derived, not stored: [`BlockHeader::hash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block number α.
    pub number: BlockNumber,
    /// Timestamp τ. For summary blocks this equals the predecessor's
    /// timestamp (§IV-B), which is what lets every node derive Σ locally.
    pub timestamp: Timestamp,
    /// Hash of the predecessor block.
    pub prev_hash: Digest32,
    /// Commitment to the block body (Merkle root over entries/records).
    pub payload_hash: Digest32,
    /// Block kind.
    pub kind: BlockKind,
    /// Consensus seal.
    pub seal: Seal,
}

impl BlockHeader {
    /// The block hash: SHA-256 over the domain-tagged canonical header.
    pub fn hash(&self) -> Digest32 {
        let mut enc = Encoder::new();
        enc.put_raw(BLOCK_HASH_DOMAIN);
        self.encode(&mut enc);
        seldel_crypto::sha256(enc.into_bytes())
    }

    /// The pre-seal digest an authority signs: the header with the seal
    /// field fixed to [`Seal::Deterministic`].
    pub fn preseal_digest(&self) -> Digest32 {
        let unsealed = BlockHeader {
            seal: Seal::Deterministic,
            ..self.clone()
        };
        unsealed.hash()
    }
}

impl Codec for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        self.number.encode(enc);
        self.timestamp.encode(enc);
        enc.put_raw(self.prev_hash.as_bytes());
        enc.put_raw(self.payload_hash.as_bytes());
        self.kind.encode(enc);
        self.seal.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            number: BlockNumber::decode(dec)?,
            timestamp: Timestamp::decode(dec)?,
            prev_hash: Digest32::from_bytes(dec.take_array()?),
            payload_hash: Digest32::from_bytes(dec.take_array()?),
            kind: BlockKind::decode(dec)?,
            seal: Seal::decode(dec)?,
        })
    }
}

/// A block body, one variant per [`BlockKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockBody {
    /// Genesis payload: a free-text chain identity note.
    Genesis {
        /// Chain identity / bootstrap note.
        note: String,
    },
    /// Entries of a normal block.
    Normal {
        /// The signed entries, in consensus order.
        entries: Vec<Entry>,
    },
    /// Summary payload: carried-forward records plus optional anchor.
    Summary {
        /// Records copied forward from pruned sequences (possibly empty —
        /// "at the beginning of the blockchain … empty summary blocks").
        records: Vec<SummaryRecord>,
        /// Tombstones of the deletions this Σ (and every Σ it absorbed)
        /// executed: the entry ids whose data was dropped during merging.
        /// Only the id survives — never the payload — so the list is
        /// GDPR-compatible, and its Merkle commitment is what makes
        /// "entry X was deleted" provable after the original block and the
        /// delete request itself were pruned. Strictly sorted (no
        /// duplicates) so the commitment is canonical; carried forward in
        /// full across merges.
        deletions: Vec<EntryId>,
        /// Fig. 9 anchor over a middle sequence, present when the summary
        /// absorbed pruned history and anchoring is enabled.
        anchor: Option<Anchor>,
    },
    /// Idle filler block (no payload).
    Empty,
}

impl BlockBody {
    /// The kind this body corresponds to.
    pub fn kind(&self) -> BlockKind {
        match self {
            BlockBody::Genesis { .. } => BlockKind::Genesis,
            BlockBody::Normal { .. } => BlockKind::Normal,
            BlockBody::Summary { .. } => BlockKind::Summary,
            BlockBody::Empty => BlockKind::Empty,
        }
    }

    /// The payload commitment stored in the header: a Merkle root over
    /// [`BlockBody::payload_leaves`] for entry/record-bearing bodies, or a
    /// domain hash for genesis/empty bodies.
    pub fn payload_hash(&self) -> Digest32 {
        match self {
            BlockBody::Genesis { note } => {
                seldel_crypto::sha256([b"seldel/genesis/v1".as_slice(), note.as_bytes()].concat())
            }
            BlockBody::Empty => seldel_crypto::sha256(b"seldel/empty/v1"),
            _ => self
                .payload_tree()
                .expect("normal/summary bodies have a payload tree")
                .root(),
        }
    }

    /// The leaf payloads of the body's Merkle commitment, in tree order —
    /// `None` for genesis/empty bodies (they commit via a domain hash, not
    /// a tree).
    ///
    /// * **Normal**: one leaf per entry, the entry's canonical bytes.
    /// * **Summary**: the carried records (each prefixed
    ///   [`SUMMARY_LEAF_RECORD`]), then the deletion tombstones (each the
    ///   [`SUMMARY_LEAF_TOMBSTONE`]-prefixed canonical entry id), then the
    ///   anchor (prefixed [`SUMMARY_LEAF_ANCHOR`]) when present. The
    ///   prefixes keep the three leaf populations in disjoint domains, so
    ///   a proof leaf decodes unambiguously without the body at hand.
    pub fn payload_leaves(&self) -> Option<Vec<Vec<u8>>> {
        match self {
            BlockBody::Normal { entries } => {
                Some(entries.iter().map(|e| e.to_canonical_bytes()).collect())
            }
            BlockBody::Summary {
                records,
                deletions,
                anchor,
            } => {
                let mut leaves: Vec<Vec<u8>> =
                    Vec::with_capacity(records.len() + deletions.len() + 1);
                for record in records {
                    let mut leaf = vec![SUMMARY_LEAF_RECORD];
                    leaf.extend_from_slice(&record.to_canonical_bytes());
                    leaves.push(leaf);
                }
                for id in deletions {
                    let mut leaf = vec![SUMMARY_LEAF_TOMBSTONE];
                    leaf.extend_from_slice(&id.to_canonical_bytes());
                    leaves.push(leaf);
                }
                if let Some(anchor) = anchor {
                    let mut leaf = vec![SUMMARY_LEAF_ANCHOR];
                    leaf.extend_from_slice(&anchor.to_canonical_bytes());
                    leaves.push(leaf);
                }
                Some(leaves)
            }
            BlockBody::Genesis { .. } | BlockBody::Empty => None,
        }
    }

    /// The Merkle tree the header's payload commitment is the root of —
    /// `None` for genesis/empty bodies. This is what membership proofs
    /// ([`crate::proof`]) extract audit paths from.
    pub fn payload_tree(&self) -> Option<MerkleTree> {
        self.payload_leaves().map(MerkleTree::from_leaves)
    }

    /// Number of entries/records carried.
    pub fn item_count(&self) -> usize {
        match self {
            BlockBody::Normal { entries } => entries.len(),
            BlockBody::Summary { records, .. } => records.len(),
            _ => 0,
        }
    }
}

impl Codec for BlockBody {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BlockBody::Genesis { note } => {
                enc.put_u8(0);
                enc.put_str(note);
            }
            BlockBody::Normal { entries } => {
                enc.put_u8(1);
                encode_seq(entries, enc);
            }
            BlockBody::Summary {
                records,
                deletions,
                anchor,
            } => {
                enc.put_u8(2);
                encode_seq(records, enc);
                encode_seq(deletions, enc);
                anchor.encode(enc);
            }
            BlockBody::Empty => enc.put_u8(3),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(BlockBody::Genesis {
                note: dec.take_str()?,
            }),
            1 => Ok(BlockBody::Normal {
                entries: decode_seq(dec)?,
            }),
            2 => Ok(BlockBody::Summary {
                records: decode_seq(dec)?,
                deletions: decode_seq(dec)?,
                anchor: Option::<Anchor>::decode(dec)?,
            }),
            3 => Ok(BlockBody::Empty),
            tag => Err(DecodeError::InvalidTag {
                what: "BlockBody",
                tag,
            }),
        }
    }
}

/// A complete block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    header: BlockHeader,
    body: BlockBody,
}

impl Block {
    /// Assembles a block, deriving `kind` and `payload_hash` from the body.
    pub fn new(
        number: BlockNumber,
        timestamp: Timestamp,
        prev_hash: Digest32,
        body: BlockBody,
        seal: Seal,
    ) -> Block {
        let header = BlockHeader {
            number,
            timestamp,
            prev_hash,
            payload_hash: body.payload_hash(),
            kind: body.kind(),
            seal,
        };
        Block { header, body }
    }

    /// Builds the original genesis block.
    pub fn genesis(note: impl Into<String>, timestamp: Timestamp) -> Block {
        Block::new(
            BlockNumber::GENESIS,
            timestamp,
            GENESIS_PREV_HASH,
            BlockBody::Genesis { note: note.into() },
            Seal::Deterministic,
        )
    }

    /// Reassembles a block from parts (used by decode and the validator).
    ///
    /// Unlike [`Block::new`], the header is taken as-is; use
    /// [`Block::is_payload_consistent`] to check it against the body.
    pub fn from_parts(header: BlockHeader, body: BlockBody) -> Block {
        Block { header, body }
    }

    /// The header.
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// The body.
    pub fn body(&self) -> &BlockBody {
        &self.body
    }

    /// Block number α.
    pub fn number(&self) -> BlockNumber {
        self.header.number
    }

    /// Timestamp τ.
    pub fn timestamp(&self) -> Timestamp {
        self.header.timestamp
    }

    /// Block kind.
    pub fn kind(&self) -> BlockKind {
        self.header.kind
    }

    /// The block hash (derived from the header).
    pub fn hash(&self) -> Digest32 {
        self.header.hash()
    }

    /// Whether the header's payload commitment and kind match the body.
    pub fn is_payload_consistent(&self) -> bool {
        self.header.kind == self.body.kind() && self.header.payload_hash == self.body.payload_hash()
    }

    /// Entries of a normal block (empty slice otherwise).
    pub fn entries(&self) -> &[Entry] {
        match &self.body {
            BlockBody::Normal { entries } => entries,
            _ => &[],
        }
    }

    /// Records of a summary block (empty slice otherwise).
    pub fn summary_records(&self) -> &[SummaryRecord] {
        match &self.body {
            BlockBody::Summary { records, .. } => records,
            _ => &[],
        }
    }

    /// Deletion tombstones of a summary block (empty slice otherwise):
    /// the ids of every entry this Σ and its absorbed predecessors dropped
    /// by executed deletion request.
    pub fn deletions(&self) -> &[EntryId] {
        match &self.body {
            BlockBody::Summary { deletions, .. } => deletions,
            _ => &[],
        }
    }

    /// Whether the tombstone list is strictly sorted (and therefore free
    /// of duplicates) — the canonical-commitment invariant every honest Σ
    /// satisfies by construction and validation enforces.
    pub fn tombstones_sorted(&self) -> bool {
        self.deletions().windows(2).all(|w| w[0] < w[1])
    }

    /// The Fig. 9 anchor of a summary block, if present.
    pub fn anchor(&self) -> Option<&Anchor> {
        match &self.body {
            BlockBody::Summary { anchor, .. } => anchor.as_ref(),
            _ => None,
        }
    }

    /// Canonical encoded size in bytes (header + body).
    pub fn byte_size(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}; {}; {}; {}",
            if self.kind() == BlockKind::Summary {
                "S"
            } else {
                ""
            },
            self.number(),
            self.timestamp(),
            self.header.prev_hash.short(),
            self.hash().short(),
        )
    }
}

impl Codec for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        self.body.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(dec)?,
            body: BlockBody::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn sample_entry(seed: u8) -> Entry {
        Entry::sign_data(&key(seed), DataRecord::new("login").with("user", "A"))
    }

    fn normal_block(number: u64, prev: Digest32) -> Block {
        Block::new(
            BlockNumber(number),
            Timestamp(number * 10),
            prev,
            BlockBody::Normal {
                entries: vec![sample_entry(1), sample_entry(2)],
            },
            Seal::Deterministic,
        )
    }

    #[test]
    fn genesis_has_paper_prev_hash() {
        let g = Block::genesis("chain-1", Timestamp(0));
        assert_eq!(g.header().prev_hash.short(), "DEADB");
        assert_eq!(g.kind(), BlockKind::Genesis);
        assert_eq!(g.number(), BlockNumber::GENESIS);
        assert!(g.is_payload_consistent());
    }

    #[test]
    fn block_hash_changes_with_content() {
        let g1 = Block::genesis("chain-1", Timestamp(0));
        let g2 = Block::genesis("chain-2", Timestamp(0));
        let g3 = Block::genesis("chain-1", Timestamp(1));
        assert_ne!(g1.hash(), g2.hash());
        assert_ne!(g1.hash(), g3.hash());
        assert_eq!(g1.hash(), Block::genesis("chain-1", Timestamp(0)).hash());
    }

    #[test]
    fn payload_consistency_detects_tampering() {
        let b = normal_block(1, seldel_crypto::sha256(b"prev"));
        assert!(b.is_payload_consistent());
        // Swap in a different body while keeping the header.
        let tampered = Block::from_parts(
            b.header().clone(),
            BlockBody::Normal {
                entries: vec![sample_entry(9)],
            },
        );
        assert!(!tampered.is_payload_consistent());
    }

    #[test]
    fn entries_accessor() {
        let b = normal_block(1, Digest32::ZERO);
        assert_eq!(b.entries().len(), 2);
        assert!(b.summary_records().is_empty());
        assert!(b.anchor().is_none());
        assert_eq!(b.body().item_count(), 2);
    }

    #[test]
    fn summary_block_round_trip() {
        let entry = sample_entry(3);
        let rec = SummaryRecord::from_entry(
            &entry,
            crate::types::EntryId::new(BlockNumber(1), crate::types::EntryNumber(0)),
            Timestamp(10),
        )
        .unwrap();
        let anchor = Anchor::new(BlockNumber(4), BlockNumber(6), seldel_crypto::sha256(b"x"));
        let b = Block::new(
            BlockNumber(9),
            Timestamp(80),
            seldel_crypto::sha256(b"prev"),
            BlockBody::Summary {
                records: vec![rec],
                deletions: vec![crate::types::EntryId::new(
                    BlockNumber(2),
                    crate::types::EntryNumber(1),
                )],
                anchor: Some(anchor),
            },
            Seal::Deterministic,
        );
        let decoded = Block::from_canonical_bytes(&b.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(decoded.summary_records().len(), 1);
        assert_eq!(decoded.deletions(), b.deletions());
        assert_eq!(decoded.anchor(), Some(&anchor));
        assert!(decoded.is_payload_consistent());
    }

    #[test]
    fn empty_block_round_trip() {
        let b = Block::new(
            BlockNumber(5),
            Timestamp(50),
            Digest32::ZERO,
            BlockBody::Empty,
            Seal::Deterministic,
        );
        let decoded = Block::from_canonical_bytes(&b.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(decoded.kind(), BlockKind::Empty);
    }

    #[test]
    fn seal_variants_round_trip() {
        let auth = key(4);
        let seals = [
            Seal::Deterministic,
            Seal::Nonce(0xdeadbeef),
            Seal::Authority {
                signer: auth.verifying_key(),
                signature: auth.sign(b"header"),
            },
        ];
        for seal in seals {
            let decoded = Seal::from_canonical_bytes(&seal.to_canonical_bytes()).unwrap();
            assert_eq!(decoded, seal);
        }
    }

    #[test]
    fn preseal_digest_independent_of_seal() {
        let b1 = Block::new(
            BlockNumber(1),
            Timestamp(1),
            Digest32::ZERO,
            BlockBody::Empty,
            Seal::Deterministic,
        );
        let b2 = Block::new(
            BlockNumber(1),
            Timestamp(1),
            Digest32::ZERO,
            BlockBody::Empty,
            Seal::Nonce(7),
        );
        assert_eq!(b1.header().preseal_digest(), b2.header().preseal_digest());
        assert_ne!(b1.hash(), b2.hash());
    }

    #[test]
    fn display_matches_console_format() {
        let g = Block::genesis("c", Timestamp(0));
        let line = g.to_string();
        assert!(line.starts_with("0; 0; DEADB; "), "{line}");
        let s = Block::new(
            BlockNumber(3),
            Timestamp(20),
            g.hash(),
            BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: None,
            },
            Seal::Deterministic,
        );
        assert!(s.to_string().starts_with("S3; 20; "), "{s}");
    }

    #[test]
    fn summary_payload_hash_covers_anchor() {
        let body_no_anchor = BlockBody::Summary {
            records: vec![],
            deletions: vec![],
            anchor: None,
        };
        let body_with_anchor = BlockBody::Summary {
            records: vec![],
            deletions: vec![],
            anchor: Some(Anchor::new(
                BlockNumber(1),
                BlockNumber(2),
                seldel_crypto::sha256(b"r"),
            )),
        };
        assert_ne!(
            body_no_anchor.payload_hash(),
            body_with_anchor.payload_hash()
        );
    }

    #[test]
    fn summary_payload_hash_covers_tombstones() {
        use crate::types::{EntryId, EntryNumber};
        let empty = BlockBody::Summary {
            records: vec![],
            deletions: vec![],
            anchor: None,
        };
        let with_tombstone = BlockBody::Summary {
            records: vec![],
            deletions: vec![EntryId::new(BlockNumber(1), EntryNumber(0))],
            anchor: None,
        };
        let with_other_tombstone = BlockBody::Summary {
            records: vec![],
            deletions: vec![EntryId::new(BlockNumber(1), EntryNumber(1))],
            anchor: None,
        };
        assert_ne!(empty.payload_hash(), with_tombstone.payload_hash());
        assert_ne!(
            with_tombstone.payload_hash(),
            with_other_tombstone.payload_hash()
        );
    }

    #[test]
    fn payload_tree_root_matches_payload_hash() {
        use crate::types::{EntryId, EntryNumber};
        let normal = BlockBody::Normal {
            entries: vec![sample_entry(1), sample_entry(2)],
        };
        let summary = BlockBody::Summary {
            records: vec![],
            deletions: vec![EntryId::new(BlockNumber(1), EntryNumber(0))],
            anchor: Some(Anchor::new(
                BlockNumber(1),
                BlockNumber(2),
                seldel_crypto::sha256(b"r"),
            )),
        };
        for body in [normal, summary] {
            assert_eq!(body.payload_tree().unwrap().root(), body.payload_hash());
        }
        assert!(BlockBody::Empty.payload_tree().is_none());
        assert!(BlockBody::Genesis { note: "g".into() }
            .payload_tree()
            .is_none());
    }

    #[test]
    fn tombstone_order_invariant() {
        use crate::types::{EntryId, EntryNumber};
        let sorted = Block::new(
            BlockNumber(3),
            Timestamp(20),
            Digest32::ZERO,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![
                    EntryId::new(BlockNumber(1), EntryNumber(0)),
                    EntryId::new(BlockNumber(1), EntryNumber(1)),
                ],
                anchor: None,
            },
            Seal::Deterministic,
        );
        assert!(sorted.tombstones_sorted());
        let unsorted = Block::new(
            BlockNumber(3),
            Timestamp(20),
            Digest32::ZERO,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![
                    EntryId::new(BlockNumber(1), EntryNumber(1)),
                    EntryId::new(BlockNumber(1), EntryNumber(0)),
                ],
                anchor: None,
            },
            Seal::Deterministic,
        );
        assert!(!unsorted.tombstones_sorted());
        // Duplicates violate *strict* sortedness too.
        let duplicated = Block::new(
            BlockNumber(3),
            Timestamp(20),
            Digest32::ZERO,
            BlockBody::Summary {
                records: vec![],
                deletions: vec![
                    EntryId::new(BlockNumber(1), EntryNumber(0)),
                    EntryId::new(BlockNumber(1), EntryNumber(0)),
                ],
                anchor: None,
            },
            Seal::Deterministic,
        );
        assert!(!duplicated.tombstones_sorted());
        // Non-summary blocks trivially satisfy the invariant.
        assert!(Block::genesis("g", Timestamp(0)).tombstones_sorted());
    }

    #[test]
    fn kind_display() {
        assert_eq!(BlockKind::Summary.to_string(), "summary");
        assert_eq!(BlockKind::Genesis.to_string(), "genesis");
    }
}

//! Chain-level error type.

use std::fmt;

use seldel_crypto::SignatureError;

use crate::types::{BlockNumber, EntryId};

/// Errors raised by chain construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Operation requires at least one block.
    EmptyChain,
    /// A pushed block's number did not extend the tip by one.
    NonContiguousNumber {
        /// Expected next number.
        expected: BlockNumber,
        /// Number actually found.
        found: BlockNumber,
    },
    /// A pushed block's `prev_hash` did not match the tip hash.
    PrevHashMismatch {
        /// Number of the offending block.
        number: BlockNumber,
    },
    /// A block's timestamp went backwards.
    TimestampRegression {
        /// Number of the offending block.
        number: BlockNumber,
    },
    /// A summary block's timestamp differs from its predecessor's (§IV-B
    /// requires them to be equal so every node derives the same Σ).
    SummaryTimestampMismatch {
        /// Number of the offending summary block.
        number: BlockNumber,
    },
    /// Header payload commitment does not match the body.
    PayloadMismatch {
        /// Number of the offending block.
        number: BlockNumber,
    },
    /// A genesis-kind block appeared somewhere other than block 0.
    GenesisMisplaced {
        /// Number of the offending block.
        number: BlockNumber,
    },
    /// An entry signature failed verification.
    EntrySignatureInvalid {
        /// Block containing the entry.
        block: BlockNumber,
        /// Entry index within the block.
        entry: u32,
        /// Underlying signature error.
        source: SignatureError,
    },
    /// A summary record's carried signature failed verification.
    RecordSignatureInvalid {
        /// Summary block containing the record.
        block: BlockNumber,
        /// Origin id of the offending record.
        origin: EntryId,
        /// Underlying signature error.
        source: SignatureError,
    },
    /// A block number outside the live range was referenced.
    UnknownBlock(BlockNumber),
    /// A truncation marker was not inside the live range.
    BadMarker {
        /// Requested new marker.
        requested: BlockNumber,
        /// Current live range start.
        live_start: BlockNumber,
        /// Current live range end.
        live_end: BlockNumber,
    },
    /// An anchor referenced blocks that are not live, or its root mismatched.
    AnchorMismatch {
        /// Summary block holding the anchor.
        block: BlockNumber,
    },
    /// A summary block's deletion tombstones were not strictly sorted, so
    /// its payload commitment is not canonical.
    TombstonesUnsorted {
        /// Number of the offending summary block.
        number: BlockNumber,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::EmptyChain => f.write_str("chain is empty"),
            ChainError::NonContiguousNumber { expected, found } => {
                write!(f, "expected block number {expected}, found {found}")
            }
            ChainError::PrevHashMismatch { number } => {
                write!(f, "previous-hash mismatch at block {number}")
            }
            ChainError::TimestampRegression { number } => {
                write!(f, "timestamp regression at block {number}")
            }
            ChainError::SummaryTimestampMismatch { number } => {
                write!(
                    f,
                    "summary block {number} must carry its predecessor's timestamp"
                )
            }
            ChainError::PayloadMismatch { number } => {
                write!(f, "payload commitment mismatch at block {number}")
            }
            ChainError::GenesisMisplaced { number } => {
                write!(f, "genesis-kind block at non-zero number {number}")
            }
            ChainError::EntrySignatureInvalid {
                block,
                entry,
                source,
            } => {
                write!(f, "invalid signature on entry {block}:{entry}: {source}")
            }
            ChainError::RecordSignatureInvalid {
                block,
                origin,
                source,
            } => {
                write!(
                    f,
                    "invalid carried signature in summary block {block} for record {origin}: {source}"
                )
            }
            ChainError::UnknownBlock(number) => write!(f, "block {number} is not live"),
            ChainError::BadMarker {
                requested,
                live_start,
                live_end,
            } => write!(
                f,
                "marker {requested} outside live range {live_start}..={live_end}"
            ),
            ChainError::AnchorMismatch { block } => {
                write!(f, "anchor verification failed in summary block {block}")
            }
            ChainError::TombstonesUnsorted { number } => {
                write!(
                    f,
                    "summary block {number} carries unsorted deletion tombstones"
                )
            }
        }
    }
}

impl std::error::Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntryNumber;

    #[test]
    fn display_messages() {
        let e = ChainError::NonContiguousNumber {
            expected: BlockNumber(5),
            found: BlockNumber(7),
        };
        assert_eq!(e.to_string(), "expected block number 5, found 7");
        assert!(ChainError::EmptyChain.to_string().contains("empty"));
        let e = ChainError::RecordSignatureInvalid {
            block: BlockNumber(9),
            origin: EntryId::new(BlockNumber(3), EntryNumber(1)),
            source: SignatureError::VerificationFailed,
        };
        assert!(e.to_string().contains("3:1"));
    }
}

//! Chain data model for the selective-deletion blockchain.
//!
//! This crate defines everything the paper's §IV concept operates *on*:
//!
//! * [`types`] — block numbers α, timestamps τ, entry ids, expiry markers;
//! * [`entry`] — signed entries (`D`/`K`/`S`) and deletion requests;
//! * [`block`] — the four block kinds (genesis, normal, **summary**, empty);
//! * [`summary`] — carried-forward summary records (Fig. 4) and Fig. 9
//!   anchors;
//! * [`chain`] — the live chain β with its shifting genesis marker `m`;
//! * [`store`] — pluggable block storage ([`MemStore`], [`SegStore`]) with
//!   per-block sealed-hash caching;
//! * [`fstore`] — the durable file-backed segment log ([`FileStore`]):
//!   crash recovery on open, physical on-disk deletion on prune;
//! * [`index`] — the maintained `EntryId → Location` index backing O(log n)
//!   lookups;
//! * [`shard`] — the sharded query & intake subsystem: stable
//!   [`ShardMap`] routing, the partitioned [`ShardedIndex`] (parallel
//!   rebuild, shard-parallel batch lookups) and the author-sharded
//!   [`ShardedMempool`] (per-shard dedup, fair round-robin drain);
//! * [`proof`] — O(log n) membership/absence proofs over the header
//!   commitments, verifiable from a bare [`HeaderChain`];
//! * [`validate`] — status-quo-anchored validation (§V-B3), full and
//!   incremental (cached-commitment) passes;
//! * [`baseline`] — the conventional ever-growing chain used as the
//!   experimental comparator;
//! * [`render`] — the paper's console listing format (Figs. 6–8).
//!
//! The *behaviour* — building summary blocks, pruning, deletion workflow —
//! lives in `seldel-core`, which drives these types.
//!
//! # Example
//!
//! ```
//! use seldel_chain::block::Block;
//! use seldel_chain::chain::Blockchain;
//! use seldel_chain::types::Timestamp;
//!
//! let chain = Blockchain::new(Block::genesis("my-chain", Timestamp(0)));
//! assert_eq!(chain.len(), 1);
//! assert_eq!(chain.first().header().prev_hash.short(), "DEADB");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod block;
#[allow(clippy::module_inception)]
pub mod chain;
pub mod entry;
pub mod error;
pub mod fstore;
pub mod index;
pub mod proof;
pub mod render;
pub mod shard;
pub mod store;
pub mod summary;
pub mod testutil;
pub mod types;
pub mod validate;

pub use baseline::BaselineChain;
pub use block::{Block, BlockBody, BlockHeader, BlockKind, Seal, GENESIS_PREV_HASH};
pub use chain::{Blockchain, Located};
pub use entry::{CoSignature, DeleteRequest, Entry, EntryPayload};
pub use error::ChainError;
pub use fstore::{segment_frame_numbers, FileStore, FsyncPolicy, StoreError, FSYNC_POLICY_ENV};
pub use index::{EntryIndex, Location};
pub use proof::{
    prove_deleted, prove_live, verify_proof, EntryProof, HeaderChain, MerkleSpot, ProofError,
};
pub use shard::{ShardMap, ShardedIndex, ShardedMempool, DEFAULT_SHARD_COUNT};
pub use store::{BlockRef, BlockStore, MemStore, SealedBlock, SegStore};
pub use summary::{Anchor, SummaryRecord};
pub use types::{BlockNumber, EntryId, EntryNumber, Expiry, Timestamp};
pub use validate::{
    build_anchor, validate_chain, validate_full, validate_incremental, validate_store_incremental,
    verify_anchor, IncrementalReport, ValidationOptions, ValidationReport,
};

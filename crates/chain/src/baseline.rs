//! The baseline comparator: a conventional append-only blockchain without
//! summary blocks, pruning or deletion.
//!
//! The paper motivates selective deletion with the unbounded growth of
//! ordinary chains ("Bitcoin … has almost reached a blockchain size of
//! 300 GB", §I). The growth and validation experiments (E1, E5 in
//! DESIGN.md) compare against this baseline.

use seldel_codec::DataRecord;

use crate::block::{Block, BlockBody, Seal};
use crate::chain::Blockchain;
use crate::entry::Entry;
use crate::error::ChainError;
use crate::types::{BlockNumber, EntryId, EntryNumber, Timestamp};
use crate::validate::{validate_chain, ValidationOptions, ValidationReport};

/// A plain, ever-growing blockchain.
#[derive(Debug, Clone)]
pub struct BaselineChain {
    chain: Blockchain,
}

impl BaselineChain {
    /// Starts a baseline chain with a genesis block.
    pub fn new(note: impl Into<String>, timestamp: Timestamp) -> BaselineChain {
        BaselineChain {
            chain: Blockchain::new(Block::genesis(note, timestamp)),
        }
    }

    /// Appends a block of entries; returns its number.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from the underlying push (e.g. timestamp
    /// regression).
    pub fn append(
        &mut self,
        timestamp: Timestamp,
        entries: Vec<Entry>,
    ) -> Result<BlockNumber, ChainError> {
        let number = self.chain.tip().number().next();
        let prev = self.chain.tip().hash();
        self.chain.push(Block::new(
            number,
            timestamp,
            prev,
            BlockBody::Normal { entries },
            Seal::Deterministic,
        ))?;
        Ok(number)
    }

    /// The underlying chain (read-only).
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Chain length in blocks (including genesis).
    pub fn len(&self) -> u64 {
        self.chain.len()
    }

    /// Baseline chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total byte size of the chain.
    pub fn total_byte_size(&self) -> u64 {
        self.chain.total_byte_size()
    }

    /// Looks up a data record by id (an owned clone — the holder block may
    /// be a transient page on disk-backed stores).
    pub fn get_record(&self, id: EntryId) -> Option<DataRecord> {
        self.chain.locate(id).and_then(|l| l.data().cloned())
    }

    /// Validates the whole chain.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a [`ChainError`].
    pub fn validate(&self, opts: &ValidationOptions) -> Result<ValidationReport, ChainError> {
        validate_chain(&self.chain, opts)
    }

    /// Ids of all data entries, in chain order.
    pub fn record_ids(&self) -> Vec<EntryId> {
        self.chain
            .live_records()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Convenience: id of entry `entry` in block `block`.
    pub fn id(block: u64, entry: u32) -> EntryId {
        EntryId::new(BlockNumber(block), EntryNumber(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_crypto::SigningKey;

    fn entry(n: u64) -> Entry {
        let key = SigningKey::from_seed([7u8; 32]);
        Entry::sign_data(&key, DataRecord::new("x").with("n", n))
    }

    #[test]
    fn append_and_lookup() {
        let mut base = BaselineChain::new("base", Timestamp(0));
        let b1 = base
            .append(Timestamp(10), vec![entry(1), entry(2)])
            .unwrap();
        assert_eq!(b1, BlockNumber(1));
        assert_eq!(base.len(), 2);
        let rec = base.get_record(BaselineChain::id(1, 1)).unwrap();
        assert_eq!(rec.get("n").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn grows_without_bound() {
        let mut base = BaselineChain::new("base", Timestamp(0));
        for i in 1..=50 {
            base.append(Timestamp(i * 10), vec![entry(i)]).unwrap();
        }
        assert_eq!(base.len(), 51);
        assert_eq!(base.record_ids().len(), 50);
        base.validate(&ValidationOptions::default()).unwrap();
    }

    #[test]
    fn validates_clean() {
        let mut base = BaselineChain::new("base", Timestamp(0));
        base.append(Timestamp(5), vec![entry(1)]).unwrap();
        let report = base.validate(&ValidationOptions::default()).unwrap();
        assert_eq!(report.blocks_checked, 2);
        assert_eq!(report.entries_verified, 1);
    }
}

//! Summary-block contents: carried-forward records (Fig. 4) and the
//! mid-chain Merkle anchor used to hamper 51 % attacks (Fig. 9).

use std::fmt;

use seldel_codec::{Codec, DataRecord, DecodeError, Decoder, Encoder};
use seldel_crypto::{Digest32, Signature, SignatureError, VerifyingKey};

use crate::entry::{Entry, EntryPayload};
use crate::types::{BlockNumber, EntryId, Expiry, Timestamp};

/// A data record carried forward into a summary block.
///
/// Per the paper's Fig. 4, the copied information keeps the **original**
/// block number, entry number and timestamp ("the block number, the
/// timestamp and the entry number are keeped the same as initially
/// integrated"); nonce and previous hash of the source block are dropped.
/// The author key and signature travel with the record so authorship stays
/// verifiable after any number of merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRecord {
    origin: EntryId,
    origin_timestamp: Timestamp,
    record: DataRecord,
    author: VerifyingKey,
    signature: Signature,
    expiry: Option<Expiry>,
    depends_on: Vec<EntryId>,
}

impl SummaryRecord {
    /// Builds a summary record from a live entry at a known position.
    ///
    /// Returns `None` for deletion-request entries: "deletion requests …
    /// will never be copied into a summary block" (§IV-D3).
    pub fn from_entry(
        entry: &Entry,
        origin: EntryId,
        timestamp: Timestamp,
    ) -> Option<SummaryRecord> {
        match entry.payload() {
            EntryPayload::Data(record) => Some(SummaryRecord {
                origin,
                origin_timestamp: timestamp,
                record: record.clone(),
                author: entry.author(),
                signature: *entry.signature(),
                expiry: entry.expiry(),
                depends_on: entry.depends_on().to_vec(),
            }),
            EntryPayload::Delete(_) => None,
        }
    }

    /// The original position (block α, entry number) — stable forever.
    pub const fn origin(&self) -> EntryId {
        self.origin
    }

    /// The original block timestamp.
    pub const fn origin_timestamp(&self) -> Timestamp {
        self.origin_timestamp
    }

    /// The carried data record.
    pub fn record(&self) -> &DataRecord {
        &self.record
    }

    /// The original author key.
    pub const fn author(&self) -> VerifyingKey {
        self.author
    }

    /// The original entry signature.
    pub const fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The original expiry, if the entry was temporary.
    pub const fn expiry(&self) -> Option<Expiry> {
        self.expiry
    }

    /// The original dependency edges.
    pub fn depends_on(&self) -> &[EntryId] {
        &self.depends_on
    }

    /// Verifies the carried author signature still matches the payload.
    ///
    /// # Errors
    ///
    /// Propagates [`SignatureError`] when the signature is invalid — e.g.
    /// when a record was altered during a (buggy or malicious) merge.
    pub fn verify(&self) -> Result<(), SignatureError> {
        let message = Entry::signing_message(
            &EntryPayload::Data(self.record.clone()),
            &self.expiry,
            &self.depends_on,
        );
        self.author.verify(&message, &self.signature)
    }

    /// Canonical encoded size in bytes.
    pub fn byte_size(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl fmt::Display for SummaryRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@τ{}: D {}",
            self.origin, self.origin_timestamp, self.record
        )
    }
}

impl Codec for SummaryRecord {
    fn encode(&self, enc: &mut Encoder) {
        self.origin.encode(enc);
        self.origin_timestamp.encode(enc);
        self.record.encode(enc);
        enc.put_raw(self.author.as_bytes());
        enc.put_raw(&self.signature.to_bytes());
        self.expiry.encode(enc);
        enc.put_len(self.depends_on.len());
        for dep in &self.depends_on {
            dep.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let origin = EntryId::decode(dec)?;
        let origin_timestamp = Timestamp::decode(dec)?;
        let record = DataRecord::decode(dec)?;
        let key_bytes: [u8; 32] = dec.take_array()?;
        let author = VerifyingKey::from_bytes(&key_bytes).map_err(|_| DecodeError::InvalidTag {
            what: "SummaryRecord.author",
            tag: key_bytes[0],
        })?;
        let sig_bytes: [u8; 64] = dec.take_array()?;
        let signature = Signature::from_bytes(&sig_bytes);
        let expiry = Option::<Expiry>::decode(dec)?;
        let dep_len = dec.take_len()?;
        let mut depends_on = Vec::with_capacity(dep_len.min(1024));
        for _ in 0..dep_len {
            depends_on.push(EntryId::decode(dec)?);
        }
        Ok(SummaryRecord {
            origin,
            origin_timestamp,
            record,
            author,
            signature,
            expiry,
            depends_on,
        })
    }
}

/// The 51 %-attack hampering anchor of Fig. 9.
///
/// When a summary block absorbs pruned history, it additionally stores "the
/// reference to a middle sequence, for example ω_{lβ/2}" — here the Merkle
/// root over the block hashes of that sequence. Every record older than
/// lβ/2 therefore keeps at least lβ/2 confirmations even after its original
/// blocks are cut off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// First block of the anchored middle sequence.
    pub start: BlockNumber,
    /// Last block of the anchored middle sequence (inclusive).
    pub end: BlockNumber,
    /// Merkle root over the block hashes `start..=end`.
    pub merkle_root: Digest32,
}

impl Anchor {
    /// Creates an anchor.
    pub const fn new(start: BlockNumber, end: BlockNumber, merkle_root: Digest32) -> Anchor {
        Anchor {
            start,
            end,
            merkle_root,
        }
    }

    /// Number of blocks covered.
    pub const fn span(&self) -> u64 {
        self.end.value() - self.start.value() + 1
    }
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "anchor ω[{}..={}] root {}",
            self.start,
            self.end,
            self.merkle_root.short()
        )
    }
}

impl Codec for Anchor {
    fn encode(&self, enc: &mut Encoder) {
        self.start.encode(enc);
        self.end.encode(enc);
        enc.put_raw(self.merkle_root.as_bytes());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Anchor {
            start: BlockNumber::decode(dec)?,
            end: BlockNumber::decode(dec)?,
            merkle_root: Digest32::from_bytes(dec.take_array()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::DeleteRequest;
    use crate::types::EntryNumber;
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn entry(seed: u8) -> Entry {
        Entry::sign_data(&key(seed), DataRecord::new("login").with("user", "ALPHA"))
    }

    fn origin() -> EntryId {
        EntryId::new(BlockNumber(3), EntryNumber(1))
    }

    #[test]
    fn from_entry_preserves_origin_fields() {
        let e = entry(1);
        let rec = SummaryRecord::from_entry(&e, origin(), Timestamp(500)).unwrap();
        assert_eq!(rec.origin(), origin());
        assert_eq!(rec.origin_timestamp(), Timestamp(500));
        assert_eq!(rec.author(), e.author());
        rec.verify().unwrap();
    }

    #[test]
    fn delete_requests_never_become_summary_records() {
        let e = Entry::sign_delete(&key(2), DeleteRequest::new(origin(), ""));
        assert!(SummaryRecord::from_entry(&e, origin(), Timestamp(0)).is_none());
    }

    #[test]
    fn round_trip() {
        let rec = SummaryRecord::from_entry(&entry(3), origin(), Timestamp(42)).unwrap();
        let decoded = SummaryRecord::from_canonical_bytes(&rec.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, rec);
        decoded.verify().unwrap();
    }

    #[test]
    fn tampered_record_fails_signature() {
        let rec = SummaryRecord::from_entry(&entry(4), origin(), Timestamp(42)).unwrap();
        let mut tampered = rec.clone();
        tampered.record = DataRecord::new("login").with("user", "MALLORY");
        assert!(tampered.verify().is_err());
    }

    #[test]
    fn display_shows_origin() {
        let rec = SummaryRecord::from_entry(&entry(5), origin(), Timestamp(42)).unwrap();
        let text = rec.to_string();
        assert!(text.starts_with("3:1@τ42"), "{text}");
    }

    #[test]
    fn anchor_span_and_round_trip() {
        let a = Anchor::new(
            BlockNumber(8),
            BlockNumber(11),
            seldel_crypto::sha256(b"root"),
        );
        assert_eq!(a.span(), 4);
        let decoded = Anchor::from_canonical_bytes(&a.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, a);
        assert!(a.to_string().contains("ω[8..=11]"));
    }
}

//! Adversarial property tests for membership/absence proofs.
//!
//! The contract under attack: a proof produced by `prove_live` /
//! `prove_deleted` verifies against the header chain, and **no mutation of
//! its bytes or structure** — bit flips anywhere in the serialised proof,
//! swapped audit-path siblings, flipped sibling sides, truncated paths,
//! re-labelled variants — may verify for the same subject. Soundness here
//! is what makes tombstones GDPR-meaningful: a node cannot fake deletion
//! evidence (or liveness evidence) without breaking SHA-256.

use proptest::prelude::*;

use seldel_chain::proof::{prove_deleted, prove_live, verify_proof, EntryProof, HeaderChain};
use seldel_chain::{
    Block, BlockBody, BlockNumber, Blockchain, DeleteRequest, Entry, EntryId, EntryNumber, Seal,
    SummaryRecord, Timestamp,
};
use seldel_codec::{Codec, DataRecord};
use seldel_crypto::{MerkleProof, SigningKey};

/// A chain with every proof population present: normal entries, pending
/// delete requests, summary-carried records and executed tombstones.
/// Every 5th block is a Σ that carries the *even* entries of block b-2 and
/// tombstones the *odd* ones; afterwards the chain is pruned to `cut`.
fn build_deletion_chain(blocks: u64, entries_per_block: u8, cut: u64) -> Blockchain {
    let key = SigningKey::from_seed([0x3D; 32]);
    let mut chain = Blockchain::new(Block::genesis("proofprop", Timestamp(0)));
    for b in 1..=blocks {
        let prev = chain.tip().hash();
        let block = if b.is_multiple_of(5) && b >= 5 {
            let mut records = Vec::new();
            let mut deletions = Vec::new();
            if let Some(origin_block) = chain.get(BlockNumber(b - 2)) {
                for (i, entry) in origin_block.entries().iter().enumerate() {
                    let id = EntryId::new(BlockNumber(b - 2), EntryNumber(i as u32));
                    if entry.payload().is_delete() {
                        continue;
                    }
                    if i % 2 == 0 {
                        records.push(
                            SummaryRecord::from_entry(entry, id, origin_block.timestamp())
                                .expect("data entry"),
                        );
                    } else {
                        deletions.push(id);
                    }
                }
            }
            Block::new(
                BlockNumber(b),
                chain.tip().timestamp(),
                prev,
                BlockBody::Summary {
                    records,
                    deletions,
                    anchor: None,
                },
                Seal::Deterministic,
            )
        } else {
            let mut entries: Vec<Entry> = (0..entries_per_block)
                .map(|i| {
                    Entry::sign_data(&key, DataRecord::new("log").with("n", b * 100 + i as u64))
                })
                .collect();
            // Every 7th block also carries a pending delete request for the
            // first entry of the previous block.
            if b.is_multiple_of(7) && b >= 2 {
                entries.push(Entry::sign_delete(
                    &key,
                    DeleteRequest::new(
                        EntryId::new(BlockNumber(b - 1), EntryNumber(0)),
                        "prop cleanup",
                    ),
                ));
            }
            Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal { entries },
                Seal::Deterministic,
            )
        };
        chain.push(block).expect("valid link");
    }
    if cut > 0 {
        let cut = cut.min(blocks);
        chain.truncate_front(BlockNumber(cut)).expect("in range");
    }
    chain
}

/// All tombstoned ids still provable from the live chain.
fn tombstoned_ids(chain: &Blockchain) -> Vec<EntryId> {
    let mut out: Vec<EntryId> = chain.iter().flat_map(|b| b.deletions().to_vec()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Every id answerable by `prove_live`.
fn live_ids(chain: &Blockchain) -> Vec<EntryId> {
    chain.live_records().into_iter().map(|(id, _)| id).collect()
}

/// Asserts a mutated proof byte-string can never verify for `id`: it must
/// fail to decode, or decode and fail verification.
fn assert_rejected(bytes: &[u8], id: EntryId, headers: &HeaderChain, what: &str) {
    if let Ok(mutated) = EntryProof::from_canonical_bytes(bytes) {
        assert!(
            verify_proof(&mutated, id, headers).is_err(),
            "{what}: mutated proof for {id} still verifies"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round trip: every live id and every tombstoned id yields a proof
    /// that verifies — including through a serialisation round trip.
    #[test]
    fn proofs_round_trip_for_every_subject(
        blocks in 6u64..30,
        entries in 1u8..4,
        cut in 0u64..12,
    ) {
        let chain = build_deletion_chain(blocks, entries, cut);
        let headers = HeaderChain::from_chain(&chain);

        for id in live_ids(&chain) {
            let proof = prove_live(&chain, id).expect("live id proves");
            verify_proof(&proof, id, &headers).expect("live proof verifies");
            let rehydrated =
                EntryProof::from_canonical_bytes(&proof.to_canonical_bytes()).expect("codec");
            prop_assert_eq!(&rehydrated, &proof);
            verify_proof(&rehydrated, id, &headers).expect("rehydrated proof verifies");
        }
        for id in tombstoned_ids(&chain) {
            let proof = prove_deleted(&chain, id).expect("tombstoned id proves");
            prop_assert!(!proof.is_live());
            verify_proof(&proof, id, &headers).expect("absence proof verifies");
        }
    }

    /// Bit flips: flipping any single bit of a serialised proof makes it
    /// undecodable or unverifiable. Positions are sampled, the proof and
    /// subject are random.
    #[test]
    fn any_single_bit_flip_is_rejected(
        blocks in 6u64..24,
        entries in 2u8..4,
        flip_positions in proptest::collection::vec(0usize..1 << 20, 24..32),
        bit in 0u8..8,
    ) {
        let chain = build_deletion_chain(blocks, entries, 0);
        let headers = HeaderChain::from_chain(&chain);
        let live = live_ids(&chain);
        let dead = tombstoned_ids(&chain);
        // blocks >= 6 guarantees a Σ at 5; entries >= 2 guarantees it
        // tombstones the odd-indexed sibling.
        assert!(!live.is_empty() && !dead.is_empty());

        let subjects = [
            (live[live.len() / 2], prove_live(&chain, live[live.len() / 2]).unwrap()),
            (dead[dead.len() / 2], prove_deleted(&chain, dead[dead.len() / 2]).unwrap()),
        ];
        for (id, proof) in &subjects {
            let bytes = proof.to_canonical_bytes();
            for pos in &flip_positions {
                let mut mutated = bytes.clone();
                let at = pos % mutated.len();
                mutated[at] ^= 1 << bit;
                assert_rejected(&mutated, *id, &headers, "bit flip");
            }
        }
    }

    /// Structural mutations: sibling swaps, sibling-side flips, path
    /// truncation, index nudges and variant re-labelling never verify.
    #[test]
    fn structural_mutations_are_rejected(
        blocks in 8u64..24,
        entries in 2u8..4,
        pick in 0usize..1 << 20,
    ) {
        let chain = build_deletion_chain(blocks, entries, 0);
        let headers = HeaderChain::from_chain(&chain);
        let live = live_ids(&chain);
        assert!(!live.is_empty());
        let id = live[pick % live.len()];
        let proof = prove_live(&chain, id).unwrap();
        verify_proof(&proof, id, &headers).expect("baseline verifies");

        let spot = proof.spot();
        let index = spot.path.index();
        let path: Vec<_> = spot.path.path().to_vec();

        let rebuild = |index: usize, path: Vec<_>| {
            let mut forged = spot.clone();
            forged.path = MerkleProof::from_parts(index, path);
            EntryProof::LiveInBlock(forged)
        };

        // Swap two adjacent path levels.
        if path.len() >= 2 {
            let mut swapped = path.clone();
            swapped.swap(0, 1);
            let forged = rebuild(index, swapped);
            prop_assert!(verify_proof(&forged, id, &headers).is_err(), "sibling swap verified");
        }
        // Flip one sibling's side.
        if !path.is_empty() {
            let mut flipped = path.clone();
            let (side, digest) = flipped[0];
            flipped[0] = (
                match side {
                    seldel_crypto::Side::Left => seldel_crypto::Side::Right,
                    seldel_crypto::Side::Right => seldel_crypto::Side::Left,
                },
                digest,
            );
            let forged = rebuild(index, flipped);
            prop_assert!(verify_proof(&forged, id, &headers).is_err(), "side flip verified");
        }
        // Truncate the path (claim a shallower tree).
        if !path.is_empty() {
            let mut short = path.clone();
            short.pop();
            let forged = rebuild(index, short);
            prop_assert!(verify_proof(&forged, id, &headers).is_err(), "truncated path verified");
            let forged = rebuild(index, vec![]);
            prop_assert!(verify_proof(&forged, id, &headers).is_err(), "emptied path verified");
        }
        // Nudge the claimed index: the position is part of the subject
        // binding for in-block proofs.
        let forged = rebuild(index + 1, path.clone());
        prop_assert!(verify_proof(&forged, id, &headers).is_err(), "index nudge verified");
        // Re-label the variant.
        let forged = EntryProof::LiveInSummary(spot.clone());
        prop_assert!(verify_proof(&forged, id, &headers).is_err(), "variant swap verified");
        let forged = EntryProof::DeletionExecuted(spot.clone());
        prop_assert!(verify_proof(&forged, id, &headers).is_err(), "live-as-deleted verified");
    }

    /// A proof for subject A never verifies for subject B, and absence
    /// proofs never verify as presence (and vice versa).
    #[test]
    fn proofs_do_not_transfer_between_subjects(
        blocks in 8u64..24,
        entries in 2u8..4,
    ) {
        let chain = build_deletion_chain(blocks, entries, 0);
        let headers = HeaderChain::from_chain(&chain);
        let live = live_ids(&chain);
        let dead = tombstoned_ids(&chain);
        assert!(live.len() >= 2 && !dead.is_empty());

        let a = live[0];
        let b = live[live.len() - 1];
        let proof_a = prove_live(&chain, a).unwrap();
        prop_assert!(verify_proof(&proof_a, b, &headers).is_err(), "proof transferred {a}->{b}");

        let gone = dead[0];
        let absence = prove_deleted(&chain, gone).unwrap();
        prop_assert!(verify_proof(&absence, a, &headers).is_err(), "absence proof transferred");
        // The same id cannot be proven live with a deletion proof's spot.
        let forged = EntryProof::LiveInSummary(absence.spot().clone());
        prop_assert!(verify_proof(&forged, gone, &headers).is_err(), "deleted proven live");
    }
}

//! Exhaustive on-disk tamper matrix for the durable `FileStore`.
//!
//! A single flipped bit anywhere in a segment file must be caught on the
//! next open-and-audit cycle through one of four channels:
//!
//! 1. **open rejected** — the frame (or a neighbour) no longer decodes in
//!    a non-tail position, so `FileStore::open` reports corruption;
//! 2. **block flagged** — the store opens but
//!    `validate_store_incremental` pins the damage to the tampered block
//!    (or its immediate successor, whose `prev_hash` seals the header);
//! 3. **tail shortfall** — damage in the newest segment is torn-tail
//!    equivalent, so replay silently truncates and the recovered tip
//!    falls short of the recorded one;
//! 4. **tip divergence** — a flip in the *tip block's* header passes
//!    every local structural rule (no successor pins the tip) and is only
//!    caught by comparing against the quorum-attested tip hash recorded
//!    before the damage (the paper's §V-B status-quo attestation).
//!
//! The matrix flips one bit in every byte of every segment file and
//! asserts no flip is silently absorbed.

use std::fs;
use std::path::{Path, PathBuf};

use seldel_chain::testutil::ScratchDir;
use seldel_chain::{
    validate_store_incremental, Block, BlockBody, BlockNumber, BlockStore, Blockchain, ChainError,
    DeleteRequest, Entry, EntryId, EntryNumber, FileStore, Seal, SummaryRecord, Timestamp,
};
use seldel_codec::{Codec, DataRecord};
use seldel_crypto::{Digest32, SigningKey};

/// Builds a durable chain mixing normal blocks, a delete request and a Σ
/// with records + tombstones, then closes it.
fn build_durable_chain(dir: &Path, blocks: u64) -> (BlockNumber, Digest32) {
    let key = SigningKey::from_seed([0x51; 32]);
    let store = FileStore::open_with_capacity(dir, 3).expect("store opens");
    let mut chain: Blockchain<FileStore> =
        Blockchain::with_genesis_in(store, Block::genesis("tamper-matrix", Timestamp(0)));
    for b in 1..=blocks {
        let prev = chain.tip().hash();
        let block = if b == 5 {
            let origin = chain.get(BlockNumber(3)).expect("block 3 live");
            let records = vec![SummaryRecord::from_entry(
                &origin.entries()[0],
                EntryId::new(BlockNumber(3), EntryNumber(0)),
                origin.timestamp(),
            )
            .expect("data entry")];
            let deletions = vec![EntryId::new(BlockNumber(3), EntryNumber(1))];
            Block::new(
                BlockNumber(b),
                chain.tip().timestamp(),
                prev,
                BlockBody::Summary {
                    records,
                    deletions,
                    anchor: None,
                },
                Seal::Deterministic,
            )
        } else {
            let mut entries = vec![
                Entry::sign_data(&key, DataRecord::new("evt").with("n", b)),
                Entry::sign_data(&key, DataRecord::new("evt").with("n", b + 100)),
            ];
            if b == 7 {
                entries.push(Entry::sign_delete(
                    &key,
                    DeleteRequest::new(EntryId::new(BlockNumber(6), EntryNumber(0)), "matrix"),
                ));
            }
            Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal { entries },
                Seal::Deterministic,
            )
        };
        chain.push(block).expect("valid link");
    }
    (chain.tip().number(), chain.tip().hash())
}

/// Segment files in deterministic order, with their bytes.
fn segments(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut out: Vec<(PathBuf, Vec<u8>)> = fs::read_dir(dir)
        .expect("dir readable")
        .filter_map(|e| {
            let path = e.expect("entry").path();
            let name = path.file_name()?.to_str()?.to_owned();
            (name.starts_with("seg-") && name.ends_with(".seg"))
                .then(|| (path.clone(), fs::read(&path).expect("segment readable")))
        })
        .collect();
    out.sort();
    out
}

/// Maps every byte offset of a segment to the block number whose frame
/// (length prefix included) covers it.
fn frame_owners(bytes: &[u8]) -> Vec<u64> {
    // v3 frame layout: u32 len | flags (1) | header hash (32) |
    // payload root (32) | checksum (32) | block bytes.
    const FRAME_HEADER_LEN: usize = 97;
    let mut owners = vec![u64::MAX; bytes.len()];
    let mut at = 0;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 4 + len;
        let block = Block::from_canonical_bytes(&bytes[at + 4 + FRAME_HEADER_LEN..end])
            .expect("frame decodes");
        for owner in owners.iter_mut().take(end).skip(at) {
            *owner = block.number().value();
        }
        at = end;
    }
    assert_eq!(at, bytes.len(), "segment fully framed");
    owners
}

/// The block number a `ChainError` attributes damage to.
fn flagged(err: &ChainError) -> Vec<u64> {
    match err {
        ChainError::PayloadMismatch { number }
        | ChainError::PrevHashMismatch { number }
        | ChainError::TimestampRegression { number }
        | ChainError::SummaryTimestampMismatch { number }
        | ChainError::GenesisMisplaced { number }
        | ChainError::TombstonesUnsorted { number } => vec![number.value()],
        ChainError::NonContiguousNumber { expected, found } => {
            vec![expected.value(), found.value()]
        }
        other => panic!("audit reported an unexpected error class: {other}"),
    }
}

#[test]
fn every_single_byte_corruption_is_detected() {
    let dir = ScratchDir::new("tamper-matrix");
    let (expected_tip, expected_tip_hash) = build_durable_chain(dir.path(), 9);

    let originals = segments(dir.path());
    assert!(originals.len() >= 3, "want a multi-segment store");
    let tail_segment = originals.last().expect("non-empty").0.clone();

    let mut audited = 0u64;
    for (path, bytes) in &originals {
        let owners = frame_owners(bytes);
        for offset in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[offset] ^= 1 << (offset % 8);
            fs::write(path, &tampered).expect("write tampered segment");
            let owner = owners[offset];
            audited += 1;

            let context = || format!("{} offset {offset} (block {owner})", path.display());
            match FileStore::open(dir.path()) {
                Err(_) => {} // channel 1: rejected at open
                Ok(store) => match validate_store_incremental(&store) {
                    Err(err) => {
                        // Channel 2: the audit names the tampered block or
                        // the successor whose prev_hash seals its header.
                        let blamed = flagged(&err);
                        assert!(
                            blamed.iter().any(|b| *b == owner || *b == owner + 1),
                            "{}: audit blamed {blamed:?}: {err}",
                            context()
                        );
                    }
                    Ok(_) => {
                        let tip = store.last().expect("non-empty store");
                        if tip.block().number() < BlockNumber(expected_tip.value()) {
                            // Channel 3: torn-tail truncation — only the
                            // newest segment can be silently shortened.
                            assert_eq!(
                                path,
                                &tail_segment,
                                "{}: non-tail segment silently truncated",
                                context()
                            );
                        } else {
                            // Channel 4: locally invisible tip-header flip;
                            // the recorded status-quo tip hash must differ.
                            assert_eq!(
                                owner,
                                expected_tip.value(),
                                "{}: clean audit for a non-tip block",
                                context()
                            );
                            assert_ne!(
                                tip.hash(),
                                expected_tip_hash,
                                "{}: corruption went completely undetected",
                                context()
                            );
                        }
                    }
                },
            }
            fs::write(path, bytes).expect("restore segment");
        }
    }
    assert!(audited > 1_000, "matrix too small to be meaningful");
}

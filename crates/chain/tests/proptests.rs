//! Property-based tests for the chain data model.

use proptest::prelude::*;

use seldel_chain::{
    validate_chain, Block, BlockBody, BlockNumber, Blockchain, Entry, EntryId, EntryNumber, Seal,
    SummaryRecord, Timestamp, ValidationOptions,
};
use seldel_codec::{Codec, DataRecord};
use seldel_crypto::SigningKey;

fn build_chain(block_count: u64, entries_per_block: u8) -> Blockchain {
    let key = SigningKey::from_seed([0x11; 32]);
    let mut chain = Blockchain::new(Block::genesis("prop", Timestamp(0)));
    for b in 1..=block_count {
        let prev = chain.tip().hash();
        let entries: Vec<Entry> = (0..entries_per_block)
            .map(|i| Entry::sign_data(&key, DataRecord::new("log").with("n", b * 100 + i as u64)))
            .collect();
        chain
            .push(Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal { entries },
                Seal::Deterministic,
            ))
            .expect("valid link");
    }
    chain
}

/// A chain mixing normal blocks with summary blocks: every 4th block is a
/// Σ carrying the first entry of the block two positions back, so the
/// index holds both `InBlock` and `InSummary` locations and marker shifts
/// exercise the newest-carrier-wins survivorship.
fn build_mixed_chain(block_count: u64) -> Blockchain {
    let key = SigningKey::from_seed([0x22; 32]);
    let mut chain = Blockchain::new(Block::genesis("shardprop", Timestamp(0)));
    for b in 1..=block_count {
        let prev = chain.tip().hash();
        let block = if b.is_multiple_of(4) {
            let mut records = Vec::new();
            let mut deletions = Vec::new();
            if let Some(origin_block) = chain.get(BlockNumber(b - 2)) {
                if let Some(entry) = origin_block.entries().first() {
                    let origin = EntryId::new(BlockNumber(b - 2), EntryNumber(0));
                    records.push(
                        SummaryRecord::from_entry(entry, origin, origin_block.timestamp())
                            .expect("data entry"),
                    );
                }
                // The sibling entry is "deleted" by this Σ: not carried,
                // tombstoned instead — so payload commitments and codecs
                // see non-empty deletion lists throughout these properties.
                deletions.push(EntryId::new(BlockNumber(b - 2), EntryNumber(1)));
            }
            // Σ repeats the predecessor timestamp (§IV-B).
            Block::new(
                BlockNumber(b),
                chain.tip().timestamp(),
                prev,
                BlockBody::Summary {
                    records,
                    deletions,
                    anchor: None,
                },
                Seal::Deterministic,
            )
        } else {
            let entries: Vec<Entry> = (0..2)
                .map(|i| {
                    Entry::sign_data(&key, DataRecord::new("log").with("n", b * 100 + i as u64))
                })
                .collect();
            Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal { entries },
                Seal::Deterministic,
            )
        };
        chain.push(block).expect("valid link");
    }
    chain
}

/// Per-block commitment fingerprint: number, seal-time cached root and the
/// header's committed root.
fn sealed_roots<S: seldel_chain::BlockStore>(
    chain: &Blockchain<S>,
) -> Vec<(
    u64,
    Option<seldel_crypto::Digest32>,
    seldel_crypto::Digest32,
)> {
    chain
        .iter_sealed()
        .map(|sealed| {
            (
                sealed.block().number().value(),
                sealed.payload_root(),
                sealed.block().header().payload_hash,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chains_validate_and_round_trip(blocks in 0u64..12, entries in 0u8..4) {
        let chain = build_chain(blocks, entries);
        validate_chain(&chain, &ValidationOptions::default()).expect("valid");
        // Export/import is lossless.
        let rebuilt = Blockchain::from_blocks(chain.export_blocks()).expect("relink");
        prop_assert_eq!(&rebuilt, &chain);
        prop_assert_eq!(rebuilt.export_bytes(), chain.export_bytes());
    }

    #[test]
    fn truncation_preserves_suffix_validity(blocks in 2u64..14, cut in 1u64..13) {
        let mut chain = build_chain(blocks, 1);
        let cut = cut.min(blocks); // marker within live range
        let removed = chain.truncate_front(BlockNumber(cut)).expect("in range");
        prop_assert_eq!(removed.len() as u64, cut);
        prop_assert_eq!(chain.marker(), BlockNumber(cut));
        prop_assert_eq!(chain.len(), blocks + 1 - cut);
        validate_chain(&chain, &ValidationOptions::default()).expect("suffix valid");
        // Pruned numbers resolve to nothing; live numbers resolve.
        if cut > 0 {
            prop_assert!(chain.get(BlockNumber(cut - 1)).is_none());
        }
        prop_assert!(chain.get(BlockNumber(cut)).is_some());
    }

    #[test]
    fn block_codec_round_trip(blocks in 1u64..6, entries in 0u8..4) {
        let chain = build_chain(blocks, entries);
        for block in chain.iter() {
            let bytes = block.block().to_canonical_bytes();
            let decoded = Block::from_canonical_bytes(&bytes).expect("decode");
            prop_assert_eq!(&decoded, block.block());
            prop_assert_eq!(decoded.hash(), block.block().hash());
        }
    }

    #[test]
    fn file_store_chains_survive_close_and_reopen(
        blocks in 1u64..14,
        entries in 0u8..3,
        cut in 0u64..10,
    ) {
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::FileStore;

        let dir = ScratchDir::new("chainprop");

        // Identical chains: in-memory reference and a disk-rooted store.
        let reference = build_chain(blocks, entries);
        let store = FileStore::open_with_capacity(dir.path(), 4).expect("store opens");
        let mut exported = reference.export_blocks().into_iter();
        let mut durable: Blockchain<FileStore> =
            Blockchain::with_genesis_in(store, exported.next().expect("genesis"));
        for block in exported {
            durable.push(block).expect("valid link");
        }
        // Optionally shift the marker so the reopened chain starts mid-way.
        let mut reference = reference;
        let cut = cut.min(blocks);
        if cut > 0 {
            reference.truncate_front(BlockNumber(cut)).expect("in range");
            durable.truncate_front(BlockNumber(cut)).expect("in range");
        }
        prop_assert_eq!(reference.export_bytes(), durable.export_bytes());

        // Close, reopen, reconstruct: bit-identical to the reference.
        drop(durable);
        let reopened =
            Blockchain::from_store(FileStore::open(dir.path()).expect("reopen")).expect("valid chain");
        prop_assert_eq!(reference.export_bytes(), reopened.export_bytes());
        prop_assert_eq!(reference.tip_hash(), reopened.tip_hash());
        prop_assert_eq!(reopened.entry_index(), &reopened.rebuilt_index());
        prop_assert!(reopened.verify_cached_hashes());
        validate_chain(&reopened, &ValidationOptions::default()).expect("valid");
    }

    /// Satellite of the shard subsystem PR, extending the PR 2 index
    /// property tests to the **retire path**: under randomized marker-shift
    /// sequences, the incrementally maintained (sharded) index must stay
    /// equal to a from-scratch rebuild — on all three backends, at every
    /// shard count, with summary-carried records in the mix so
    /// `retire_before` has both survivors and casualties to judge.
    #[test]
    fn retire_before_matches_full_rebuild_under_random_marker_shifts(
        blocks in 8u64..40,
        cuts in proptest::collection::vec(1u64..7, 1..5),
        shard_pow in 0u32..5,
    ) {
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::{FileStore, MemStore, SegStore};

        let shards = 1usize << shard_pow;
        let source = build_mixed_chain(blocks);
        let dir = ScratchDir::new("retireprop");
        let file_store = FileStore::open_with_capacity(dir.path(), 4).expect("store opens");

        // Identical chains on all three backends.
        let mut mem: Blockchain<MemStore> =
            Blockchain::assemble(source.export_blocks()).expect("relink");
        let mut seg: Blockchain<SegStore> =
            Blockchain::assemble(source.export_blocks()).expect("relink");
        let mut exported = source.export_blocks().into_iter();
        let mut file: Blockchain<FileStore> =
            Blockchain::with_genesis_in(file_store, exported.next().expect("genesis"));
        for block in exported {
            file.push(block).expect("valid link");
        }
        mem.reshard(shards);
        seg.reshard(shards);
        file.reshard(shards);

        // Probe every id that was ever indexed (survivors and casualties).
        let probes: Vec<EntryId> = mem.rebuilt_index().iter().map(|(id, _)| id).collect();

        let mut marker = 0u64;
        for cut in cuts {
            marker = (marker + cut).min(blocks); // never past the tip
            mem.truncate_front(BlockNumber(marker)).expect("live marker");
            seg.truncate_front(BlockNumber(marker)).expect("live marker");
            file.truncate_front(BlockNumber(marker)).expect("live marker");

            // The incrementally retired index equals a full rebuild...
            let oracle = mem.rebuilt_index();
            prop_assert_eq!(mem.entry_index(), &oracle);
            prop_assert_eq!(seg.entry_index(), &oracle);
            prop_assert_eq!(file.entry_index(), &oracle);
            // ...and answers every probe exactly like the oracle.
            for id in &probes {
                prop_assert_eq!(mem.entry_index().get(*id), oracle.get(*id), "id {}", id);
                prop_assert_eq!(mem.locate(*id), mem.locate_scan(*id), "id {}", id);
            }
            prop_assert_eq!(mem.export_bytes(), seg.export_bytes());
            prop_assert_eq!(mem.export_bytes(), file.export_bytes());
        }

        // Close/reopen the durable backend mid-history: the parallel
        // rebuild on recovery reproduces the maintained state.
        drop(file);
        let reopened = Blockchain::from_store_with_shards(
            FileStore::open(dir.path()).expect("reopen"),
            shards,
        )
        .expect("valid chain");
        prop_assert_eq!(reopened.entry_index(), &mem.rebuilt_index());
        for id in &probes {
            prop_assert_eq!(reopened.locate(*id), mem.locate(*id), "id {}", id);
        }
    }

    /// Merkle commitments are backend-independent: the payload roots
    /// cached at seal time on `MemStore` equal the `SegStore` roots at
    /// random shard counts and the `FileStore` roots — before and after a
    /// marker shift, and across a close-and-replay cycle where the durable
    /// backend re-derives every root from raw frame bytes.
    #[test]
    fn payload_roots_agree_across_backends(
        blocks in 4u64..24,
        shard_pow in 0u32..5,
        cut in 0u64..8,
    ) {
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::{validate_store_incremental, FileStore, MemStore, SegStore};

        let shards = 1usize << shard_pow;
        let source = build_mixed_chain(blocks);
        let dir = ScratchDir::new("rootprop");
        let file_store = FileStore::open_with_capacity(dir.path(), 4).expect("store opens");

        let mut mem: Blockchain<MemStore> =
            Blockchain::assemble(source.export_blocks()).expect("relink");
        let mut seg: Blockchain<SegStore> =
            Blockchain::assemble(source.export_blocks()).expect("relink");
        let mut exported = source.export_blocks().into_iter();
        let mut file: Blockchain<FileStore> =
            Blockchain::with_genesis_in(file_store, exported.next().expect("genesis"));
        for block in exported {
            file.push(block).expect("valid link");
        }
        seg.reshard(shards);

        let cut = cut.min(blocks);
        if cut > 0 {
            mem.truncate_front(BlockNumber(cut)).expect("in range");
            seg.truncate_front(BlockNumber(cut)).expect("in range");
            file.truncate_front(BlockNumber(cut)).expect("in range");
        }

        let oracle = sealed_roots(&mem);
        // Every seal-time root is cached and matches the committed header.
        for (number, cached, committed) in &oracle {
            prop_assert_eq!(cached.as_ref(), Some(committed), "block {}", number);
        }
        prop_assert_eq!(&sealed_roots(&seg), &oracle);
        prop_assert_eq!(&sealed_roots(&file), &oracle);

        // Close and replay: the durable backend re-derives identical roots
        // from raw bytes, and the audit sees them all as cached.
        drop(file);
        let reopened_store = FileStore::open(dir.path()).expect("reopen");
        let audit = validate_store_incremental(&reopened_store).expect("clean audit");
        prop_assert_eq!(audit.roots_cached, oracle.len() as u64);
        prop_assert_eq!(audit.roots_recomputed, 0);
        let reopened = Blockchain::from_store(reopened_store).expect("valid chain");
        prop_assert_eq!(&sealed_roots(&reopened), &oracle);
    }

    #[test]
    fn tampering_any_block_breaks_validation(blocks in 2u64..10, victim in 1u64..9) {
        let chain = build_chain(blocks, 1);
        let victim = victim.min(blocks);
        // Rebuild with one block's timestamp nudged — every later prev_hash
        // breaks, so from_blocks or validation must fail.
        let mut exported = chain.export_blocks();
        let idx = victim as usize;
        let original = &exported[idx];
        let tampered = Block::new(
            original.number(),
            original.timestamp() + 1,
            original.header().prev_hash,
            original.body().clone(),
            Seal::Deterministic,
        );
        exported[idx] = tampered;
        let outcome = Blockchain::from_blocks(exported);
        match outcome {
            Err(_) => {} // rejected at link time (expected when victim < tip)
            Ok(rebuilt) => {
                // Tampering the tip keeps links intact; the chain is then
                // still structurally valid but must differ from the original.
                prop_assert_ne!(rebuilt.tip().hash(), chain.tip().hash());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paged `FileStore` against the `MemStore` oracle: random
    /// push/drain/get/reopen sequences at tiny hot-cache capacities (0,
    /// 1, segment capacity − 1) so every read path — resident tail,
    /// cache hit, cold page-in — and the offset arithmetic under
    /// partially pruned front segments are exercised, with eviction
    /// constantly churning.
    #[test]
    fn paged_file_store_matches_mem_store_oracle(
        ops in proptest::collection::vec((0u8..4, 0u8..8), 1..40),
        cache_sel in 0usize..3,
        probes in proptest::collection::vec(0u8..64, 4..5),
    ) {
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::{BlockStore, FileStore, MemStore, SealedBlock};

        let cache = [0usize, 1, 3][cache_sel]; // segment capacity is 4
        let dir = ScratchDir::new("pagedoracle");
        let mut oracle = MemStore::default();
        let mut paged = FileStore::open_with_capacity(dir.path(), 4)
            .expect("store opens")
            .with_hot_cache_capacity(cache);
        let key = SigningKey::from_seed([0x33; 32]);
        let mut next = 0u64;

        for (op, arg) in ops {
            match op {
                // Push the next contiguous block (entry payloads make the
                // blocks non-trivial so byte sizes and roots differ).
                0 | 1 => {
                    let entries = vec![Entry::sign_data(
                        &key,
                        DataRecord::new("log").with("n", next),
                    )];
                    let block = SealedBlock::seal(Block::new(
                        BlockNumber(next),
                        Timestamp(next * 10),
                        seldel_crypto::sha256(next.to_le_bytes()),
                        BlockBody::Normal { entries },
                        Seal::Deterministic,
                    ));
                    next += 1;
                    oracle.push(block.clone());
                    paged.push(block);
                }
                // Drain up to `arg` blocks from the front.
                2 => {
                    let removed_mem = oracle.drain_front(arg as usize);
                    let removed_file = paged.drain_front(arg as usize);
                    prop_assert_eq!(removed_mem, removed_file);
                }
                // Close and reopen the paged store at the same capacity.
                _ => {
                    drop(paged);
                    paged = FileStore::open(dir.path())
                        .expect("reopen succeeds")
                        .with_hot_cache_capacity(cache);
                }
            }
            // Full agreement after every step.
            prop_assert_eq!(paged.len(), oracle.len());
            prop_assert!(paged.iter().eq(oracle.iter()), "iter order diverged");
            for p in &probes {
                let i = *p as usize;
                prop_assert_eq!(paged.get(i), oracle.get(i), "index {}", i);
                prop_assert_eq!(paged.hash_at(i), oracle.hash_at(i), "hash {}", i);
            }
            prop_assert_eq!(paged.first(), oracle.first());
            prop_assert_eq!(paged.last(), oracle.last());
        }

        // One final close/reopen: the replayed table serves everything.
        drop(paged);
        let reopened = FileStore::open(dir.path())
            .expect("reopen succeeds")
            .with_hot_cache_capacity(cache);
        prop_assert_eq!(reopened.len(), oracle.len());
        prop_assert!(reopened.iter().eq(oracle.iter()));
        for i in 0..oracle.len() {
            prop_assert_eq!(reopened.get(i), oracle.get(i), "index {}", i);
        }
    }
}

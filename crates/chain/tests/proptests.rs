//! Property-based tests for the chain data model.

use proptest::prelude::*;

use seldel_chain::{
    validate_chain, Block, BlockBody, BlockNumber, Blockchain, Entry, Seal, Timestamp,
    ValidationOptions,
};
use seldel_codec::{Codec, DataRecord};
use seldel_crypto::SigningKey;

fn build_chain(block_count: u64, entries_per_block: u8) -> Blockchain {
    let key = SigningKey::from_seed([0x11; 32]);
    let mut chain = Blockchain::new(Block::genesis("prop", Timestamp(0)));
    for b in 1..=block_count {
        let prev = chain.tip().hash();
        let entries: Vec<Entry> = (0..entries_per_block)
            .map(|i| Entry::sign_data(&key, DataRecord::new("log").with("n", b * 100 + i as u64)))
            .collect();
        chain
            .push(Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal { entries },
                Seal::Deterministic,
            ))
            .expect("valid link");
    }
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chains_validate_and_round_trip(blocks in 0u64..12, entries in 0u8..4) {
        let chain = build_chain(blocks, entries);
        validate_chain(&chain, &ValidationOptions::default()).expect("valid");
        // Export/import is lossless.
        let rebuilt = Blockchain::from_blocks(chain.export_blocks()).expect("relink");
        prop_assert_eq!(&rebuilt, &chain);
        prop_assert_eq!(rebuilt.export_bytes(), chain.export_bytes());
    }

    #[test]
    fn truncation_preserves_suffix_validity(blocks in 2u64..14, cut in 1u64..13) {
        let mut chain = build_chain(blocks, 1);
        let cut = cut.min(blocks); // marker within live range
        let removed = chain.truncate_front(BlockNumber(cut)).expect("in range");
        prop_assert_eq!(removed.len() as u64, cut);
        prop_assert_eq!(chain.marker(), BlockNumber(cut));
        prop_assert_eq!(chain.len(), blocks + 1 - cut);
        validate_chain(&chain, &ValidationOptions::default()).expect("suffix valid");
        // Pruned numbers resolve to nothing; live numbers resolve.
        if cut > 0 {
            prop_assert!(chain.get(BlockNumber(cut - 1)).is_none());
        }
        prop_assert!(chain.get(BlockNumber(cut)).is_some());
    }

    #[test]
    fn block_codec_round_trip(blocks in 1u64..6, entries in 0u8..4) {
        let chain = build_chain(blocks, entries);
        for block in chain.iter() {
            let bytes = block.to_canonical_bytes();
            let decoded = Block::from_canonical_bytes(&bytes).expect("decode");
            prop_assert_eq!(&decoded, block);
            prop_assert_eq!(decoded.hash(), block.hash());
        }
    }

    #[test]
    fn tampering_any_block_breaks_validation(blocks in 2u64..10, victim in 1u64..9) {
        let chain = build_chain(blocks, 1);
        let victim = victim.min(blocks);
        // Rebuild with one block's timestamp nudged — every later prev_hash
        // breaks, so from_blocks or validation must fail.
        let mut exported = chain.export_blocks();
        let idx = victim as usize;
        let original = &exported[idx];
        let tampered = Block::new(
            original.number(),
            original.timestamp() + 1,
            original.header().prev_hash,
            original.body().clone(),
            Seal::Deterministic,
        );
        exported[idx] = tampered;
        let outcome = Blockchain::from_blocks(exported);
        match outcome {
            Err(_) => {} // rejected at link time (expected when victim < tip)
            Ok(rebuilt) => {
                // Tampering the tip keeps links intact; the chain is then
                // still structurally valid but must differ from the original.
                prop_assert_ne!(rebuilt.tip().hash(), chain.tip().hash());
            }
        }
    }
}

//! The deletion registry: tracks every accepted deletion request from the
//! moment it is marked until its target is physically dropped (§IV-D3,
//! "delayed deletion").

use std::collections::BTreeMap;

use seldel_chain::{BlockNumber, EntryId, Timestamp};
use seldel_crypto::VerifyingKey;

/// Lifecycle of a deletion request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionStatus {
    /// Accepted; the target is marked and will be dropped at the next merge
    /// that retires its sequence.
    Pending,
    /// The target was physically dropped (not copied into a summary block).
    Executed {
        /// Virtual time of the merge that dropped the target.
        at: Timestamp,
    },
}

/// One accepted deletion request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletionRecord {
    /// The data set to delete.
    pub target: EntryId,
    /// Who requested it.
    pub requester: VerifyingKey,
    /// Where the request entry itself lives.
    pub request_entry: EntryId,
    /// When the request was marked.
    pub requested_at: Timestamp,
    /// Current status.
    pub status: DeletionStatus,
}

/// Registry of accepted (marked) deletions, keyed by target id.
///
/// The registry is derived deterministically from chain contents, so every
/// honest node reconstructs the same registry from the same chain — a
/// requirement for identical summary blocks (§IV-B).
#[derive(Debug, Clone, Default)]
pub struct DeletionRegistry {
    records: BTreeMap<EntryId, DeletionRecord>,
}

impl DeletionRegistry {
    /// Creates an empty registry.
    pub fn new() -> DeletionRegistry {
        DeletionRegistry::default()
    }

    /// Marks `target` for deletion.
    ///
    /// Returns `false` when the target is already marked (the second
    /// request has no effect).
    pub fn mark(
        &mut self,
        target: EntryId,
        requester: VerifyingKey,
        request_entry: EntryId,
        requested_at: Timestamp,
    ) -> bool {
        if self.records.contains_key(&target) {
            return false;
        }
        self.records.insert(
            target,
            DeletionRecord {
                target,
                requester,
                request_entry,
                requested_at,
                status: DeletionStatus::Pending,
            },
        );
        true
    }

    /// Whether `target` is marked (pending) or already executed.
    pub fn is_marked(&self, target: EntryId) -> bool {
        self.records.contains_key(&target)
    }

    /// Whether `target` is pending execution.
    pub fn is_pending(&self, target: EntryId) -> bool {
        matches!(
            self.records.get(&target).map(|r| r.status),
            Some(DeletionStatus::Pending)
        )
    }

    /// Transitions a pending mark to executed. Returns `true` when the
    /// transition happened.
    pub fn execute(&mut self, target: EntryId, at: Timestamp) -> bool {
        match self.records.get_mut(&target) {
            Some(record) if record.status == DeletionStatus::Pending => {
                record.status = DeletionStatus::Executed { at };
                true
            }
            _ => false,
        }
    }

    /// Compacts executed records whose targets fell behind the genesis
    /// marker, returning how many were dropped.
    ///
    /// Without compaction the registry grows without bound on a
    /// long-running chain even though the chain itself is capped at
    /// l_max: every executed deletion leaves a record forever. An
    /// executed record's target was physically dropped by a merge, so
    /// its block number is always behind the post-merge marker — and the
    /// same evidence survives compaction on chain (the Σ tombstone and
    /// the payload commitment prove absence in O(log n)). Compacting
    /// here also keeps the long-running registry **derivable
    /// bit-identically across close/reopen**: recovery replays only live
    /// blocks, where executed requests re-validate as target-not-found
    /// and leave no record, so a reopened registry holds exactly the
    /// pending marks. Pending records are never touched (their request
    /// entries are still live — a request cannot outlive its target's
    /// sequence without executing).
    pub fn compact_executed(&mut self, marker: BlockNumber) -> usize {
        let before = self.records.len();
        self.records.retain(|target, record| {
            record.status == DeletionStatus::Pending || target.block >= marker
        });
        before - self.records.len()
    }

    /// Looks up the record for a target.
    pub fn get(&self, target: EntryId) -> Option<&DeletionRecord> {
        self.records.get(&target)
    }

    /// All records, ordered by target id.
    pub fn iter(&self) -> impl Iterator<Item = &DeletionRecord> {
        self.records.values()
    }

    /// Number of pending deletions.
    pub fn pending_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.status == DeletionStatus::Pending)
            .count()
    }

    /// Number of executed deletions.
    pub fn executed_count(&self) -> usize {
        self.records.len() - self.pending_count()
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{BlockNumber, EntryNumber};
    use seldel_crypto::SigningKey;

    fn id(b: u64, e: u32) -> EntryId {
        EntryId::new(BlockNumber(b), EntryNumber(e))
    }

    fn requester() -> VerifyingKey {
        SigningKey::from_seed([5u8; 32]).verifying_key()
    }

    #[test]
    fn mark_and_execute_lifecycle() {
        let mut reg = DeletionRegistry::new();
        assert!(reg.mark(id(3, 1), requester(), id(6, 0), Timestamp(60)));
        assert!(reg.is_marked(id(3, 1)));
        assert!(reg.is_pending(id(3, 1)));
        assert_eq!(reg.pending_count(), 1);

        assert!(reg.execute(id(3, 1), Timestamp(80)));
        assert!(reg.is_marked(id(3, 1)));
        assert!(!reg.is_pending(id(3, 1)));
        assert_eq!(reg.executed_count(), 1);
        assert_eq!(
            reg.get(id(3, 1)).unwrap().status,
            DeletionStatus::Executed { at: Timestamp(80) }
        );
    }

    #[test]
    fn duplicate_mark_rejected() {
        let mut reg = DeletionRegistry::new();
        assert!(reg.mark(id(3, 1), requester(), id(6, 0), Timestamp(60)));
        assert!(!reg.mark(id(3, 1), requester(), id(7, 0), Timestamp(70)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn execute_unmarked_is_noop() {
        let mut reg = DeletionRegistry::new();
        assert!(!reg.execute(id(1, 0), Timestamp(10)));
        assert!(reg.is_empty());
    }

    #[test]
    fn double_execute_is_noop() {
        let mut reg = DeletionRegistry::new();
        reg.mark(id(3, 1), requester(), id(6, 0), Timestamp(60));
        assert!(reg.execute(id(3, 1), Timestamp(80)));
        assert!(!reg.execute(id(3, 1), Timestamp(90)));
        // First execution time wins.
        assert_eq!(
            reg.get(id(3, 1)).unwrap().status,
            DeletionStatus::Executed { at: Timestamp(80) }
        );
    }

    #[test]
    fn compaction_drops_executed_behind_marker_only() {
        let mut reg = DeletionRegistry::new();
        reg.mark(id(3, 1), requester(), id(6, 0), Timestamp(60));
        reg.mark(id(4, 0), requester(), id(6, 1), Timestamp(60));
        reg.mark(id(9, 0), requester(), id(10, 0), Timestamp(100));
        reg.execute(id(3, 1), Timestamp(80));
        reg.execute(id(9, 0), Timestamp(110));

        // Marker 6: executed 3:1 is behind and goes; executed 9:0 is ahead
        // and stays; pending 4:0 is behind but pending records are kept.
        assert_eq!(reg.compact_executed(BlockNumber(6)), 1);
        assert!(!reg.is_marked(id(3, 1)));
        assert!(reg.is_pending(id(4, 0)));
        assert!(reg.is_marked(id(9, 0)));
        assert_eq!(reg.len(), 2);

        // Idempotent at the same marker.
        assert_eq!(reg.compact_executed(BlockNumber(6)), 0);
        // A later marker sweeps the remaining executed record.
        assert_eq!(reg.compact_executed(BlockNumber(10)), 1);
        assert_eq!(reg.len(), 1);
        assert!(reg.is_pending(id(4, 0)));
    }

    #[test]
    fn iteration_ordered_by_target() {
        let mut reg = DeletionRegistry::new();
        reg.mark(id(9, 0), requester(), id(10, 0), Timestamp(1));
        reg.mark(id(3, 1), requester(), id(10, 1), Timestamp(2));
        reg.mark(id(3, 0), requester(), id(10, 2), Timestamp(3));
        let targets: Vec<EntryId> = reg.iter().map(|r| r.target).collect();
        assert_eq!(targets, vec![id(3, 0), id(3, 1), id(9, 0)]);
    }
}

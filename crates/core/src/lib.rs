//! **Selective deletion in a blockchain** — the primary contribution of
//! Hillmann et al. (ICDCS 2020), as a reusable Rust library.
//!
//! The concept extends any blockchain with:
//!
//! * **Summary blocks Σ** ([`summary`]) created deterministically by every
//!   node at each l-th slot (§IV-B);
//! * **Bounded chain length** ([`retention`]): once the live chain exceeds
//!   l_max, the oldest sequences are merged into the next summary block,
//!   the genesis marker shifts, and the old blocks are cut (§IV-C, Fig. 3);
//! * **Selective deletion on request** ([`deletion`], [`authz`],
//!   [`cohesion`]): signed deletion entries referencing `(block α, entry)`,
//!   authorised by signature match / role / quorum master signature,
//!   checked for semantic cohesion, and executed *with delay* by not
//!   copying the target into the merging summary block (§IV-D, Fig. 5);
//! * **Temporary entries** with τ/α expiry that clean themselves up
//!   (§IV-D4);
//! * **Idle filler blocks** bounding deletion latency (§IV-D3);
//! * **51 %-attack hampering** via middle-sequence Merkle anchors (Fig. 9).
//!
//! The central type is [`SelectiveLedger`]; everything else supports it.
//!
//! # Quickstart
//!
//! ```
//! use seldel_core::{ChainConfig, SelectiveLedger};
//! use seldel_chain::{Entry, EntryId, BlockNumber, EntryNumber, Timestamp};
//! use seldel_codec::DataRecord;
//! use seldel_crypto::SigningKey;
//!
//! let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
//! let bravo = SigningKey::from_seed([2u8; 32]);
//!
//! // Write.
//! ledger.submit_entry(Entry::sign_data(
//!     &bravo,
//!     DataRecord::new("login").with("user", "BRAVO"),
//! ))?;
//! ledger.seal_block(Timestamp(10))?;
//!
//! // Request deletion of the entry just written (block 1, entry 0).
//! let target = EntryId::new(BlockNumber(1), EntryNumber(0));
//! ledger.request_deletion(&bravo, target, "GDPR Art. 17")?;
//! ledger.seal_block(Timestamp(20))?;
//!
//! // The mark is delayed deletion: the record vanishes physically once its
//! // sequence is merged into a summary block.
//! assert!(!ledger.is_live(target));
//! # Ok::<(), seldel_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authz;
pub mod cohesion;
pub mod config;
pub mod deletion;
pub mod error;
pub mod events;
pub mod ledger;
pub mod offchain;
pub mod policy;
pub mod retention;
pub mod sequence;
pub mod summary;

pub use authz::{authorize_deletion, AuthzError, MasterKeySet, Role, RoleTable};
pub use cohesion::{
    BellLaPadula, BrewerNash, CohesionContext, CohesionPolicy, CohesionViolation, DependencyPolicy,
};
pub use config::{AnchorPolicy, ChainConfig, IdleFillPolicy, RetentionPolicy, RetireMode};
pub use deletion::{DeletionRecord, DeletionRegistry, DeletionStatus};
pub use error::CoreError;
pub use events::LedgerEvent;
pub use ledger::{LedgerStats, SelectiveLedger, SelectiveLedgerBuilder};
pub use offchain::{ContentStore, OffChainError, OFFCHAIN_SCHEMA, OFFCHAIN_SCHEMA_YAML};
pub use policy::{
    sweep_candidates, Candidate, CompiledPolicy, DeletionPlan, PolicyError, Selector, TenantSlice,
    TtlClass, MAX_SELECTOR_DEPTH,
};
pub use retention::{plan_retirement, RetirePlan};
pub use sequence::{live_sequences, middle_sequence, sequence_of, SequenceSpan};
pub use summary::{build_summary_block, SummaryOutcome};

//! Deletion authorisation (§IV-D1).
//!
//! "To ensure that the user is authorized to have the information deleted, a
//! deletion request must be signed with the client signature just like a
//! normal entries. For authorization of privileges, it can be applied a
//! role-based concept … the anchor nodes of the quorum work together as a
//! basis of trust and are jointly granted full administrative privileges.
//! These receive a master signature. … a user is only allowed to submit
//! delete requests for his own transactions."

use std::collections::BTreeMap;
use std::fmt;

use seldel_chain::DeleteRequest;
use seldel_crypto::VerifyingKey;

/// Role of a participant in the role-based deletion concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// May delete only own entries (signature match).
    #[default]
    User,
    /// Full administrative privileges (quorum / master role).
    Admin,
    /// Read-only observer; may not request deletions at all.
    Auditor,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Role::User => "user",
            Role::Admin => "admin",
            Role::Auditor => "auditor",
        };
        f.write_str(name)
    }
}

/// Maps participant keys to roles; unknown keys get the default role.
#[derive(Debug, Clone, Default)]
pub struct RoleTable {
    roles: BTreeMap<[u8; 32], Role>,
    default_role: Role,
}

impl RoleTable {
    /// Creates a table where unknown keys are plain users.
    pub fn new() -> RoleTable {
        RoleTable::default()
    }

    /// Sets the role for unknown keys.
    pub fn with_default_role(mut self, role: Role) -> RoleTable {
        self.default_role = role;
        self
    }

    /// Assigns a role to a key.
    pub fn assign(&mut self, key: VerifyingKey, role: Role) {
        self.roles.insert(key.to_bytes(), role);
    }

    /// Builder-style [`RoleTable::assign`].
    pub fn with(mut self, key: VerifyingKey, role: Role) -> RoleTable {
        self.assign(key, role);
        self
    }

    /// The role of `key`.
    pub fn role_of(&self, key: &VerifyingKey) -> Role {
        self.roles
            .get(&key.to_bytes())
            .copied()
            .unwrap_or(self.default_role)
    }
}

/// The quorum's master-signature configuration: `threshold` of `members`
/// must co-sign a deletion for it to carry administrative authority.
#[derive(Debug, Clone)]
pub struct MasterKeySet {
    members: Vec<VerifyingKey>,
    threshold: usize,
}

impl MasterKeySet {
    /// Creates a k-of-n master key set.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is zero or exceeds the member count.
    pub fn new(members: Vec<VerifyingKey>, threshold: usize) -> MasterKeySet {
        assert!(
            threshold >= 1 && threshold <= members.len(),
            "threshold {threshold} out of range for {} members",
            members.len()
        );
        MasterKeySet { members, threshold }
    }

    /// The member keys.
    pub fn members(&self) -> &[VerifyingKey] {
        &self.members
    }

    /// Required number of member co-signatures.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Counts valid member co-signatures on a deletion request and checks
    /// the threshold. Co-signatures from non-members or with bad signatures
    /// are ignored; duplicates count once.
    pub fn approves(&self, request: &DeleteRequest) -> bool {
        let message = request.cosign_message();
        let mut approved: Vec<[u8; 32]> = Vec::new();
        for co in request.cosignatures() {
            if !self.members.contains(&co.signer) {
                continue;
            }
            if approved.contains(&co.signer.to_bytes()) {
                continue;
            }
            if co.signer.verify(&message, &co.signature).is_ok() {
                approved.push(co.signer.to_bytes());
            }
        }
        approved.len() >= self.threshold
    }
}

/// Why a deletion request was refused authorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    /// A plain user tried to delete someone else's entry.
    NotOwner {
        /// The requester.
        requester: VerifyingKey,
        /// The entry's author.
        owner: VerifyingKey,
    },
    /// Auditors may not request deletions.
    RoleForbidsDeletion(Role),
    /// Administrative deletion claimed but the master threshold was not met.
    MasterThresholdNotMet {
        /// Valid member co-signatures found.
        got: usize,
        /// Required co-signatures.
        needed: usize,
    },
}

impl fmt::Display for AuthzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthzError::NotOwner { .. } => {
                f.write_str("requester is not the owner of the target entry")
            }
            AuthzError::RoleForbidsDeletion(role) => {
                write!(f, "role {role} may not request deletions")
            }
            AuthzError::MasterThresholdNotMet { got, needed } => {
                write!(f, "master signature threshold not met ({got}/{needed})")
            }
        }
    }
}

impl std::error::Error for AuthzError {}

/// Decides whether `requester` may delete an entry authored by `owner`.
///
/// Decision ladder (§IV-D1):
/// 1. Admins may delete anything.
/// 2. Auditors may delete nothing.
/// 3. Users may delete their own entries (signature keys match).
/// 4. Otherwise, a quorum master signature on the request grants the
///    deletion (k-of-n member co-signatures).
///
/// # Errors
///
/// Returns an [`AuthzError`] naming the failed rule.
pub fn authorize_deletion(
    requester: &VerifyingKey,
    owner: &VerifyingKey,
    roles: &RoleTable,
    master: Option<&MasterKeySet>,
    request: &DeleteRequest,
) -> Result<(), AuthzError> {
    match roles.role_of(requester) {
        Role::Admin => Ok(()),
        Role::Auditor => Err(AuthzError::RoleForbidsDeletion(Role::Auditor)),
        Role::User => {
            if requester == owner {
                return Ok(());
            }
            if let Some(master) = master {
                if master.approves(request) {
                    return Ok(());
                }
                return Err(AuthzError::MasterThresholdNotMet {
                    got: request
                        .cosignatures()
                        .iter()
                        .filter(|co| {
                            master.members().contains(&co.signer)
                                && co
                                    .signer
                                    .verify(&request.cosign_message(), &co.signature)
                                    .is_ok()
                        })
                        .count(),
                    needed: master.threshold(),
                });
            }
            Err(AuthzError::NotOwner {
                requester: *requester,
                owner: *owner,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{BlockNumber, EntryId, EntryNumber};
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn request() -> DeleteRequest {
        DeleteRequest::new(EntryId::new(BlockNumber(3), EntryNumber(1)), "test")
    }

    #[test]
    fn owner_may_delete_own_entry() {
        let alice = key(1);
        let roles = RoleTable::new();
        authorize_deletion(
            &alice.verifying_key(),
            &alice.verifying_key(),
            &roles,
            None,
            &request(),
        )
        .unwrap();
    }

    #[test]
    fn user_may_not_delete_foreign_entry() {
        let alice = key(1);
        let bob = key(2);
        let roles = RoleTable::new();
        let err = authorize_deletion(
            &alice.verifying_key(),
            &bob.verifying_key(),
            &roles,
            None,
            &request(),
        )
        .unwrap_err();
        assert!(matches!(err, AuthzError::NotOwner { .. }));
    }

    #[test]
    fn admin_may_delete_anything() {
        let admin = key(3);
        let bob = key(2);
        let roles = RoleTable::new().with(admin.verifying_key(), Role::Admin);
        authorize_deletion(
            &admin.verifying_key(),
            &bob.verifying_key(),
            &roles,
            None,
            &request(),
        )
        .unwrap();
    }

    #[test]
    fn auditor_may_delete_nothing() {
        let auditor = key(4);
        let roles = RoleTable::new().with(auditor.verifying_key(), Role::Auditor);
        let err = authorize_deletion(
            &auditor.verifying_key(),
            &auditor.verifying_key(),
            &roles,
            None,
            &request(),
        )
        .unwrap_err();
        assert_eq!(err, AuthzError::RoleForbidsDeletion(Role::Auditor));
    }

    #[test]
    fn master_signature_grants_foreign_deletion() {
        let alice = key(1);
        let bob = key(2);
        let q1 = key(10);
        let q2 = key(11);
        let q3 = key(12);
        let master = MasterKeySet::new(
            vec![q1.verifying_key(), q2.verifying_key(), q3.verifying_key()],
            2,
        );
        let mut req = request();
        let msg = req.cosign_message();
        req = req
            .with_cosignature(q1.verifying_key(), q1.sign(&msg))
            .with_cosignature(q3.verifying_key(), q3.sign(&msg));
        authorize_deletion(
            &alice.verifying_key(),
            &bob.verifying_key(),
            &RoleTable::new(),
            Some(&master),
            &req,
        )
        .unwrap();
    }

    #[test]
    fn master_threshold_not_met() {
        let alice = key(1);
        let bob = key(2);
        let q1 = key(10);
        let q2 = key(11);
        let master = MasterKeySet::new(vec![q1.verifying_key(), q2.verifying_key()], 2);
        let mut req = request();
        let msg = req.cosign_message();
        req = req.with_cosignature(q1.verifying_key(), q1.sign(&msg));
        let err = authorize_deletion(
            &alice.verifying_key(),
            &bob.verifying_key(),
            &RoleTable::new(),
            Some(&master),
            &req,
        )
        .unwrap_err();
        assert_eq!(err, AuthzError::MasterThresholdNotMet { got: 1, needed: 2 });
    }

    #[test]
    fn non_member_and_invalid_cosignatures_ignored() {
        let outsider = key(20);
        let q1 = key(10);
        let q2 = key(11);
        let master = MasterKeySet::new(vec![q1.verifying_key(), q2.verifying_key()], 1);
        let mut req = request();
        // Outsider signature (valid but not a member) and a bad member sig.
        let msg = req.cosign_message();
        req = req
            .with_cosignature(outsider.verifying_key(), outsider.sign(&msg))
            .with_cosignature(q1.verifying_key(), q1.sign(b"wrong message"));
        assert!(!master.approves(&req));
    }

    #[test]
    fn duplicate_cosignatures_count_once() {
        let q1 = key(10);
        let q2 = key(11);
        let master = MasterKeySet::new(vec![q1.verifying_key(), q2.verifying_key()], 2);
        let mut req = request();
        let msg = req.cosign_message();
        let sig = q1.sign(&msg);
        req = req
            .with_cosignature(q1.verifying_key(), sig)
            .with_cosignature(q1.verifying_key(), sig);
        assert!(!master.approves(&req));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        MasterKeySet::new(vec![key(1).verifying_key()], 0);
    }

    #[test]
    fn role_table_default_role() {
        let table = RoleTable::new().with_default_role(Role::Auditor);
        assert_eq!(table.role_of(&key(9).verifying_key()), Role::Auditor);
        assert_eq!(Role::Admin.to_string(), "admin");
    }
}

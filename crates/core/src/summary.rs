//! Deterministic summary-block construction (§IV-B, §IV-C, Fig. 5).
//!
//! Every anchor node builds summary blocks **locally** from its agreed copy
//! of the chain — they are never propagated. [`build_summary_block`] is
//! therefore a pure function of `(chain, config, deletion registry)`; two
//! nodes with identical inputs produce bit-identical blocks (invariant I2
//! in DESIGN.md), which is exactly what the paper's synchronisation check
//! compares.

use seldel_chain::{
    Block, BlockBody, BlockKind, BlockNumber, BlockStore, EntryId, EntryNumber, Seal, SummaryRecord,
};

use crate::config::{AnchorPolicy, ChainConfig};
use crate::deletion::DeletionRegistry;
use crate::retention::{plan_retirement, RetirePlan};
use crate::sequence::live_sequences;

/// What happened while building a summary block.
#[derive(Debug, Clone, Default)]
pub struct SummaryOutcome {
    /// Marked data sets dropped by this merge (deletions executed).
    pub deleted: Vec<EntryId>,
    /// Temporary entries dropped because their expiry passed (§IV-D4).
    pub expired: Vec<EntryId>,
    /// Deletion-request entries not carried ("deletion requests … will
    /// never be copied into a summary block").
    pub requests_dropped: usize,
    /// Records carried forward.
    pub carried: usize,
    /// The retirement plan merged into this block, if any.
    pub plan: Option<RetirePlan>,
    /// Whether a Fig. 9 anchor was embedded.
    pub anchored: bool,
}

/// Builds the summary block for slot `number` (which must be
/// `chain.tip().number() + 1` and a summary slot of `config`).
///
/// The block:
/// * carries the predecessor's timestamp (§IV-B);
/// * absorbs all sequences the retention policy retires, copying their
///   data records with original block number / entry number / timestamp
///   (Fig. 4) while dropping deletion-marked data (Fig. 5), expired
///   temporary entries (§IV-D4) and deletion-request entries (§IV-D3);
/// * embeds the middle-sequence anchor when configured (Fig. 9).
///
/// # Panics
///
/// Panics when `number` is not the next block number or not a summary slot
/// — both indicate a driver bug, not runtime input.
pub fn build_summary_block<S: BlockStore>(
    chain: &seldel_chain::Blockchain<S>,
    config: &ChainConfig,
    deletions: &DeletionRegistry,
    number: BlockNumber,
) -> (Block, SummaryOutcome) {
    assert_eq!(
        number,
        chain.tip().number().next(),
        "summary slot must extend the tip"
    );
    assert!(
        config.is_summary_slot(number),
        "block {number} is not a summary slot for l = {}",
        config.sequence_length
    );

    let tip = chain.tip();
    let now_ts = tip.timestamp();
    let mut outcome = SummaryOutcome::default();
    let mut records: Vec<SummaryRecord> = Vec::new();
    let mut tombstones: Vec<EntryId> = Vec::new();

    let plan = plan_retirement(chain, config);

    if let Some(plan) = &plan {
        for span in plan.spans() {
            let mut n = span.start;
            while n <= span.end {
                let block = chain.get(n).expect("retired span is live");
                match block.kind() {
                    BlockKind::Normal => {
                        for (i, entry) in block.entries().iter().enumerate() {
                            let id = EntryId::new(n, EntryNumber(i as u32));
                            if entry.is_delete_request() {
                                outcome.requests_dropped += 1;
                                continue;
                            }
                            if deletions.is_marked(id) {
                                outcome.deleted.push(id);
                                continue;
                            }
                            if let Some(expiry) = entry.expiry() {
                                if expiry.is_expired(number, now_ts) {
                                    outcome.expired.push(id);
                                    continue;
                                }
                            }
                            let record = SummaryRecord::from_entry(entry, id, block.timestamp())
                                .expect("non-delete entries yield records");
                            records.push(record);
                        }
                    }
                    BlockKind::Summary => {
                        // An absorbed Σ's tombstones are carried forward in
                        // full: deletion evidence must outlive any number of
                        // merges so absence stays provable (O(log n) via the
                        // payload commitment) after the original Σ is pruned.
                        tombstones.extend_from_slice(block.deletions());
                        for record in block.summary_records() {
                            let id = record.origin();
                            if deletions.is_marked(id) {
                                outcome.deleted.push(id);
                                continue;
                            }
                            if let Some(expiry) = record.expiry() {
                                if expiry.is_expired(number, now_ts) {
                                    outcome.expired.push(id);
                                    continue;
                                }
                            }
                            records.push(record.clone());
                        }
                    }
                    // Genesis notes and empty filler carry no data sets.
                    BlockKind::Genesis | BlockKind::Empty => {}
                }
                n = n.next();
            }
        }
    }

    let anchor = match (config.anchoring, &plan) {
        (AnchorPolicy::MiddleSequence, Some(plan)) => {
            // Middle of the *surviving* chain: closed sequences at or after
            // the new marker.
            let surviving: Vec<_> = live_sequences(chain)
                .into_iter()
                .filter(|s| s.closed && s.start >= plan.new_marker())
                .collect();
            if surviving.is_empty() {
                // Full compaction retires every closed sequence; anchor the
                // surviving open span (the sequence this Σ is closing) so
                // merged records still gain its confirmations.
                seldel_chain::build_anchor(chain, plan.new_marker(), chain.tip().number())
            } else {
                let mid = &surviving[surviving.len() / 2];
                seldel_chain::build_anchor(chain, mid.start, mid.end)
            }
        }
        _ => None,
    };

    outcome.carried = records.len();
    outcome.anchored = anchor.is_some();
    outcome.plan = plan;

    // Tombstone every deletion this merge executed, plus everything the
    // absorbed summaries already tombstoned. Expired temporaries are NOT
    // tombstoned — expiry is derivable from the (committed) expiry field,
    // only explicit deletions need standalone absence evidence. Strictly
    // sorted so the commitment is canonical (validation enforces this).
    tombstones.extend_from_slice(&outcome.deleted);
    tombstones.sort_unstable();
    tombstones.dedup();

    let block = Block::new(
        number,
        now_ts,
        chain.tip_hash(), // cached sealed-block digest, no re-hash
        BlockBody::Summary {
            records,
            deletions: tombstones,
            anchor,
        },
        Seal::Deterministic,
    );
    (block, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetentionPolicy;
    use seldel_chain::{Blockchain, DeleteRequest, Entry, Expiry, Timestamp};
    use seldel_codec::DataRecord;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn data_entry(seed: u8, n: u64) -> Entry {
        Entry::sign_data(&key(seed), DataRecord::new("x").with("n", n))
    }

    fn config_l3(l_max: u64) -> ChainConfig {
        ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy {
                max_live_blocks: Some(l_max),
                min_live_blocks: 3,
                min_live_summaries: 0,
                min_timespan: None,
                mode: crate::config::RetireMode::MinimumNeeded,
            },
            ..Default::default()
        }
    }

    /// Builds a real l=3 chain by driving build_summary_block at slots,
    /// with two data entries per normal block.
    fn grow_chain(blocks: u64, cfg: &ChainConfig, deletions: &DeletionRegistry) -> Blockchain {
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        while chain.tip().number().value() < blocks {
            let next = chain.tip().number().next();
            if cfg.is_summary_slot(next) {
                let (block, outcome) = build_summary_block(&chain, cfg, deletions, next);
                chain.push(block).unwrap();
                if let Some(plan) = outcome.plan {
                    chain.truncate_front(plan.new_marker()).unwrap();
                }
            } else {
                let ts = Timestamp(next.value() * 10);
                let prev = chain.tip().hash();
                chain
                    .push(Block::new(
                        next,
                        ts,
                        prev,
                        BlockBody::Normal {
                            entries: vec![
                                data_entry(1, next.value() * 10),
                                data_entry(2, next.value() * 10 + 1),
                            ],
                        },
                        Seal::Deterministic,
                    ))
                    .unwrap();
            }
        }
        chain
    }

    #[test]
    fn summary_carries_predecessor_timestamp_and_hash() {
        let cfg = config_l3(100);
        let deletions = DeletionRegistry::new();
        let chain = grow_chain(1, &cfg, &deletions);
        let (block, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(2));
        assert_eq!(block.timestamp(), chain.tip().timestamp());
        assert_eq!(block.header().prev_hash, chain.tip().hash());
        assert_eq!(block.kind(), BlockKind::Summary);
        assert_eq!(outcome.carried, 0); // nothing retired yet
        assert!(outcome.plan.is_none());
    }

    #[test]
    fn determinism_two_nodes_same_block() {
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        let chain_a = grow_chain(7, &cfg, &deletions);
        let chain_b = grow_chain(7, &cfg, &deletions);
        let (a, _) = build_summary_block(&chain_a, &cfg, &deletions, BlockNumber(8));
        let (b, _) = build_summary_block(&chain_b, &cfg, &deletions, BlockNumber(8));
        assert_eq!(a.hash(), b.hash());
        assert_eq!(
            seldel_codec::Codec::to_canonical_bytes(&a),
            seldel_codec::Codec::to_canonical_bytes(&b)
        );
    }

    #[test]
    fn merge_copies_records_with_original_ids() {
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        // Grow to block 7; summary slot 8 projects 9 > 6 → retire ω1 [0..2].
        let chain = grow_chain(7, &cfg, &deletions);
        let (block, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        let plan = outcome.plan.as_ref().unwrap();
        assert_eq!(plan.new_marker(), BlockNumber(3));
        // ω1 = blocks 0 (genesis), 1 (2 entries), 2 (empty summary).
        assert_eq!(outcome.carried, 2);
        let records = block.summary_records();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].origin(),
            EntryId::new(BlockNumber(1), EntryNumber(0))
        );
        assert_eq!(records[0].origin_timestamp(), Timestamp(10));
        assert_eq!(
            records[1].origin(),
            EntryId::new(BlockNumber(1), EntryNumber(1))
        );
        // Carried signatures still verify.
        records.iter().for_each(|r| r.verify().unwrap());
    }

    #[test]
    fn marked_records_not_copied() {
        let cfg = config_l3(6);
        let mut deletions = DeletionRegistry::new();
        let chain = grow_chain(7, &cfg, &deletions);
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        deletions.mark(
            target,
            key(1).verifying_key(),
            EntryId::new(BlockNumber(4), EntryNumber(0)),
            Timestamp(40),
        );
        let (block, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        assert_eq!(outcome.deleted, vec![target]);
        assert_eq!(outcome.carried, 1);
        assert!(block.summary_records().iter().all(|r| r.origin() != target));
    }

    #[test]
    fn expired_records_not_copied() {
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        // Block 1 with one permanent and one temporary entry (expires τ15).
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(1),
                Timestamp(10),
                prev,
                BlockBody::Normal {
                    entries: vec![
                        data_entry(1, 1),
                        Entry::sign_data_with(
                            &key(2),
                            DataRecord::new("x").with("n", 2u64),
                            Some(Expiry::AtTimestamp(Timestamp(15))),
                            vec![],
                        ),
                    ],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        // Fill to block 7 with empties + summaries.
        while chain.tip().number().value() < 7 {
            let next = chain.tip().number().next();
            let prev = chain.tip().hash();
            if cfg.is_summary_slot(next) {
                let (b, _) = build_summary_block(&chain, &cfg, &deletions, next);
                chain.push(b).unwrap();
            } else {
                chain
                    .push(Block::new(
                        next,
                        Timestamp(next.value() * 10),
                        prev,
                        BlockBody::Empty,
                        Seal::Deterministic,
                    ))
                    .unwrap();
            }
        }
        let (block, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        // τ at merge = 70 > 15 → the temporary entry expired.
        assert_eq!(
            outcome.expired,
            vec![EntryId::new(BlockNumber(1), EntryNumber(1))]
        );
        assert_eq!(block.summary_records().len(), 1);
    }

    #[test]
    fn delete_requests_never_carried() {
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        let prev = chain.tip().hash();
        chain
            .push(Block::new(
                BlockNumber(1),
                Timestamp(10),
                prev,
                BlockBody::Normal {
                    entries: vec![
                        data_entry(1, 1),
                        Entry::sign_delete(
                            &key(1),
                            DeleteRequest::new(EntryId::new(BlockNumber(1), EntryNumber(0)), ""),
                        ),
                    ],
                },
                Seal::Deterministic,
            ))
            .unwrap();
        while chain.tip().number().value() < 7 {
            let next = chain.tip().number().next();
            let prev = chain.tip().hash();
            if cfg.is_summary_slot(next) {
                let (b, _) = build_summary_block(&chain, &cfg, &deletions, next);
                chain.push(b).unwrap();
            } else {
                chain
                    .push(Block::new(
                        next,
                        Timestamp(next.value() * 10),
                        prev,
                        BlockBody::Empty,
                        Seal::Deterministic,
                    ))
                    .unwrap();
            }
        }
        let (_, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        assert_eq!(outcome.requests_dropped, 1);
        assert_eq!(outcome.carried, 1);
    }

    #[test]
    fn second_merge_carries_summary_records_forward() {
        // Records merged once must survive a second merge with ids intact.
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        let mut chain = grow_chain(7, &cfg, &deletions);
        // Apply summary 8 with merge of ω1.
        let (b8, o8) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        chain.push(b8).unwrap();
        chain
            .truncate_front(o8.plan.as_ref().unwrap().new_marker())
            .unwrap();
        // Grow to block 10, summary 11 retires [3..5].
        for n in 9..=10u64 {
            let prev = chain.tip().hash();
            chain
                .push(Block::new(
                    BlockNumber(n),
                    Timestamp(n * 10),
                    prev,
                    BlockBody::Normal {
                        entries: vec![data_entry(3, n)],
                    },
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        let (b11, o11) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(11));
        // ω [3..5] has blocks 3,4 (2 entries each) and summary 5 (empty);
        // block 8's records (from block 1) are NOT in [3..5], so they are
        // not re-carried yet — they live in summary 8 which stays live.
        assert_eq!(o11.plan.as_ref().unwrap().new_marker(), BlockNumber(6));
        assert_eq!(o11.carried, 4);
        chain.push(b11).unwrap();
        chain.truncate_front(BlockNumber(6)).unwrap();
        // One more cycle retires [6..8] including summary 8 → block 1's
        // records must now be carried forward again, ids intact.
        for n in 12..=13u64 {
            let prev = chain.tip().hash();
            chain
                .push(Block::new(
                    BlockNumber(n),
                    Timestamp(n * 10),
                    prev,
                    BlockBody::Empty,
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        let (b14, o14) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(14));
        assert!(o14
            .plan
            .as_ref()
            .unwrap()
            .spans()
            .iter()
            .any(|s| s.contains(BlockNumber(8))));
        let origins: Vec<EntryId> = b14.summary_records().iter().map(|r| r.origin()).collect();
        assert!(origins.contains(&EntryId::new(BlockNumber(1), EntryNumber(0))));
        assert!(origins.contains(&EntryId::new(BlockNumber(1), EntryNumber(1))));
    }

    #[test]
    fn anchor_embedded_when_configured() {
        let mut cfg = config_l3(6);
        cfg.anchoring = AnchorPolicy::MiddleSequence;
        let deletions = DeletionRegistry::new();
        let chain = grow_chain(7, &cfg, &deletions);
        let (block, outcome) = build_summary_block(&chain, &cfg, &deletions, BlockNumber(8));
        assert!(outcome.anchored);
        let anchor = block.anchor().unwrap();
        // Anchor must cover surviving blocks only (≥ marker 3).
        assert!(anchor.start >= BlockNumber(3));
        assert!(seldel_chain::verify_anchor(&chain, anchor));
    }

    #[test]
    #[should_panic(expected = "not a summary slot")]
    fn wrong_slot_panics() {
        let cfg = config_l3(6);
        let deletions = DeletionRegistry::new();
        let chain = grow_chain(1, &cfg, &deletions);
        // Block 2 is the slot; asking for 3 after tip 1 panics (wrong slot
        // is checked after contiguity, so use tip+1 = 2 with l=4 config).
        let cfg_l4 = ChainConfig {
            sequence_length: 4,
            ..cfg
        };
        let _ = build_summary_block(&chain, &cfg_l4, &deletions, BlockNumber(2));
    }
}

//! Core (ledger-level) error type.

use std::fmt;

use seldel_chain::{ChainError, EntryId, StoreError};
use seldel_codec::schema::SchemaError;
use seldel_crypto::SignatureError;

use crate::authz::AuthzError;
use crate::cohesion::CohesionViolation;

/// Errors raised by the selective-deletion ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Entry payload failed schema validation.
    Schema(SchemaError),
    /// Entry signature invalid.
    Signature(SignatureError),
    /// Entry declares a dependency that does not exist (live).
    UnknownDependency(EntryId),
    /// Entry depends on data that is marked for deletion or already deleted
    /// (§IV-D3: "Subsequent incoming transactions based on this marked data
    /// are no longer permitted").
    DependsOnDeleted(EntryId),
    /// A byte-identical entry is already waiting in the mempool (the
    /// sharded intake's per-shard dedup; resubmitting after the original
    /// sealed is fine — only *pending* duplicates are refused).
    DuplicatePending,
    /// A deletion was already requested for this target.
    DuplicateDeletion(EntryId),
    /// Deletion target does not exist (live).
    TargetNotFound(EntryId),
    /// Deletion requester lacks the privilege (§IV-D1).
    NotAuthorized(AuthzError),
    /// Deletion would break semantic cohesion (§IV-D2).
    Cohesion(CohesionViolation),
    /// Underlying chain error.
    Chain(ChainError),
    /// Underlying storage-backend error (durable stores only).
    Store(StoreError),
    /// The block timestamp would regress behind the tip.
    TimestampTooOld {
        /// Timestamp supplied by the caller.
        given: seldel_chain::Timestamp,
        /// Current tip timestamp.
        tip: seldel_chain::Timestamp,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Schema(e) => write!(f, "schema violation: {e}"),
            CoreError::Signature(e) => write!(f, "invalid signature: {e}"),
            CoreError::UnknownDependency(id) => write!(f, "unknown dependency {id}"),
            CoreError::DependsOnDeleted(id) => {
                write!(f, "entry depends on deleted or deletion-marked data {id}")
            }
            CoreError::DuplicatePending => {
                write!(f, "identical entry already pending in the mempool")
            }
            CoreError::DuplicateDeletion(id) => {
                write!(f, "deletion already requested for {id}")
            }
            CoreError::TargetNotFound(id) => write!(f, "deletion target {id} not found"),
            CoreError::NotAuthorized(e) => write!(f, "not authorized: {e}"),
            CoreError::Cohesion(e) => write!(f, "cohesion violation: {e}"),
            CoreError::Chain(e) => write!(f, "chain error: {e}"),
            CoreError::Store(e) => write!(f, "storage error: {e}"),
            CoreError::TimestampTooOld { given, tip } => {
                write!(f, "timestamp {given} behind tip {tip}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Schema(e) => Some(e),
            CoreError::Signature(e) => Some(e),
            CoreError::Chain(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for CoreError {
    fn from(e: SchemaError) -> Self {
        CoreError::Schema(e)
    }
}

impl From<SignatureError> for CoreError {
    fn from(e: SignatureError) -> Self {
        CoreError::Signature(e)
    }
}

impl From<ChainError> for CoreError {
    fn from(e: ChainError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<AuthzError> for CoreError {
    fn from(e: AuthzError) -> Self {
        CoreError::NotAuthorized(e)
    }
}

impl From<CohesionViolation> for CoreError {
    fn from(e: CohesionViolation) -> Self {
        CoreError::Cohesion(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{BlockNumber, EntryNumber};

    #[test]
    fn display_mentions_target() {
        let id = EntryId::new(BlockNumber(3), EntryNumber(1));
        assert!(CoreError::TargetNotFound(id).to_string().contains("3:1"));
        assert!(CoreError::DependsOnDeleted(id).to_string().contains("3:1"));
    }
}

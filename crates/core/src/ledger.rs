//! The selective-deletion ledger: the paper's §IV concept as a library.
//!
//! [`SelectiveLedger`] owns a [`Blockchain`] and drives the full behaviour:
//! entry intake (schema- and signature-checked), block sealing, automatic
//! summary blocks at every l-th slot, retention-driven merging with marker
//! shift, the deletion workflow (authorisation → cohesion → delayed
//! execution), temporary-entry expiry and idle filling.
//!
//! # Example
//!
//! ```
//! use seldel_core::{ChainConfig, SelectiveLedger};
//! use seldel_chain::{Entry, Timestamp};
//! use seldel_codec::DataRecord;
//! use seldel_crypto::SigningKey;
//!
//! let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation()).build();
//! let alice = SigningKey::from_seed([1u8; 32]);
//! ledger
//!     .submit_entry(Entry::sign_data(
//!         &alice,
//!         DataRecord::new("login").with("user", "ALPHA"),
//!     ))
//!     .unwrap();
//! let sealed = ledger.seal_block(Timestamp(10)).unwrap();
//! assert_eq!(sealed.value(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::marker::PhantomData;
use std::sync::Arc;

use seldel_chain::{
    Block, BlockBody, BlockKind, BlockNumber, BlockStore, Blockchain, DeleteRequest, Entry,
    EntryId, EntryNumber, EntryPayload, Located, MemStore, Seal, ShardedMempool, Timestamp,
    DEFAULT_SHARD_COUNT,
};
use seldel_codec::schema::SchemaRegistry;
use seldel_codec::DataRecord;
use seldel_crypto::{SigningKey, VerifyingKey};

use crate::authz::{authorize_deletion, MasterKeySet, RoleTable};
use crate::cohesion::{CohesionContext, CohesionPolicy, DependencyPolicy};
use crate::config::ChainConfig;
use crate::deletion::{DeletionRecord, DeletionRegistry};
use crate::error::CoreError;
use crate::events::LedgerEvent;
use crate::policy::{self, Candidate, CompiledPolicy, DeletionPlan};
use crate::summary::build_summary_block;

/// Snapshot of ledger health, used by experiments and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerStats {
    /// The shifting genesis marker m.
    pub marker: BlockNumber,
    /// Tip block number.
    pub tip: BlockNumber,
    /// Live chain length lβ in blocks.
    pub live_blocks: u64,
    /// Total canonical byte size of the live chain.
    pub live_bytes: u64,
    /// Live data sets (entries + carried records).
    pub live_records: u64,
    /// Entries waiting in the mempool.
    pub pending_entries: usize,
    /// Deletions marked but not yet executed.
    pub pending_deletions: usize,
    /// Deletions physically executed since this ledger was built/opened
    /// (a monotonic ledger counter — executed registry records themselves
    /// are compacted away once their targets fall behind the marker).
    pub executed_deletions: usize,
    /// Temporary entries dropped so far.
    pub expired_records: u64,
    /// Summary blocks created so far.
    pub summaries_created: u64,
    /// Blocks ever appended (including later-pruned ones).
    pub blocks_appended: u64,
    /// Blocks physically cut off so far.
    pub retired_blocks: u64,
    /// Virtual time covered by the live chain.
    pub covered_timespan: u64,
}

/// Builder for [`SelectiveLedger`] (roles, master keys, schemas, policies,
/// storage backend).
pub struct SelectiveLedgerBuilder<S: BlockStore = MemStore> {
    config: ChainConfig,
    roles: RoleTable,
    master: Option<MasterKeySet>,
    schemas: SchemaRegistry,
    policies: Vec<Arc<dyn CohesionPolicy>>,
    genesis_time: Timestamp,
    shards: usize,
    pipelined: bool,
    _store: PhantomData<S>,
}

impl<S: BlockStore> SelectiveLedgerBuilder<S> {
    /// Switches the storage backend the built ledger will use, e.g.
    /// `.store_backend::<SegStore>()`. Backends change performance
    /// characteristics only; chain semantics and hashes are identical.
    pub fn store_backend<T: BlockStore>(self) -> SelectiveLedgerBuilder<T> {
        SelectiveLedgerBuilder {
            config: self.config,
            roles: self.roles,
            master: self.master,
            schemas: self.schemas,
            policies: self.policies,
            genesis_time: self.genesis_time,
            shards: self.shards,
            pipelined: self.pipelined,
            _store: PhantomData,
        }
    }

    /// Sets the shard count for the entry index and the mempool (must be
    /// a power of two; default [`DEFAULT_SHARD_COUNT`]). Shards are
    /// node-local derived state: query answers are bit-identical at any
    /// count, and so are sealed chains under uncapped intake. With a
    /// [`ChainConfig::max_block_entries`] cap, the fair drain's
    /// round-robin order follows author→shard routing, so *which*
    /// pending entries a given block takes is a leader-local scheduling
    /// choice that varies with the count — every choice seals a valid
    /// chain, and consensus (I2) is untouched either way.
    pub fn shards(mut self, shards: usize) -> Self {
        // Validate eagerly so a bad count fails at the builder, not at
        // first use.
        let _ = seldel_chain::ShardMap::new(shards);
        self.shards = shards;
        self
    }
    /// Enables the backend's **pipelined commit** mode, when it has one
    /// ([`BlockStore::enable_pipeline`]): append-path fsyncs move off the
    /// seal path to a background commit stage, and
    /// [`SelectiveLedger::durable_tip`] starts lagging the tip until they
    /// complete. No-op for in-memory backends. See the staged sealing
    /// pipeline section in DESIGN.md.
    pub fn pipelined_commits(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Sets the role table (§IV-D1).
    pub fn roles(mut self, roles: RoleTable) -> Self {
        self.roles = roles;
        self
    }

    /// Sets the quorum master key set for administrative deletions.
    pub fn master_keys(mut self, master: MasterKeySet) -> Self {
        self.master = Some(master);
        self
    }

    /// Sets the schema registry; entries must then validate against their
    /// claimed schema (§V: "specified beforehand by a YAML schema").
    pub fn schemas(mut self, schemas: SchemaRegistry) -> Self {
        self.schemas = schemas;
        self
    }

    /// Stacks an additional automatic cohesion policy (§IV-D2 names
    /// Bell-LaPadula and Brewer-Nash) on top of the always-on dependency
    /// rule.
    pub fn cohesion_policy(mut self, policy: impl CohesionPolicy + 'static) -> Self {
        self.policies.push(Arc::new(policy));
        self
    }

    /// Sets the genesis timestamp (default τ0).
    pub fn genesis_time(mut self, t: Timestamp) -> Self {
        self.genesis_time = t;
        self
    }

    /// Builds the ledger.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is internally inconsistent (see
    /// [`ChainConfig::assert_valid`]).
    pub fn build(self) -> SelectiveLedger<S> {
        self.config.assert_valid();
        let chain = Blockchain::with_genesis(Block::genesis(
            self.config.chain_note.clone(),
            self.genesis_time,
        ));
        self.into_ledger(chain)
    }

    /// Opens a ledger over a caller-provided store — the durability entry
    /// point.
    ///
    /// An **empty** store behaves like [`build`](Self::build), except the
    /// genesis block lands in the given store (so a fresh
    /// [`FileStore`](seldel_chain::FileStore) directory starts persisting
    /// immediately). A **populated** store is the restart path: the chain
    /// is reconstructed ([`Blockchain::from_store`]) and fully validated,
    /// and every piece of derived Σ state — deletion marks, dependency
    /// edges, Chinese-wall history, statistics — is re-derived from the
    /// replayed blocks. A summary slot that fell due exactly at the crash
    /// point is re-derived too (Σ blocks are deterministic, §IV-B), so the
    /// recovered ledger continues exactly where the durable prefix ends.
    ///
    /// Some statistics cannot be recovered from blocks alone and restart
    /// conservatively (exactly like [`SelectiveLedger::adopt_chain`]):
    /// `executed_deletions` and `expired_records` reset to zero, and
    /// `summaries_created` restarts at the number of *live* Σ blocks —
    /// summary blocks that were themselves pruned are forgotten.
    ///
    /// # Errors
    ///
    /// Propagates reconstruction and validation failures; see
    /// [`CoreError`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration is internally inconsistent (see
    /// [`ChainConfig::assert_valid`]).
    pub fn open_store(self, store: S) -> Result<SelectiveLedger<S>, CoreError> {
        self.config.assert_valid();
        if store.is_empty() {
            let genesis = Block::genesis(self.config.chain_note.clone(), self.genesis_time);
            let chain = Blockchain::with_genesis_in(store, genesis);
            return Ok(self.into_ledger(chain));
        }
        let chain = Blockchain::from_store_with_shards(store, self.shards)?;
        seldel_chain::validate_chain(&chain, &seldel_chain::ValidationOptions::default())?;
        let mut ledger = self.into_ledger(chain);
        ledger.recover_derived_state();
        Ok(ledger)
    }

    /// Wraps a ready chain with fresh ledger-side state.
    fn into_ledger(self, mut chain: Blockchain<S>) -> SelectiveLedger<S> {
        if chain.shard_count() != self.shards {
            chain.reshard(self.shards);
        }
        if self.pipelined {
            chain.enable_pipeline();
        }
        let blocks_appended = chain.tip().number().value() + 1;
        let retired_blocks = chain.marker().value();
        SelectiveLedger {
            chain,
            config: self.config,
            deletions: DeletionRegistry::new(),
            roles: self.roles,
            master: self.master,
            schemas: self.schemas,
            policies: self.policies,
            dependents: BTreeMap::new(),
            history: BTreeMap::new(),
            pending: ShardedMempool::new(self.shards),
            tenant_policies: BTreeMap::new(),
            events: VecDeque::new(),
            summaries_created: 0,
            blocks_appended,
            retired_blocks,
            expired_total: 0,
            executed_total: 0,
        }
    }
}

impl SelectiveLedgerBuilder<seldel_chain::FileStore> {
    /// Opens (or creates) a durable ledger rooted at `path` — shorthand
    /// for [`FileStore::open`](seldel_chain::FileStore::open) +
    /// [`open_store`](Self::open_store). Reopening a directory that
    /// already holds a chain is the crash/restart recovery path.
    ///
    /// # Errors
    ///
    /// Propagates store, reconstruction and validation failures.
    pub fn on_disk(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SelectiveLedger<seldel_chain::FileStore>, CoreError> {
        let store = seldel_chain::FileStore::open(path)?;
        self.open_store(store)
    }

    /// [`on_disk`](Self::on_disk) with an explicit segment capacity
    /// (applies only when the store is created; an existing store keeps
    /// its manifest's capacity).
    ///
    /// # Errors
    ///
    /// Propagates store, reconstruction and validation failures.
    pub fn on_disk_with_capacity(
        self,
        path: impl AsRef<std::path::Path>,
        segment_capacity: usize,
    ) -> Result<SelectiveLedger<seldel_chain::FileStore>, CoreError> {
        let store = seldel_chain::FileStore::open_with_capacity(path, segment_capacity)?;
        self.open_store(store)
    }
}

/// The selective-deletion ledger (single-node view; the node layer wraps it
/// for distributed operation), generic over the chain's storage backend.
#[derive(Clone)]
pub struct SelectiveLedger<S: BlockStore = MemStore> {
    chain: Blockchain<S>,
    config: ChainConfig,
    deletions: DeletionRegistry,
    roles: RoleTable,
    master: Option<MasterKeySet>,
    schemas: SchemaRegistry,
    policies: Vec<Arc<dyn CohesionPolicy>>,
    /// target -> (dependent id -> dependent author), live edges only.
    dependents: BTreeMap<EntryId, BTreeMap<EntryId, VerifyingKey>>,
    /// Sticky Chinese-wall history: author key -> schemas touched.
    history: BTreeMap<[u8; 32], BTreeSet<String>>,
    /// The author-sharded mempool (see `seldel_chain::shard`): per-shard
    /// dedup at intake, exact-FIFO drain when a whole batch seals, fair
    /// round-robin drain under `ChainConfig::max_block_entries`.
    pending: ShardedMempool,
    /// Registered per-tenant deletion policies, keyed by owner key bytes.
    /// Each is stored pre-scoped to the owner's own records
    /// ([`CompiledPolicy::scoped_to`]).
    tenant_policies: BTreeMap<[u8; 32], CompiledPolicy>,
    events: VecDeque<LedgerEvent>,
    summaries_created: u64,
    blocks_appended: u64,
    retired_blocks: u64,
    expired_total: u64,
    /// Monotonic count of executed deletions — kept ledger-side because
    /// the registry compacts executed records away (see
    /// [`DeletionRegistry::compact_executed`]).
    executed_total: u64,
}

impl<S: BlockStore> std::fmt::Debug for SelectiveLedger<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectiveLedger")
            .field("marker", &self.chain.marker())
            .field("tip", &self.chain.tip().number())
            .field("live_blocks", &self.chain.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl SelectiveLedger {
    /// Starts building a [`MemStore`]-backed ledger with the given
    /// configuration; use
    /// [`store_backend`](SelectiveLedgerBuilder::store_backend) to switch.
    pub fn builder(config: ChainConfig) -> SelectiveLedgerBuilder {
        SelectiveLedgerBuilder {
            config,
            roles: RoleTable::new(),
            master: None,
            schemas: SchemaRegistry::new(),
            policies: Vec::new(),
            genesis_time: Timestamp::ZERO,
            shards: DEFAULT_SHARD_COUNT,
            pipelined: false,
            _store: PhantomData,
        }
    }

    /// Convenience constructor with defaults everywhere.
    pub fn new(config: ChainConfig) -> SelectiveLedger {
        SelectiveLedger::builder(config).build()
    }
}

impl<S: BlockStore> SelectiveLedger<S> {
    /// The live chain (read-only).
    pub fn chain(&self) -> &Blockchain<S> {
        &self.chain
    }

    /// The highest block number the storage backend guarantees to
    /// survive a crash ([`Blockchain::durable_tip`]). Equals the tip for
    /// in-memory backends; lags it on a pipelined durable backend while
    /// deferred fsyncs are pending. The anchor node holds `NewBlock`
    /// broadcasts behind this watermark.
    pub fn durable_tip(&self) -> Option<BlockNumber> {
        self.chain.durable_tip()
    }

    /// Durability barrier: on return every sealed block would survive a
    /// crash and [`SelectiveLedger::durable_tip`] equals the tip. No-op
    /// for in-memory backends.
    pub fn commit_durable(&mut self) {
        self.chain.flush_durable();
    }

    /// The configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Accepts an entry into the mempool (routed to its author's shard).
    ///
    /// Data entries are checked for: a valid author signature, schema
    /// conformance (when a registry is configured), existing live
    /// dependencies, and the §IV-D3 rule that nothing may build on
    /// deletion-marked data. Deletion-request entries only need a valid
    /// signature here — their semantic validation happens at inclusion
    /// time, because "wrong request\[s\] of deletions can be included in the
    /// blockchain, but these have no further effects" (§V). A
    /// byte-identical entry already pending is refused
    /// ([`CoreError::DuplicatePending`]) — the sharded intake's dedup.
    ///
    /// # Errors
    ///
    /// See [`CoreError`].
    pub fn submit_entry(&mut self, entry: Entry) -> Result<(), CoreError> {
        entry.verify()?;
        if let EntryPayload::Data(record) = entry.payload() {
            if !self.schemas.is_empty() {
                self.schemas.validate(record)?;
            }
            for dep in entry.depends_on() {
                if self.deletions.is_marked(*dep) {
                    return Err(CoreError::DependsOnDeleted(*dep));
                }
                if self.chain.locate(*dep).is_none() {
                    return Err(CoreError::UnknownDependency(*dep));
                }
            }
        }
        self.enqueue(entry)
    }

    /// Routes a validated entry into the mempool, refusing pending
    /// duplicates.
    fn enqueue(&mut self, entry: Entry) -> Result<(), CoreError> {
        if self.pending.insert(entry) {
            Ok(())
        } else {
            Err(CoreError::DuplicatePending)
        }
    }

    /// Builds, validates and submits a deletion request in one step.
    ///
    /// Unlike raw [`SelectiveLedger::submit_entry`], this pre-validates the
    /// request (target exists, requester authorised, cohesion holds) so the
    /// caller gets immediate feedback instead of an ineffective on-chain
    /// request.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; authorisation and cohesion failures are reported
    /// before anything is enqueued.
    pub fn request_deletion(
        &mut self,
        requester: &SigningKey,
        target: EntryId,
        reason: impl Into<String>,
    ) -> Result<(), CoreError> {
        let request = DeleteRequest::new(target, reason);
        self.request_deletion_with(requester, request)
    }

    /// Like [`SelectiveLedger::request_deletion`] but accepts a prepared
    /// request (e.g. carrying dependent co-signatures or a master
    /// signature).
    ///
    /// # Errors
    ///
    /// See [`CoreError`].
    pub fn request_deletion_with(
        &mut self,
        requester: &SigningKey,
        request: DeleteRequest,
    ) -> Result<(), CoreError> {
        self.validate_deletion(&requester.verifying_key(), &request)?;
        let entry = Entry::sign_delete(requester, request);
        self.enqueue(entry)
    }

    /// Corrects a data set (§V-A "Corrections: Change information, which
    /// maybe submitted wrongly"): atomically enqueues an authorised
    /// deletion of `target` plus a fresh signed entry with the corrected
    /// record. The corrected entry gets its own new id; the old data
    /// disappears at the next merge like any other deletion.
    ///
    /// # Errors
    ///
    /// Fails like [`SelectiveLedger::request_deletion`]; on failure nothing
    /// is enqueued.
    pub fn correct_entry(
        &mut self,
        requester: &SigningKey,
        target: EntryId,
        corrected: DataRecord,
    ) -> Result<(), CoreError> {
        if !self.schemas.is_empty() {
            self.schemas.validate(&corrected)?;
        }
        let request = DeleteRequest::new(target, "correction");
        self.validate_deletion(&requester.verifying_key(), &request)?;
        // The pair is one atomic bundle end to end: dedup-checked and
        // enqueued together or not at all, and sealed into the same block
        // even under a capacity cap — a deletion executing without its
        // replacement on chain would be half a correction.
        let deletion = Entry::sign_delete(requester, request);
        let replacement = Entry::sign_data(requester, corrected);
        if self.pending.insert_atomic(vec![deletion, replacement]) {
            Ok(())
        } else {
            Err(CoreError::DuplicatePending)
        }
    }

    /// Seals the mempool into the next block at virtual time `now`.
    ///
    /// With an empty mempool an [`BlockKind::Empty`] filler block is sealed
    /// instead. Without a [`ChainConfig::max_block_entries`] cap the whole
    /// mempool seals in exact arrival order (the historical behaviour);
    /// with one, the drain is fair round-robin across author shards and
    /// the overflow waits for the next block. Any due summary slot is
    /// filled automatically afterwards, which may merge and cut old
    /// sequences. Returns the number of the sealed (non-summary) block.
    ///
    /// **Pipeline-aware:** on a backend in pipelined-commit mode
    /// ([`SelectiveLedgerBuilder::pipelined_commits`]) this returns as
    /// soon as the block's bytes are written — any fsync the append made
    /// due runs on the backend's commit stage while the caller builds
    /// the next block. The sealed block is not crash-durable until
    /// [`SelectiveLedger::durable_tip`] reaches it (or
    /// [`SelectiveLedger::commit_durable`] is called); prune barriers
    /// inside `maybe_summarize` still flush inline, preserving §IV-C.
    ///
    /// # Errors
    ///
    /// [`CoreError::TimestampTooOld`] when `now` is behind the tip;
    /// chain errors are propagated.
    pub fn seal_block(&mut self, now: Timestamp) -> Result<BlockNumber, CoreError> {
        let _span = seldel_telemetry::span!("ledger.seal");
        let tip_ts = self.chain.tip().timestamp();
        if now < tip_ts {
            return Err(CoreError::TimestampTooOld {
                given: now,
                tip: tip_ts,
            });
        }
        let number = self.chain.tip().number().next();
        debug_assert!(
            !self.config.is_summary_slot(number),
            "summary slots are filled automatically"
        );
        let entries: Vec<Entry> = self.pending.drain_fair(self.config.max_block_entries);
        let body = if entries.is_empty() {
            BlockBody::Empty
        } else {
            BlockBody::Normal { entries }
        };
        let prev = self.chain.tip_hash();
        let block = Block::new(number, now, prev, body, Seal::Deterministic);
        self.chain.push(block)?;
        self.blocks_appended += 1;
        let sealed_entries = self.chain.tip().entries().len();
        if sealed_entries > 0 {
            self.events.push_back(LedgerEvent::BlockSealed {
                number,
                entries: sealed_entries,
            });
        } else {
            self.events
                .push_back(LedgerEvent::EmptyBlockAdded { number });
        }
        self.post_include(number, now);
        self.maybe_summarize(now);
        Ok(number)
    }

    /// Applies a block sealed elsewhere (leader → replica flow in the node
    /// layer). Summary blocks are rejected: every node derives its own Σ
    /// locally (§IV-B: the summary block "do\[es\] not need to be propagated
    /// by itself").
    ///
    /// # Errors
    ///
    /// Chain linkage errors, plus [`CoreError::Chain`] with a payload
    /// mismatch for summary-kind blocks.
    pub fn apply_block(&mut self, block: Block) -> Result<(), CoreError> {
        if block.kind() == BlockKind::Summary || block.kind() == BlockKind::Genesis {
            return Err(CoreError::Chain(
                seldel_chain::ChainError::GenesisMisplaced {
                    number: block.number(),
                },
            ));
        }
        let number = block.number();
        let now = block.timestamp();
        self.chain.push(block)?;
        self.blocks_appended += 1;
        self.post_include(number, now);
        self.maybe_summarize(now);
        Ok(())
    }

    /// Advances virtual time, appending idle filler blocks per the
    /// configured policy (§IV-D3). Returns the number of blocks appended
    /// (including automatic summaries).
    pub fn tick(&mut self, now: Timestamp) -> usize {
        let Some(policy) = self.config.idle_fill else {
            return 0;
        };
        let mut appended = 0;
        while now.since(self.chain.tip().timestamp()) >= policy.max_idle_ms {
            let ts = self.chain.tip().timestamp() + policy.max_idle_ms;
            let number = self.chain.tip().number().next();
            let prev = self.chain.tip_hash();
            let block = Block::new(number, ts, prev, BlockBody::Empty, Seal::Deterministic);
            self.chain.push(block).expect("filler blocks always link");
            self.blocks_appended += 1;
            self.events
                .push_back(LedgerEvent::EmptyBlockAdded { number });
            appended += 1;
            let before = self.chain.tip().number();
            self.maybe_summarize(ts);
            appended += (self.chain.tip().number().value() - before.value()) as usize;
        }
        appended
    }

    /// Looks up a data record by id, wherever it lives (an owned clone —
    /// the holder block may be a transient page on disk-backed stores).
    pub fn record(&self, id: EntryId) -> Option<DataRecord> {
        self.chain.locate(id).and_then(|l| l.data().cloned())
    }

    /// Whether the data set is live (exists and is not deletion-marked).
    pub fn is_live(&self, id: EntryId) -> bool {
        !self.deletions.is_marked(id) && self.record(id).is_some()
    }

    /// Batched [`SelectiveLedger::locate`]: one answer per id, in input
    /// order, resolved shard-parallel for large batches (see
    /// [`Blockchain::locate_many`]). Duplicate ids in one batch are
    /// answered element-wise: every occurrence gets the same answer a
    /// lone query would.
    pub fn locate_many(&self, ids: &[EntryId]) -> Vec<Option<Located<'_>>> {
        self.chain.locate_many(ids)
    }

    /// Bulk deletion audit: for each id, whether the data set is live —
    /// physically present *and* not deletion-marked — element-wise equal
    /// to [`SelectiveLedger::is_live`] but resolved in one shard-parallel
    /// pass. This is the query a compliance sweep asks ("are all of these
    /// really gone / still here?") after deletions execute. Like
    /// [`SelectiveLedger::locate_many`], duplicate ids each get the
    /// element-wise answer, on the sharded and monolithic paths alike.
    pub fn audit_live(&self, ids: &[EntryId]) -> Vec<bool> {
        self.chain
            .locate_many(ids)
            .into_iter()
            .zip(ids)
            .map(|(located, id)| {
                located.is_some_and(|l| l.data().is_some()) && !self.deletions.is_marked(*id)
            })
            .collect()
    }

    /// The deletion record for a target, if any.
    pub fn deletion_status(&self, target: EntryId) -> Option<&DeletionRecord> {
        self.deletions.get(target)
    }

    /// Evaluates a compiled policy against the live chain and reports what
    /// a bulk erasure *would* do — the dry-run audit mode. Nothing is
    /// enqueued or mutated.
    ///
    /// Candidates come from one hot-cache sweep
    /// ([`policy::sweep_candidates`] over [`Blockchain::iter_hot`], never a
    /// cold disk scan); liveness of the hits is then confirmed through the
    /// bulk [`SelectiveLedger::audit_live`] path, and every live hit runs
    /// the full [`SelectiveLedger::validate_deletion`] ladder as
    /// `requester`. Hits that fail validation (authorisation, cohesion,
    /// live dependents, …) are reported in [`DeletionPlan::blocked`]
    /// instead of matched — a plan never promises a deletion that apply
    /// mode would refuse.
    pub fn plan_policy(&self, requester: &VerifyingKey, policy: &CompiledPolicy) -> DeletionPlan {
        let _span = seldel_telemetry::span!("ledger.policy_plan");
        seldel_telemetry::count!("policy.plans");
        let candidates = policy::sweep_candidates(&self.chain);
        seldel_telemetry::count!("policy.candidates_scanned", candidates.len() as u64);

        // Canonical order: hits sorted by id ascending, so a plan (and the
        // delete entries apply mode derives from it) is deterministic
        // regardless of backend iteration quirks.
        let mut hits: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| policy.matches(c) && !self.deletions.is_marked(c.id))
            .collect();
        hits.sort_by_key(|c| c.id);

        let ids: Vec<EntryId> = hits.iter().map(|c| c.id).collect();
        let live = self.audit_live(&ids);

        let mut plan = DeletionPlan::new(policy.name(), candidates.len());
        for (candidate, live) in hits.into_iter().zip(live) {
            if !live {
                continue;
            }
            let request = DeleteRequest::new(candidate.id, policy.reason());
            match self.validate_deletion(requester, &request) {
                Ok(()) => plan.admit(candidate),
                Err(err) => plan.block(candidate.id, err.to_string()),
            }
        }
        seldel_telemetry::count!("policy.matched", plan.len() as u64);
        plan
    }

    /// Applies a compiled policy: computes the same plan as
    /// [`SelectiveLedger::plan_policy`], then enqueues one signed deletion
    /// request per matched id — from here on the erasure follows the
    /// normal marked-deletion lifecycle exactly as if each request had
    /// been issued manually (mark → Σ tombstone → physical prune at
    /// merge). The returned plan is the applied plan; dry-run and apply
    /// agree by construction.
    ///
    /// Matched ids whose identical request is already pending in the
    /// mempool (e.g. the same policy applied twice before sealing) are
    /// skipped, not errors.
    ///
    /// # Errors
    ///
    /// Any non-duplicate enqueue failure is propagated; entries enqueued
    /// before the failure stay queued.
    pub fn apply_policy(
        &mut self,
        requester: &SigningKey,
        policy: &CompiledPolicy,
    ) -> Result<DeletionPlan, CoreError> {
        let _span = seldel_telemetry::span!("ledger.policy_apply");
        seldel_telemetry::count!("policy.applies");
        let plan = self.plan_policy(&requester.verifying_key(), policy);
        let mut enqueued = 0u64;
        for id in plan.matched() {
            let entry = Entry::sign_delete(requester, DeleteRequest::new(*id, policy.reason()));
            match self.enqueue(entry) {
                Ok(()) => enqueued += 1,
                Err(CoreError::DuplicatePending) => {}
                Err(err) => return Err(err),
            }
        }
        seldel_telemetry::count!("policy.requests_enqueued", enqueued);
        Ok(plan)
    }

    /// Registers a standing deletion policy for a tenant. The policy is
    /// stored scoped to the owner ([`CompiledPolicy::scoped_to`]): whatever
    /// the selector says, it can only ever match the owner's own entries.
    /// One policy per tenant; registering again replaces it.
    pub fn register_policy(&mut self, owner: &VerifyingKey, policy: CompiledPolicy) {
        self.tenant_policies
            .insert(owner.to_bytes(), policy.scoped_to(*owner));
    }

    /// The standing (owner-scoped) policy registered for a tenant, if any.
    pub fn registered_policy(&self, owner: &VerifyingKey) -> Option<&CompiledPolicy> {
        self.tenant_policies.get(&owner.to_bytes())
    }

    /// Dry-runs a tenant's registered policy. `None` when the tenant has
    /// no registered policy.
    pub fn plan_registered(&self, owner: &VerifyingKey) -> Option<DeletionPlan> {
        let policy = self.tenant_policies.get(&owner.to_bytes())?;
        Some(self.plan_policy(owner, policy))
    }

    /// Applies a tenant's registered policy (see
    /// [`SelectiveLedger::apply_policy`]). `None` when the tenant has no
    /// registered policy.
    pub fn apply_registered(
        &mut self,
        owner: &SigningKey,
    ) -> Option<Result<DeletionPlan, CoreError>> {
        let policy = self
            .tenant_policies
            .get(&owner.verifying_key().to_bytes())?
            .clone();
        Some(self.apply_policy(owner, &policy))
    }

    /// Drains accumulated events.
    pub fn drain_events(&mut self) -> Vec<LedgerEvent> {
        self.events.drain(..).collect()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> LedgerStats {
        LedgerStats {
            marker: self.chain.marker(),
            tip: self.chain.tip().number(),
            live_blocks: self.chain.len(),
            live_bytes: self.chain.total_byte_size(),
            live_records: self.chain.record_count(),
            pending_entries: self.pending.len(),
            pending_deletions: self.deletions.pending_count(),
            executed_deletions: self.executed_total as usize,
            expired_records: self.expired_total,
            summaries_created: self.summaries_created,
            blocks_appended: self.blocks_appended,
            retired_blocks: self.retired_blocks,
            covered_timespan: self.chain.covered_timespan(),
        }
    }

    /// Validates a deletion request without submitting it.
    ///
    /// # Errors
    ///
    /// The same ladder applied at inclusion time: duplicate check, target
    /// lookup, role/ownership authorisation (§IV-D1), dependency cohesion
    /// plus stacked automatic policies (§IV-D2).
    pub fn validate_deletion(
        &self,
        requester: &VerifyingKey,
        request: &DeleteRequest,
    ) -> Result<(), CoreError> {
        let target = request.target();
        if self.deletions.is_marked(target) {
            return Err(CoreError::DuplicateDeletion(target));
        }
        let located = self
            .chain
            .locate(target)
            .ok_or(CoreError::TargetNotFound(target))?;
        let record = located.data().ok_or(CoreError::TargetNotFound(target))?;
        let owner = located.author();

        authorize_deletion(
            requester,
            &owner,
            &self.roles,
            self.master.as_ref(),
            request,
        )?;

        let live_dependents: Vec<(EntryId, VerifyingKey)> = self
            .dependents
            .get(&target)
            .map(|m| m.iter().map(|(id, key)| (*id, *key)).collect())
            .unwrap_or_default();
        let empty_history = BTreeSet::new();
        let history = self
            .history
            .get(&requester.to_bytes())
            .unwrap_or(&empty_history);
        let ctx = CohesionContext {
            request,
            requester: *requester,
            target_author: owner,
            target_schema: record.schema(),
            target_level: record.get("classification").and_then(|v| v.as_u64()),
            live_dependents: &live_dependents,
            requester_history: history,
        };
        DependencyPolicy.check(&ctx)?;
        for policy in &self.policies {
            policy.check(&ctx)?;
        }
        Ok(())
    }

    /// Post-inclusion processing of a sealed/applied block: index data
    /// entries, evaluate deletion requests.
    fn post_include(&mut self, number: BlockNumber, now: Timestamp) {
        let block = self.chain.get(number).expect("just pushed").clone();
        for (i, entry) in block.entries().iter().enumerate() {
            let id = EntryId::new(number, EntryNumber(i as u32));
            match entry.payload() {
                EntryPayload::Data(record) => {
                    for dep in entry.depends_on() {
                        self.dependents
                            .entry(*dep)
                            .or_default()
                            .insert(id, entry.author());
                    }
                    self.history
                        .entry(entry.author().to_bytes())
                        .or_default()
                        .insert(record.schema().to_string());
                }
                EntryPayload::Delete(request) => {
                    let _span = seldel_telemetry::span!("ledger.deletion_apply");
                    let requester = entry.author();
                    match self.validate_deletion(&requester, request) {
                        Ok(()) => {
                            self.deletions.mark(request.target(), requester, id, now);
                            seldel_telemetry::count!("ledger.deletions.marked");
                            self.events.push_back(LedgerEvent::DeletionMarked {
                                target: request.target(),
                                requester,
                            });
                        }
                        Err(err) => {
                            seldel_telemetry::count!("ledger.deletions.ineffective");
                            self.events.push_back(LedgerEvent::DeletionIneffective {
                                target: request.target(),
                                reason: err.to_string(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Fills a due summary slot, merging and cutting per retention policy.
    fn maybe_summarize(&mut self, now: Timestamp) {
        let next = self.chain.tip().number().next();
        if !self.config.is_summary_slot(next) {
            return;
        }
        let (block, outcome) = {
            let _span = seldel_telemetry::span!("ledger.sigma");
            build_summary_block(&self.chain, &self.config, &self.deletions, next)
        };
        self.chain.push(block).expect("summary blocks always link");
        self.blocks_appended += 1;
        self.summaries_created += 1;
        self.events.push_back(LedgerEvent::SummaryCreated {
            number: next,
            records: outcome.carried,
            anchored: outcome.anchored,
        });

        if let Some(plan) = &outcome.plan {
            let old_marker = self.chain.marker();
            self.chain
                .truncate_front(plan.new_marker())
                .expect("plan markers are live");
            self.retired_blocks += plan.retired_blocks();
            self.events.push_back(LedgerEvent::SequencesRetired {
                from: plan.first(),
                to: plan.last(),
                carried: outcome.carried,
            });
            self.events.push_back(LedgerEvent::MarkerShifted {
                old: old_marker,
                new: plan.new_marker(),
            });
        }

        seldel_telemetry::count!("ledger.deletions.executed", outcome.deleted.len() as u64);
        for id in &outcome.deleted {
            if self.deletions.execute(*id, now) {
                self.executed_total += 1;
            }
            self.events.push_back(LedgerEvent::DeletionExecuted {
                target: *id,
                at: now,
            });
        }
        // Executed registry records are evidence already carried on chain
        // (Σ tombstones); compacting them behind the (post-truncate) marker
        // bounds the registry by live-chain contents and keeps it
        // bit-identically re-derivable on reopen — recovery replays only
        // live blocks, where executed requests are ineffective.
        let compacted = self.deletions.compact_executed(self.chain.marker());
        seldel_telemetry::count!("ledger.deletions.compacted", compacted as u64);
        for id in &outcome.expired {
            self.expired_total += 1;
            self.events
                .push_back(LedgerEvent::RecordExpired { origin: *id });
        }

        if outcome.plan.is_some() {
            self.rebuild_dependency_index();
        }
    }

    /// Rebuilds the live dependency index from chain contents. Called after
    /// merges so edges from dropped entries disappear. Runs on every prune,
    /// so it reads through the hot cache (`iter_hot`) — a disk scan here
    /// would put the whole live window back on the seal path each merge.
    fn rebuild_dependency_index(&mut self) {
        let mut fresh: BTreeMap<EntryId, BTreeMap<EntryId, VerifyingKey>> = BTreeMap::new();
        for block in self.chain.iter_hot() {
            match block.kind() {
                BlockKind::Normal => {
                    for (i, entry) in block.entries().iter().enumerate() {
                        let id = EntryId::new(block.number(), EntryNumber(i as u32));
                        if entry.is_delete_request() {
                            continue;
                        }
                        for dep in entry.depends_on() {
                            fresh.entry(*dep).or_default().insert(id, entry.author());
                        }
                    }
                }
                BlockKind::Summary => {
                    for record in block.summary_records() {
                        for dep in record.depends_on() {
                            fresh
                                .entry(*dep)
                                .or_default()
                                .insert(record.origin(), record.author());
                        }
                    }
                }
                _ => {}
            }
        }
        self.dependents = fresh;
    }

    /// Direct read access to a located data set.
    pub fn locate(&self, id: EntryId) -> Option<Located<'_>> {
        self.chain.locate(id)
    }

    /// Adopts a replacement chain (fork recovery / bootstrap sync).
    ///
    /// §V-B3: nodes "only accept a blockchain which is traceable from its
    /// current status quo" — the adopted chain is validated structurally
    /// and cryptographically from its own marker, then replaces the local
    /// chain **in the existing store** (a durable backend keeps its
    /// directory; see [`Blockchain::replace_blocks`]). Ledger-side state
    /// (deletion marks, dependency index, history) is rebuilt
    /// deterministically from the adopted blocks. In honest histories this
    /// reproduces the incremental state exactly, because no valid entry
    /// may depend on deletion-marked data (§IV-D3), so re-validating old
    /// deletion requests against the full live chain reaches the same
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; the ledger is unchanged on error.
    pub fn adopt_chain(&mut self, blocks: Vec<Block>) -> Result<(), CoreError> {
        // Stage and validate in memory first so a bad offer cannot disturb
        // the (possibly durable) local store.
        let staged: Blockchain<seldel_chain::MemStore> = Blockchain::assemble(blocks)?;
        seldel_chain::validate_chain(&staged, &seldel_chain::ValidationOptions::default())?;

        let old_marker = self.chain.marker();
        self.chain.replace_with(&staged);
        // The adoption's own marker jump, pushed *before* recovery: if the
        // adopted chain ends right at a due Σ slot, recovery's summarize
        // may prune further and emit its own (non-overlapping) shift.
        self.events.push_back(LedgerEvent::MarkerShifted {
            old: old_marker,
            new: self.chain.marker(),
        });
        self.recover_derived_state();
        Ok(())
    }

    /// Re-derives every piece of ledger state that is a function of the
    /// live blocks: deletion marks, dependency edges, history, statistics.
    /// Shared by [`SelectiveLedger::adopt_chain`] and the
    /// [`open_store`](SelectiveLedgerBuilder::open_store) recovery path.
    ///
    /// Ends by filling a summary slot that is exactly due: a crash (or an
    /// export) can leave the chain one block short of its next Σ, and
    /// summary blocks are deterministic (§IV-B), so re-deriving the
    /// missing Σ locally reproduces the lost block bit for bit.
    fn recover_derived_state(&mut self) {
        self.deletions = DeletionRegistry::new();
        self.dependents = BTreeMap::new();
        self.history = BTreeMap::new();
        self.pending.clear();
        self.expired_total = 0;
        self.executed_total = 0;
        self.blocks_appended = self.chain.tip().number().value() + 1;
        self.retired_blocks = self.chain.marker().value();
        self.summaries_created = self
            .chain
            .iter()
            .filter(|b| b.kind() == BlockKind::Summary)
            .count() as u64;

        // The replay below is bookkeeping, not news: park whatever events
        // the driver has not drained yet so the replay's noise can be
        // discarded without losing them.
        let undelivered = std::mem::take(&mut self.events);

        // Rebuild indexes and deletion marks in block order.
        let numbers: Vec<(BlockNumber, Timestamp)> = self
            .chain
            .iter()
            .map(|b| (b.number(), b.timestamp()))
            .collect();
        for (number, ts) in numbers {
            self.post_include(number, ts);
        }
        self.rebuild_dependency_index();
        self.events = undelivered;
        let tip_ts = self.chain.tip().timestamp();
        self.maybe_summarize(tip_ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::{Role, RoleTable};
    use crate::config::{IdleFillPolicy, RetentionPolicy};
    use seldel_chain::Expiry;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn data(user: &str, n: u64) -> DataRecord {
        DataRecord::new("login").with("user", user).with("n", n)
    }

    fn paper_ledger() -> SelectiveLedger {
        SelectiveLedger::new(ChainConfig::paper_evaluation())
    }

    /// Grows the ledger: one data entry per user per block, `blocks` normal
    /// blocks.
    fn grow(ledger: &mut SelectiveLedger, blocks: u64, users: &[&SigningKey]) {
        for _ in 0..blocks {
            let next_ts = Timestamp((ledger.stats().blocks_appended + 1) * 10);
            for (u, k) in users.iter().enumerate() {
                let n = ledger.stats().blocks_appended * 10 + u as u64;
                ledger
                    .submit_entry(Entry::sign_data(k, data("U", n)))
                    .unwrap();
            }
            ledger.seal_block(next_ts).unwrap();
        }
    }

    #[test]
    fn summary_blocks_appear_automatically() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        grow(&mut ledger, 2, &[&alice]);
        // l = 3: blocks 0,1 then Σ2, then 3, 4 then Σ5...
        let kinds: Vec<BlockKind> = ledger.chain().iter().map(|b| b.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Genesis,
                BlockKind::Normal,
                BlockKind::Summary,
                BlockKind::Normal,
            ]
        );
        assert_eq!(ledger.stats().summaries_created, 1);
    }

    #[test]
    fn chain_length_stays_bounded() {
        let mut ledger = paper_ledger(); // l_max = 6
        let alice = key(1);
        grow(&mut ledger, 40, &[&alice]);
        let stats = ledger.stats();
        assert!(stats.live_blocks <= 6 + 3, "live = {}", stats.live_blocks);
        assert!(stats.retired_blocks > 0);
        assert!(stats.marker > BlockNumber(0));
        // All records still reachable.
        assert_eq!(stats.live_records, 40);
        seldel_chain::validate_chain(ledger.chain(), &seldel_chain::ValidationOptions::default())
            .unwrap();
    }

    #[test]
    fn deletion_flow_end_to_end() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let bravo = key(2);
        // Block 1: entries 0 (alice), 1 (bravo).
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger
            .submit_entry(Entry::sign_data(&bravo, data("BRAVO", 2)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(1));

        // Bravo requests deletion of their own entry.
        ledger.request_deletion(&bravo, target, "gdpr").unwrap();
        ledger.seal_block(Timestamp(30)).unwrap(); // block 3 (after Σ2)
        assert!(ledger.deletion_status(target).is_some());
        assert!(!ledger.is_live(target));
        // Data still physically present (delayed deletion).
        assert!(ledger.record(target).is_some());

        // Grow until the sequence holding block 1 is merged out.
        let mut executed = false;
        for i in 0..20u64 {
            ledger.seal_block(Timestamp(40 + i * 10)).unwrap();
            if ledger.drain_events().iter().any(
                |e| matches!(e, LedgerEvent::DeletionExecuted { target: t, .. } if *t == target),
            ) {
                executed = true;
                break;
            }
        }
        assert!(executed, "deletion was never executed");
        assert!(ledger.record(target).is_none(), "record must be gone");
        // Alice's neighbouring entry survived the merge.
        assert!(ledger
            .record(EntryId::new(BlockNumber(1), EntryNumber(0)))
            .is_some());
    }

    #[test]
    fn foreign_deletion_rejected_for_users() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let bravo = key(2);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        let err = ledger.request_deletion(&bravo, target, "").unwrap_err();
        assert!(matches!(err, CoreError::NotAuthorized(_)));
    }

    #[test]
    fn admin_may_delete_foreign_entries() {
        let admin = key(9);
        let alice = key(1);
        let roles = RoleTable::new().with(admin.verifying_key(), Role::Admin);
        let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .roles(roles)
            .build();
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        ledger
            .request_deletion(
                &admin,
                EntryId::new(BlockNumber(1), EntryNumber(0)),
                "illegal content",
            )
            .unwrap();
    }

    #[test]
    fn ineffective_deletion_included_without_effect() {
        // Raw submission of an invalid delete request: included on chain,
        // no mark, DeletionIneffective event (paper §V).
        let mut ledger = paper_ledger();
        let alice = key(1);
        let bravo = key(2);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        // Bravo forges a raw delete entry bypassing request_deletion.
        let entry = Entry::sign_delete(&bravo, DeleteRequest::new(target, "not mine"));
        ledger.submit_entry(entry).unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        assert!(ledger.deletion_status(target).is_none());
        assert!(ledger
            .drain_events()
            .iter()
            .any(|e| matches!(e, LedgerEvent::DeletionIneffective { .. })));
        assert!(ledger.is_live(target));
    }

    #[test]
    fn entries_on_marked_data_rejected() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        ledger.request_deletion(&alice, target, "").unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        // A new entry depending on the marked data must be refused.
        let dependent = Entry::sign_data_with(&alice, data("ALPHA", 2), None, vec![target]);
        assert!(matches!(
            ledger.submit_entry(dependent),
            Err(CoreError::DependsOnDeleted(_))
        ));
    }

    #[test]
    fn dependent_entries_block_foreign_deletion() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let base = EntryId::new(BlockNumber(1), EntryNumber(0));
        // Bravo builds on Alice's entry.
        let bravo = key(2);
        ledger
            .submit_entry(Entry::sign_data_with(
                &bravo,
                data("BRAVO", 2),
                None,
                vec![base],
            ))
            .unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        // Alice deleting her own entry is blocked by Bravo's dependent.
        let err = ledger.request_deletion(&alice, base, "").unwrap_err();
        assert!(matches!(err, CoreError::Cohesion(_)));
        // With Bravo's co-signature it goes through.
        let mut request = DeleteRequest::new(base, "approved");
        let sig = bravo.sign(&request.cosign_message());
        request = request.with_cosignature(bravo.verifying_key(), sig);
        ledger.request_deletion_with(&alice, request).unwrap();
    }

    #[test]
    fn duplicate_deletion_rejected() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        ledger.request_deletion(&alice, target, "").unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        assert!(matches!(
            ledger.request_deletion(&alice, target, ""),
            Err(CoreError::DuplicateDeletion(_))
        ));
    }

    #[test]
    fn temporary_entries_expire() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let entry = Entry::sign_data_with(
            &alice,
            data("ALPHA", 1),
            Some(Expiry::AtTimestamp(Timestamp(25))),
            vec![],
        );
        ledger.submit_entry(entry).unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));
        assert!(ledger.record(id).is_some());
        // Keep sealing until the merge drops the expired record.
        for i in 0..20u64 {
            ledger.seal_block(Timestamp(30 + i * 10)).unwrap();
            if ledger.record(id).is_none() {
                break;
            }
        }
        assert!(ledger.record(id).is_none(), "expired entry survived");
        assert!(ledger.stats().expired_records >= 1);
    }

    #[test]
    fn idle_filler_appends_blocks() {
        let mut config = ChainConfig::paper_evaluation();
        config.idle_fill = Some(IdleFillPolicy { max_idle_ms: 50 });
        let mut ledger = SelectiveLedger::builder(config).build();
        let appended = ledger.tick(Timestamp(220));
        assert!(appended >= 4, "appended {appended}");
        // Summaries were auto-inserted too.
        assert!(ledger.stats().summaries_created >= 1);
        // No filler without enough idle time.
        assert_eq!(ledger.tick(Timestamp(230)), 0);
    }

    #[test]
    fn schema_enforcement() {
        let mut schemas = SchemaRegistry::new();
        schemas
            .register_yaml("record: login\nfields:\n  user: str\n  n: u64\n")
            .unwrap();
        let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .schemas(schemas)
            .build();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        let bad = Entry::sign_data(&alice, DataRecord::new("login").with("wrong", 1u64));
        assert!(matches!(
            ledger.submit_entry(bad),
            Err(CoreError::Schema(_))
        ));
        let unknown = Entry::sign_data(&alice, DataRecord::new("mystery").with("x", 1u64));
        assert!(matches!(
            ledger.submit_entry(unknown),
            Err(CoreError::Schema(_))
        ));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let entry = Entry::sign_data_with(
            &alice,
            data("A", 1),
            None,
            vec![EntryId::new(BlockNumber(77), EntryNumber(0))],
        );
        assert!(matches!(
            ledger.submit_entry(entry),
            Err(CoreError::UnknownDependency(_))
        ));
    }

    #[test]
    fn timestamp_regression_rejected() {
        let mut ledger = paper_ledger();
        ledger.seal_block(Timestamp(100)).unwrap();
        assert!(matches!(
            ledger.seal_block(Timestamp(50)),
            Err(CoreError::TimestampTooOld { .. })
        ));
    }

    #[test]
    fn stats_are_consistent() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        grow(&mut ledger, 10, &[&alice]);
        let stats = ledger.stats();
        assert_eq!(
            stats.blocks_appended,
            stats.live_blocks + stats.retired_blocks
        );
        assert_eq!(stats.tip.value() + 1, stats.blocks_appended);
    }

    #[test]
    fn external_blocks_apply_and_summaries_stay_local() {
        // Build a source ledger, replay its normal blocks into a replica;
        // both must derive identical summary blocks (I2).
        let mut source = paper_ledger();
        let alice = key(1);
        grow(&mut source, 8, &[&alice]);

        let replica = paper_ledger();
        // Collect source's non-summary blocks in order. Note: pruning may
        // have removed early blocks, so replay only works while the replica
        // tracks live history; use a fresh unpruned config for the test.
        let mut source2 = SelectiveLedger::builder(ChainConfig {
            retention: RetentionPolicy::keep_forever(),
            ..ChainConfig::paper_evaluation()
        })
        .build();
        let mut replica2 = SelectiveLedger::builder(ChainConfig {
            retention: RetentionPolicy::keep_forever(),
            ..ChainConfig::paper_evaluation()
        })
        .build();
        for i in 1..=8u64 {
            source2
                .submit_entry(Entry::sign_data(&alice, data("A", i)))
                .unwrap();
            source2.seal_block(Timestamp(i * 10)).unwrap();
        }
        for block in source2.chain().iter() {
            match block.kind() {
                BlockKind::Normal | BlockKind::Empty => {
                    replica2.apply_block(block.block().clone()).unwrap();
                }
                _ => {} // genesis pre-exists; summaries derived locally
            }
        }
        assert_eq!(
            source2.chain().tip().hash(),
            replica2.chain().tip().hash(),
            "replica derived different summary blocks"
        );
        let _ = replica; // silence unused
    }

    #[test]
    fn correct_entry_replaces_wrong_data() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALHPA", 1))) // typo
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let wrong = EntryId::new(BlockNumber(1), EntryNumber(0));

        ledger
            .correct_entry(&alice, wrong, data("ALPHA", 1))
            .unwrap();
        let block = ledger.seal_block(Timestamp(20)).unwrap();

        // The correction block holds the delete request + the new entry.
        let sealed = ledger.chain().get(block).unwrap();
        assert_eq!(sealed.entries().len(), 2);
        assert!(sealed.entries()[0].is_delete_request());
        // Old data marked; new data live under its new id.
        assert!(!ledger.is_live(wrong));
        let corrected = EntryId::new(block, EntryNumber(1));
        assert_eq!(
            ledger
                .record(corrected)
                .unwrap()
                .get("user")
                .unwrap()
                .as_str(),
            Some("ALPHA")
        );
        // The wrong record physically disappears at a later merge.
        for i in 3..=14u64 {
            ledger.seal_block(Timestamp(i * 10)).unwrap();
        }
        assert!(ledger.record(wrong).is_none());
        assert!(ledger.record(corrected).is_some());
    }

    #[test]
    fn correct_entry_requires_authorisation() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let bravo = key(2);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        let err = ledger
            .correct_entry(&bravo, target, data("MALLORY", 1))
            .unwrap_err();
        assert!(matches!(err, CoreError::NotAuthorized(_)));
        // Nothing was enqueued.
        assert_eq!(ledger.stats().pending_entries, 0);
    }

    #[test]
    fn offchain_references_flow_through_ledger() {
        use crate::offchain::{ContentStore, OFFCHAIN_SCHEMA_YAML};

        let mut schemas = SchemaRegistry::new();
        schemas.register_yaml(OFFCHAIN_SCHEMA_YAML).unwrap();
        let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .schemas(schemas)
            .build();
        let alice = key(1);
        let mut store = ContentStore::new();

        // Large payload stays off-chain; only the reference is recorded.
        let reference = store.put("medical-report", vec![0x5A; 100_000]);
        ledger
            .submit_entry(Entry::sign_data(&alice, reference.clone()))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));

        // Resolvable through the chain-stored reference.
        let stored_ref = ledger.record(id).unwrap().clone();
        assert_eq!(store.resolve(&stored_ref).unwrap().len(), 100_000);
        // The block is tiny compared to the payload.
        assert!(ledger.chain().get(BlockNumber(1)).unwrap().byte_size() < 1024);

        // Erasure: blob dropped immediately; reference deleted on-chain.
        let digest = ContentStore::reference_digest(&stored_ref).unwrap();
        assert!(store.erase(&digest));
        assert!(store.resolve(&stored_ref).is_err());
        ledger.request_deletion(&alice, id, "erasure").unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();
        for i in 3..=14u64 {
            ledger.seal_block(Timestamp(i * 10)).unwrap();
        }
        assert!(ledger.record(id).is_none());
    }

    #[test]
    fn adopt_chain_rejects_tampered_input_and_stays_unchanged() {
        let alice = key(1);
        let mut source = paper_ledger();
        source
            .submit_entry(Entry::sign_data(&alice, data("A", 1)))
            .unwrap();
        source.seal_block(Timestamp(10)).unwrap();

        let mut joiner = paper_ledger();
        joiner
            .submit_entry(Entry::sign_data(&alice, data("B", 2)))
            .unwrap();
        joiner.seal_block(Timestamp(10)).unwrap();
        let before_tip = joiner.chain().tip().hash();

        // Tamper with a middle block: linkage breaks.
        let mut blocks = source.chain().export_blocks();
        blocks[1] = Block::new(
            blocks[1].number(),
            blocks[1].timestamp() + 1,
            blocks[1].header().prev_hash,
            blocks[1].body().clone(),
            Seal::Deterministic,
        );
        assert!(joiner.adopt_chain(blocks).is_err());
        // Ledger unchanged on failure.
        assert_eq!(joiner.chain().tip().hash(), before_tip);
    }

    #[test]
    fn sealing_empty_mempool_creates_empty_block() {
        let mut ledger = paper_ledger();
        let number = ledger.seal_block(Timestamp(10)).unwrap();
        assert_eq!(ledger.chain().get(number).unwrap().kind(), BlockKind::Empty);
    }

    #[test]
    fn events_report_the_block_lifecycle_in_order() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("A", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let events = ledger.drain_events();
        assert!(matches!(
            events[0],
            LedgerEvent::BlockSealed { entries: 1, .. }
        ));
        assert!(matches!(events[1], LedgerEvent::SummaryCreated { .. }));
        // Drained: second call yields nothing.
        assert!(ledger.drain_events().is_empty());
    }

    #[test]
    fn tick_without_idle_policy_is_noop() {
        let mut ledger = paper_ledger();
        assert_eq!(ledger.tick(Timestamp(10_000)), 0);
        assert_eq!(ledger.chain().len(), 1);
    }

    use seldel_chain::testutil::ScratchDir as Scratch;

    fn file_ledger(dir: &std::path::Path) -> SelectiveLedger<seldel_chain::FileStore> {
        SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .store_backend::<seldel_chain::FileStore>()
            .on_disk_with_capacity(dir, 4)
            .unwrap()
    }

    /// Drives the same workload into any ledger (the typed `grow` helper
    /// above is MemStore-specific).
    fn grow_in<S: seldel_chain::BlockStore>(
        ledger: &mut SelectiveLedger<S>,
        blocks: u64,
        user: &SigningKey,
    ) {
        for _ in 0..blocks {
            let next_ts = Timestamp((ledger.stats().blocks_appended + 1) * 10);
            let n = ledger.stats().blocks_appended * 10;
            ledger
                .submit_entry(Entry::sign_data(user, data("U", n)))
                .unwrap();
            ledger.seal_block(next_ts).unwrap();
        }
    }

    #[test]
    fn on_disk_ledger_reopens_bit_identical_to_mem_store() {
        let scratch = Scratch::new("reopen");
        let alice = key(1);
        let mut mem = paper_ledger();
        let mut durable = file_ledger(scratch.path());
        grow_in(&mut mem, 25, &alice);
        grow_in(&mut durable, 25, &alice);
        assert_eq!(mem.chain().export_bytes(), durable.chain().export_bytes());
        drop(durable);

        let reopened = file_ledger(scratch.path());
        // The acceptance bar: bit-identical blocks, Σ summaries, entry
        // index and sealed hashes versus the never-closed MemStore chain.
        assert_eq!(mem.chain().export_bytes(), reopened.chain().export_bytes());
        assert_eq!(mem.chain().tip_hash(), reopened.chain().tip_hash());
        assert_eq!(
            mem.chain().entry_index().iter().collect::<Vec<_>>(),
            reopened.chain().entry_index().iter().collect::<Vec<_>>()
        );
        assert!(mem
            .chain()
            .iter_sealed()
            .map(|sealed| sealed.hash())
            .eq(reopened.chain().iter_sealed().map(|sealed| sealed.hash())));
        assert_eq!(mem.stats().marker, reopened.stats().marker);
        assert_eq!(mem.stats().live_records, reopened.stats().live_records);
        assert_eq!(
            mem.stats().blocks_appended,
            reopened.stats().blocks_appended
        );
        assert_eq!(mem.stats().retired_blocks, reopened.stats().retired_blocks);
    }

    #[test]
    fn recovery_rederives_pending_deletion_marks() {
        let scratch = Scratch::new("marks");
        let alice = key(1);
        let mut durable = file_ledger(scratch.path());
        durable
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        durable.seal_block(Timestamp(10)).unwrap();
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        durable.request_deletion(&alice, target, "gdpr").unwrap();
        durable.seal_block(Timestamp(30)).unwrap();
        assert!(durable.deletion_status(target).is_some());
        assert!(durable.record(target).is_some(), "delayed, not yet gone");
        drop(durable);

        // Restart: the mark must be re-derived from the on-chain request.
        let mut reopened = file_ledger(scratch.path());
        assert!(reopened.deletion_status(target).is_some());
        assert!(!reopened.is_live(target));
        // And the delayed deletion still executes physically.
        let mut executed = false;
        for i in 0..20u64 {
            reopened.seal_block(Timestamp(40 + i * 10)).unwrap();
            if reopened.record(target).is_none() {
                executed = true;
                break;
            }
        }
        assert!(executed, "recovered deletion never executed");
    }

    #[test]
    fn reopening_continues_the_chain_and_stays_durable() {
        let scratch = Scratch::new("resume");
        let alice = key(1);
        let mut mem = paper_ledger();
        // Two sessions on the same directory, one continuous MemStore run.
        let mut durable = file_ledger(scratch.path());
        grow_in(&mut mem, 10, &alice);
        grow_in(&mut durable, 10, &alice);
        drop(durable);
        let mut durable = file_ledger(scratch.path());
        grow_in(&mut mem, 10, &alice);
        grow_in(&mut durable, 10, &alice);
        drop(durable);
        let reopened = file_ledger(scratch.path());
        assert_eq!(mem.chain().export_bytes(), reopened.chain().export_bytes());
    }

    #[test]
    fn adopt_chain_keeps_the_durable_root() {
        let scratch = Scratch::new("adopt");
        let alice = key(1);
        let mut source = paper_ledger();
        grow_in(&mut source, 6, &alice);

        let mut joiner = file_ledger(scratch.path());
        joiner.adopt_chain(source.chain().export_blocks()).unwrap();
        assert_eq!(joiner.chain().tip_hash(), source.chain().tip_hash());
        drop(joiner);
        // The adopted chain lives in the same directory.
        let reopened = file_ledger(scratch.path());
        assert_eq!(
            reopened.chain().export_bytes(),
            source.chain().export_bytes()
        );
    }

    #[test]
    fn open_store_rejects_tampered_directories() {
        let scratch = Scratch::new("tamper");
        let alice = key(1);
        let mut durable = file_ledger(scratch.path());
        grow_in(&mut durable, 6, &alice);
        drop(durable);
        // Flip a byte inside the first segment file's frames: either the
        // frame decodes to a block failing validation, or decoding breaks.
        let seg = std::fs::read_dir(scratch.path())
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
            })
            .min()
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, bytes).unwrap();
        let result = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .store_backend::<seldel_chain::FileStore>()
            .on_disk(scratch.path());
        assert!(result.is_err(), "tampered directory must be rejected");
    }

    #[test]
    fn duplicate_pending_entry_rejected_until_sealed() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let entry = Entry::sign_data(&alice, data("ALPHA", 1));
        ledger.submit_entry(entry.clone()).unwrap();
        assert!(matches!(
            ledger.submit_entry(entry.clone()),
            Err(CoreError::DuplicatePending)
        ));
        assert_eq!(ledger.stats().pending_entries, 1);
        ledger.seal_block(Timestamp(10)).unwrap();
        // No longer pending: the same bytes are accepted again.
        ledger.submit_entry(entry).unwrap();
    }

    #[test]
    fn capped_seal_drains_fairly_and_keeps_the_overflow() {
        use seldel_chain::testutil::distinct_shard_author_seeds;
        use seldel_chain::ShardMap;
        let shards = 4;
        let mut ledger = SelectiveLedger::builder(ChainConfig {
            max_block_entries: Some(3),
            ..ChainConfig::paper_evaluation()
        })
        .shards(shards)
        .build();

        // Two authors on distinct mempool shards; the first floods.
        let seeds = distinct_shard_author_seeds(ShardMap::new(shards), 2);
        let (hot, quiet) = (key(seeds[0]), key(seeds[1]));
        for n in 0..8u64 {
            ledger
                .submit_entry(Entry::sign_data(&hot, data("HOT", n)))
                .unwrap();
        }
        ledger
            .submit_entry(Entry::sign_data(&quiet, data("QUIET", 100)))
            .unwrap();

        let number = ledger.seal_block(Timestamp(10)).unwrap();
        let sealed = ledger.chain().get(number).unwrap();
        assert_eq!(sealed.entries().len(), 3);
        assert!(
            sealed
                .entries()
                .iter()
                .any(|e| e.author() == quiet.verifying_key()),
            "quiet author must get a slot in the capped block"
        );
        assert_eq!(ledger.stats().pending_entries, 6);
        // The overflow seals in later blocks; nothing is lost.
        let mut ts = 20;
        while ledger.stats().pending_entries > 0 {
            ledger.seal_block(Timestamp(ts)).unwrap();
            ts += 10;
        }
        assert_eq!(ledger.chain().record_count(), 9);
    }

    #[test]
    fn correction_refused_as_a_unit_when_the_replacement_is_pending() {
        // Regression guard: correct_entry enqueues a deletion + a
        // replacement. If the replacement is refused as a pending
        // duplicate, the deletion must not stay behind — half a
        // correction would delete the target without replacing it.
        let mut ledger = paper_ledger();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALHPA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let wrong = EntryId::new(BlockNumber(1), EntryNumber(0));

        // The replacement bytes are already waiting in the mempool.
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        assert!(matches!(
            ledger.correct_entry(&alice, wrong, data("ALPHA", 1)),
            Err(CoreError::DuplicatePending)
        ));
        assert_eq!(
            ledger.stats().pending_entries,
            1,
            "the correction's deletion half must not linger"
        );
        ledger.seal_block(Timestamp(20)).unwrap();
        assert!(ledger.is_live(wrong), "target must not be deletion-marked");
    }

    #[test]
    fn capped_seal_never_splits_a_correction_pair() {
        // The deletion + replacement bundle must land in ONE block even
        // when the capacity cap would otherwise cut between them — a
        // crash after sealing the deletion alone would leave a durable
        // half-correction.
        let mut ledger = SelectiveLedger::builder(ChainConfig {
            max_block_entries: Some(1),
            ..ChainConfig::paper_evaluation()
        })
        .build();
        let alice = key(1);
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALHPA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let wrong = EntryId::new(BlockNumber(1), EntryNumber(0));

        ledger
            .correct_entry(&alice, wrong, data("ALPHA", 1))
            .unwrap();
        let number = ledger.seal_block(Timestamp(20)).unwrap();
        let sealed = ledger.chain().get(number).unwrap();
        assert_eq!(
            sealed.entries().len(),
            2,
            "the bundle may overshoot the cap but never split"
        );
        assert!(sealed.entries()[0].is_delete_request());
        assert!(!ledger.is_live(wrong));
        let corrected = EntryId::new(number, EntryNumber(1));
        assert!(ledger.is_live(corrected));
    }

    #[test]
    fn audit_live_matches_elementwise_is_live() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        grow(&mut ledger, 6, &[&alice]);
        let target = EntryId::new(BlockNumber(1), EntryNumber(0));
        ledger.request_deletion(&alice, target, "gdpr").unwrap();
        ledger.seal_block(Timestamp(1_000)).unwrap();

        let mut ids: Vec<EntryId> = ledger
            .chain()
            .live_records()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        ids.push(EntryId::new(BlockNumber(99), EntryNumber(0))); // ghost
        ids.push(target); // marked
        let audited = ledger.audit_live(&ids);
        assert_eq!(audited.len(), ids.len());
        for (id, live) in ids.iter().zip(&audited) {
            assert_eq!(*live, ledger.is_live(*id), "id {id}");
        }
        // locate_many agrees with element-wise locate.
        let located = ledger.locate_many(&ids);
        for (id, loc) in ids.iter().zip(&located) {
            assert_eq!(*loc, ledger.locate(*id), "id {id}");
        }
    }

    #[test]
    fn shard_count_is_invisible_to_chain_bytes() {
        // The whole point of keeping shards outside consensus (I2): the
        // same workload at any shard count yields bit-identical chains.
        let alice = key(1);
        let mut chains = Vec::new();
        for shards in [1usize, 2, 16] {
            let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
                .shards(shards)
                .build();
            grow_in(&mut ledger, 20, &alice);
            assert_eq!(ledger.chain().shard_count(), shards);
            assert_eq!(
                ledger.chain().entry_index(),
                &ledger.chain().rebuilt_index()
            );
            chains.push(ledger.chain().export_bytes());
        }
        assert_eq!(chains[0], chains[1]);
        assert_eq!(chains[1], chains[2]);
    }

    #[test]
    fn apply_block_rejects_summary_blocks() {
        let mut a = paper_ledger();
        let mut b = paper_ledger();
        let alice = key(1);
        grow(&mut a, 2, &[&alice]);
        let summary = a
            .chain()
            .iter()
            .find(|blk| blk.kind() == BlockKind::Summary)
            .unwrap()
            .block()
            .clone();
        // Force the replica to tip 1 so numbers could line up; it must be
        // rejected on kind grounds regardless.
        grow(&mut b, 1, &[&alice]);
        assert!(b.apply_block(summary).is_err());
    }

    use crate::policy::Selector;

    #[test]
    fn policy_dry_run_and_apply_agree_and_erase() {
        let admin = key(9);
        let alice = key(1);
        let bravo = key(2);
        let roles = RoleTable::new().with(admin.verifying_key(), Role::Admin);
        let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .roles(roles)
            .build();
        for i in 0..4u64 {
            ledger
                .submit_entry(Entry::sign_data(&alice, data("ALPHA", i)))
                .unwrap();
            ledger
                .submit_entry(Entry::sign_data(
                    &bravo,
                    DataRecord::new("audit").with("n", i),
                ))
                .unwrap();
            let ts = Timestamp((ledger.stats().blocks_appended + 1) * 10);
            ledger.seal_block(ts).unwrap();
        }
        let policy = Selector::And(vec![
            Selector::AuthorIs(alice.verifying_key()),
            Selector::SchemaIs("login".into()),
        ])
        .compile("purge-alice")
        .unwrap();

        let dry = ledger.plan_policy(&admin.verifying_key(), &policy);
        assert_eq!(dry.len(), 4);
        assert!(dry.blocked.is_empty());
        assert!(dry.matched_bytes > 0);
        assert_eq!(dry.per_tenant.len(), 1);
        let slice = dry.per_tenant[&alice.verifying_key().to_bytes()];
        assert_eq!(slice.count, 4);
        assert_eq!(slice.bytes, dry.matched_bytes);
        let mut sorted = dry.matched.clone();
        sorted.sort();
        assert_eq!(sorted, dry.matched, "matched ids are sorted");
        // Dry run mutates nothing.
        assert_eq!(ledger.stats().pending_entries, 0);
        assert_eq!(ledger.stats().pending_deletions, 0);

        let applied = ledger.apply_policy(&admin, &policy).unwrap();
        assert_eq!(applied, dry, "dry-run and apply agree exactly");
        assert_eq!(ledger.stats().pending_entries, dry.len());
        // Re-applying before sealing skips the pending duplicates.
        let again = ledger.apply_policy(&admin, &policy).unwrap();
        assert_eq!(again.matched, dry.matched);
        assert_eq!(ledger.stats().pending_entries, dry.len());

        // Drive to physical execution via the normal lifecycle.
        let mut ts = 1_000;
        for _ in 0..30 {
            ledger.seal_block(Timestamp(ts)).unwrap();
            ts += 10;
        }
        assert!(
            ledger.audit_live(&dry.matched).iter().all(|live| !live),
            "all matched ids must be erased"
        );
        for id in &dry.matched {
            assert!(ledger.record(*id).is_none(), "{id} must be physically gone");
        }
        // Bravo's records survived the sweep.
        let survivors = policy::sweep_candidates(ledger.chain());
        assert_eq!(
            survivors
                .iter()
                .filter(|c| c.author == bravo.verifying_key())
                .count(),
            4
        );
        assert!(!survivors.iter().any(|c| c.author == alice.verifying_key()));
    }

    #[test]
    fn policy_reports_blocked_hits_instead_of_dropping_them() {
        let admin = key(9);
        let alice = key(1);
        let bravo = key(2);
        let roles = RoleTable::new().with(admin.verifying_key(), Role::Admin);
        let mut ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .roles(roles)
            .build();
        ledger
            .submit_entry(Entry::sign_data(&alice, data("ALPHA", 1)))
            .unwrap();
        ledger.seal_block(Timestamp(10)).unwrap();
        let anchor_id = EntryId::new(BlockNumber(1), EntryNumber(0));
        // A live foreign dependent blocks deletion of the anchor (§IV-D2).
        ledger
            .submit_entry(Entry::sign_data_with(
                &bravo,
                DataRecord::new("audit").with("ref", 1u64),
                None,
                vec![anchor_id],
            ))
            .unwrap();
        ledger.seal_block(Timestamp(20)).unwrap();

        let policy = Selector::AuthorIs(alice.verifying_key())
            .compile("purge-alice")
            .unwrap();
        let plan = ledger.plan_policy(&admin.verifying_key(), &policy);
        assert!(plan.is_empty());
        assert_eq!(plan.blocked.len(), 1);
        assert_eq!(plan.blocked[0].0, anchor_id);
        assert!(!plan.blocked[0].1.is_empty(), "refusal carries a reason");
        // Apply refuses the same id the same way — nothing enqueued.
        let applied = ledger.apply_policy(&admin, &policy).unwrap();
        assert_eq!(applied, plan);
        assert_eq!(ledger.stats().pending_entries, 0);
        assert!(ledger.is_live(anchor_id));
    }

    #[test]
    fn registered_policies_are_tenant_scoped() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        let bravo = key(2);
        grow(&mut ledger, 3, &[&alice, &bravo]);
        // A deliberately over-broad selector: everything ever written.
        let broad = Selector::OlderThan(Timestamp(1_000_000))
            .compile("ttl-sweep")
            .unwrap();
        ledger.register_policy(&alice.verifying_key(), broad);
        assert!(ledger.registered_policy(&alice.verifying_key()).is_some());
        assert!(ledger.plan_registered(&bravo.verifying_key()).is_none());

        let plan = ledger.plan_registered(&alice.verifying_key()).unwrap();
        assert_eq!(plan.len(), 3, "alice's three entries, nobody else's");
        assert_eq!(plan.per_tenant.len(), 1);
        assert!(plan
            .per_tenant
            .contains_key(&alice.verifying_key().to_bytes()));

        let applied = ledger.apply_registered(&alice).unwrap().unwrap();
        assert_eq!(applied.matched(), plan.matched());
        // Bravo's entries are never touched by alice's registered sweep.
        let mut ts = 1_000;
        for _ in 0..30 {
            ledger.seal_block(Timestamp(ts)).unwrap();
            ts += 10;
        }
        let survivors = policy::sweep_candidates(ledger.chain());
        assert_eq!(
            survivors
                .iter()
                .filter(|c| c.author == bravo.verifying_key())
                .count(),
            3
        );
    }

    #[test]
    fn registry_compacts_executed_and_reopens_bit_identical() {
        let scratch = Scratch::new("registry-compaction");
        let alice = key(1);
        let mut durable = file_ledger(scratch.path());
        let mut requested = 0usize;
        for round in 0..40u64 {
            durable
                .submit_entry(Entry::sign_data(&alice, data("U", round)))
                .unwrap();
            let ts = Timestamp((durable.stats().blocks_appended + 1) * 10);
            let sealed = durable.seal_block(ts).unwrap();
            if round % 4 == 0 {
                let target = EntryId::new(sealed, EntryNumber(0));
                if durable.request_deletion(&alice, target, "cycle").is_ok() {
                    requested += 1;
                }
            }
        }
        let stats = durable.stats();
        assert!(requested >= 8);
        assert!(stats.executed_deletions > 0, "cycles must have executed");
        // Bounded: every executed record was compacted at its merge, so
        // the registry holds exactly the still-pending marks — its size is
        // a function of live-chain contents, not chain age.
        assert_eq!(durable.deletions.executed_count(), 0);
        assert_eq!(durable.deletions.len(), durable.deletions.pending_count());
        assert!(
            durable.deletions.len() < requested,
            "registry must not accumulate one record per historical request"
        );

        let before: Vec<DeletionRecord> = durable.deletions.iter().cloned().collect();
        drop(durable);
        // The acceptance bar: a close/reopen derives the registry from the
        // live blocks alone, bit-identical to the compacted long-runner.
        let reopened = file_ledger(scratch.path());
        let after: Vec<DeletionRecord> = reopened.deletions.iter().cloned().collect();
        assert_eq!(before, after);
        // The executed counter is per-session by design; the registry
        // contents are what must agree.
        assert_eq!(reopened.stats().executed_deletions, 0);
    }

    #[test]
    fn audit_live_answers_duplicates_elementwise() {
        let mut ledger = paper_ledger();
        let alice = key(1);
        grow(&mut ledger, 4, &[&alice]);
        let marked = EntryId::new(BlockNumber(1), EntryNumber(0));
        ledger.request_deletion(&alice, marked, "gdpr").unwrap();
        ledger.seal_block(Timestamp(1_000)).unwrap();
        let live = EntryId::new(BlockNumber(3), EntryNumber(0));
        let ghost = EntryId::new(BlockNumber(99), EntryNumber(0));

        // Each occurrence answers exactly like a lone query.
        let ids = vec![marked, live, marked, ghost, live, ghost, marked];
        let audited = ledger.audit_live(&ids);
        for (id, got) in ids.iter().zip(&audited) {
            assert_eq!(*got, ledger.is_live(*id), "id {id}");
        }
        let located = ledger.locate_many(&ids);
        for (id, loc) in ids.iter().zip(&located) {
            assert_eq!(*loc, ledger.locate(*id), "id {id}");
        }
    }
}

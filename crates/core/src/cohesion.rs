//! Semantic cohesion of deletions (§IV-D2).
//!
//! "A deletion request can only be granted, if further transactions do not
//! rely on it. … A deletion request of such a chain part of a transaction
//! chain can be approved by the signatures of all dependent parties. …
//! An automatic approached could be designed based on the principle of
//! Bell-LaPadula model or Brewer-Nash Model."
//!
//! Three policies are provided:
//!
//! * [`DependencyPolicy`] — the paper's default rule: live dependents block
//!   deletion unless every dependent author has co-signed the request.
//! * [`BellLaPadula`] — multi-level security: the requester's clearance
//!   must dominate the target's classification.
//! * [`BrewerNash`] — Chinese-wall conflict-of-interest classes over record
//!   schemas.
//!
//! Policies compose: the ledger always enforces [`DependencyPolicy`] and
//! optionally stacks one of the automatic models on top.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use seldel_chain::{DeleteRequest, EntryId};
use seldel_crypto::VerifyingKey;

/// Everything a cohesion policy may inspect about a deletion.
#[derive(Debug, Clone)]
pub struct CohesionContext<'a> {
    /// The deletion request (including co-signatures).
    pub request: &'a DeleteRequest,
    /// The requesting key.
    pub requester: VerifyingKey,
    /// The target entry's author.
    pub target_author: VerifyingKey,
    /// Schema name of the target's data record.
    pub target_schema: &'a str,
    /// The target's classification level, when labelled (see
    /// [`BellLaPadula`]); `None` for unlabelled data.
    pub target_level: Option<u64>,
    /// Live entries that declare a dependency on the target, with authors.
    pub live_dependents: &'a [(EntryId, VerifyingKey)],
    /// Schema names the requester has authored live entries in (used by the
    /// Chinese-wall rule).
    pub requester_history: &'a BTreeSet<String>,
}

/// Why a deletion violates cohesion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohesionViolation {
    /// A live dependent's author has not co-signed the deletion.
    UnapprovedDependent {
        /// The dependent entry.
        dependent: EntryId,
    },
    /// Bell-LaPadula: requester clearance below target classification.
    InsufficientClearance {
        /// Requester clearance level.
        clearance: u64,
        /// Target classification level.
        classification: u64,
    },
    /// Brewer-Nash: requester previously acted inside a conflicting class.
    ConflictOfInterest {
        /// The conflict class name.
        class: String,
        /// The schema that created the conflict.
        conflicting_schema: String,
    },
}

impl fmt::Display for CohesionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CohesionViolation::UnapprovedDependent { dependent } => {
                write!(
                    f,
                    "live entry {dependent} depends on the target and has not approved"
                )
            }
            CohesionViolation::InsufficientClearance {
                clearance,
                classification,
            } => write!(
                f,
                "requester clearance {clearance} below target classification {classification}"
            ),
            CohesionViolation::ConflictOfInterest {
                class,
                conflicting_schema,
            } => write!(
                f,
                "conflict of interest in class {class:?} via schema {conflicting_schema:?}"
            ),
        }
    }
}

impl std::error::Error for CohesionViolation {}

/// A pluggable semantic-cohesion rule.
pub trait CohesionPolicy: fmt::Debug + Send + Sync {
    /// Checks a deletion for cohesion violations.
    ///
    /// # Errors
    ///
    /// Returns the first [`CohesionViolation`] found.
    fn check(&self, ctx: &CohesionContext<'_>) -> Result<(), CohesionViolation>;

    /// Policy name for logs and reports.
    fn name(&self) -> &'static str;
}

/// The paper's default rule: every live dependent author must have
/// co-signed the deletion request.
#[derive(Debug, Clone, Copy, Default)]
pub struct DependencyPolicy;

impl CohesionPolicy for DependencyPolicy {
    fn check(&self, ctx: &CohesionContext<'_>) -> Result<(), CohesionViolation> {
        let message = ctx.request.cosign_message();
        for (dependent, author) in ctx.live_dependents {
            // The dependent's own author deleting their chain is fine when
            // the dependent author *is* the requester.
            if *author == ctx.requester {
                continue;
            }
            let approved = ctx.request.cosignatures().iter().any(|co| {
                co.signer == *author && co.signer.verify(&message, &co.signature).is_ok()
            });
            if !approved {
                return Err(CohesionViolation::UnapprovedDependent {
                    dependent: *dependent,
                });
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "dependency"
    }
}

/// Bell-LaPadula-style multi-level security.
///
/// Clearances are configured per key; data records may carry a
/// `classification` level. A requester may only delete targets whose
/// classification their clearance dominates (no "delete-up"). Unlabelled
/// targets are treated as level 0.
#[derive(Debug, Clone, Default)]
pub struct BellLaPadula {
    clearances: BTreeMap<[u8; 32], u64>,
    default_clearance: u64,
}

impl BellLaPadula {
    /// Creates a model where unknown keys have clearance 0.
    pub fn new() -> BellLaPadula {
        BellLaPadula::default()
    }

    /// Sets the clearance for unknown keys.
    pub fn with_default_clearance(mut self, level: u64) -> BellLaPadula {
        self.default_clearance = level;
        self
    }

    /// Assigns a clearance level to a key.
    pub fn with_clearance(mut self, key: VerifyingKey, level: u64) -> BellLaPadula {
        self.clearances.insert(key.to_bytes(), level);
        self
    }

    /// The clearance of `key`.
    pub fn clearance_of(&self, key: &VerifyingKey) -> u64 {
        self.clearances
            .get(&key.to_bytes())
            .copied()
            .unwrap_or(self.default_clearance)
    }
}

impl CohesionPolicy for BellLaPadula {
    fn check(&self, ctx: &CohesionContext<'_>) -> Result<(), CohesionViolation> {
        let classification = ctx.target_level.unwrap_or(0);
        let clearance = self.clearance_of(&ctx.requester);
        if clearance < classification {
            return Err(CohesionViolation::InsufficientClearance {
                clearance,
                classification,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "bell-lapadula"
    }
}

/// Brewer-Nash (Chinese wall) conflict-of-interest classes over schemas.
///
/// Each class groups schemas of competing parties. A requester who has
/// authored live entries under schema X may not delete entries of a
/// *different* schema in the same class.
#[derive(Debug, Clone, Default)]
pub struct BrewerNash {
    /// class name -> schemas in that class
    classes: BTreeMap<String, BTreeSet<String>>,
}

impl BrewerNash {
    /// Creates a model with no classes (allows everything).
    pub fn new() -> BrewerNash {
        BrewerNash::default()
    }

    /// Declares a conflict class over a set of schema names.
    pub fn with_class<I, S>(mut self, name: impl Into<String>, schemas: I) -> BrewerNash
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.classes
            .insert(name.into(), schemas.into_iter().map(Into::into).collect());
        self
    }
}

impl CohesionPolicy for BrewerNash {
    fn check(&self, ctx: &CohesionContext<'_>) -> Result<(), CohesionViolation> {
        for (class, schemas) in &self.classes {
            if !schemas.contains(ctx.target_schema) {
                continue;
            }
            for touched in ctx.requester_history {
                if touched != ctx.target_schema && schemas.contains(touched) {
                    return Err(CohesionViolation::ConflictOfInterest {
                        class: class.clone(),
                        conflicting_schema: touched.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "brewer-nash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{BlockNumber, EntryNumber};
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> SigningKey {
        SigningKey::from_seed([seed; 32])
    }

    fn id(b: u64, e: u32) -> EntryId {
        EntryId::new(BlockNumber(b), EntryNumber(e))
    }

    fn base_ctx<'a>(
        request: &'a DeleteRequest,
        requester: VerifyingKey,
        dependents: &'a [(EntryId, VerifyingKey)],
        history: &'a BTreeSet<String>,
    ) -> CohesionContext<'a> {
        CohesionContext {
            request,
            requester,
            target_author: requester,
            target_schema: "login",
            target_level: None,
            live_dependents: dependents,
            requester_history: history,
        }
    }

    #[test]
    fn dependency_policy_allows_no_dependents() {
        let req = DeleteRequest::new(id(3, 1), "");
        let history = BTreeSet::new();
        let ctx = base_ctx(&req, key(1).verifying_key(), &[], &history);
        DependencyPolicy.check(&ctx).unwrap();
    }

    #[test]
    fn dependency_policy_blocks_unapproved_dependent() {
        let req = DeleteRequest::new(id(3, 1), "");
        let dependents = vec![(id(4, 0), key(2).verifying_key())];
        let history = BTreeSet::new();
        let ctx = base_ctx(&req, key(1).verifying_key(), &dependents, &history);
        let err = DependencyPolicy.check(&ctx).unwrap_err();
        assert_eq!(
            err,
            CohesionViolation::UnapprovedDependent {
                dependent: id(4, 0)
            }
        );
    }

    #[test]
    fn dependency_policy_accepts_cosigned_dependent() {
        let dep_author = key(2);
        let mut req = DeleteRequest::new(id(3, 1), "");
        let sig = dep_author.sign(&req.cosign_message());
        req = req.with_cosignature(dep_author.verifying_key(), sig);
        let dependents = vec![(id(4, 0), dep_author.verifying_key())];
        let history = BTreeSet::new();
        let ctx = base_ctx(&req, key(1).verifying_key(), &dependents, &history);
        DependencyPolicy.check(&ctx).unwrap();
    }

    #[test]
    fn dependency_policy_ignores_own_dependents() {
        // Requester's own follow-up entries do not block the deletion.
        let requester = key(1);
        let req = DeleteRequest::new(id(3, 1), "");
        let dependents = vec![(id(4, 0), requester.verifying_key())];
        let history = BTreeSet::new();
        let ctx = base_ctx(&req, requester.verifying_key(), &dependents, &history);
        DependencyPolicy.check(&ctx).unwrap();
    }

    #[test]
    fn dependency_policy_rejects_forged_cosignature() {
        let dep_author = key(2);
        let mut req = DeleteRequest::new(id(3, 1), "");
        // Signature over the wrong message.
        req = req.with_cosignature(dep_author.verifying_key(), dep_author.sign(b"junk"));
        let dependents = vec![(id(4, 0), dep_author.verifying_key())];
        let history = BTreeSet::new();
        let ctx = base_ctx(&req, key(1).verifying_key(), &dependents, &history);
        assert!(DependencyPolicy.check(&ctx).is_err());
    }

    #[test]
    fn blp_blocks_delete_up() {
        let requester = key(1).verifying_key();
        let model = BellLaPadula::new().with_clearance(requester, 1);
        let req = DeleteRequest::new(id(3, 1), "");
        let history = BTreeSet::new();
        let mut ctx = base_ctx(&req, requester, &[], &history);
        ctx.target_level = Some(3);
        let err = model.check(&ctx).unwrap_err();
        assert_eq!(
            err,
            CohesionViolation::InsufficientClearance {
                clearance: 1,
                classification: 3
            }
        );
    }

    #[test]
    fn blp_allows_dominating_clearance() {
        let requester = key(1).verifying_key();
        let model = BellLaPadula::new().with_clearance(requester, 5);
        let req = DeleteRequest::new(id(3, 1), "");
        let history = BTreeSet::new();
        let mut ctx = base_ctx(&req, requester, &[], &history);
        ctx.target_level = Some(3);
        model.check(&ctx).unwrap();
        // Unlabelled data is level 0.
        ctx.target_level = None;
        model.check(&ctx).unwrap();
    }

    #[test]
    fn brewer_nash_blocks_conflicting_class() {
        let model = BrewerNash::new().with_class("banks", ["bank-a", "bank-b"]);
        let req = DeleteRequest::new(id(3, 1), "");
        let history: BTreeSet<String> = ["bank-b".to_string()].into();
        let mut ctx = base_ctx(&req, key(1).verifying_key(), &[], &history);
        ctx.target_schema = "bank-a";
        let err = model.check(&ctx).unwrap_err();
        assert!(matches!(err, CohesionViolation::ConflictOfInterest { .. }));
    }

    #[test]
    fn brewer_nash_allows_same_schema_and_unrelated() {
        let model = BrewerNash::new().with_class("banks", ["bank-a", "bank-b"]);
        let req = DeleteRequest::new(id(3, 1), "");
        // History inside the same schema: allowed.
        let history: BTreeSet<String> = ["bank-a".to_string()].into();
        let mut ctx = base_ctx(&req, key(1).verifying_key(), &[], &history);
        ctx.target_schema = "bank-a";
        model.check(&ctx).unwrap();
        // Unrelated schema target: allowed.
        ctx.target_schema = "login";
        model.check(&ctx).unwrap();
    }

    #[test]
    fn policy_names() {
        assert_eq!(DependencyPolicy.name(), "dependency");
        assert_eq!(BellLaPadula::new().name(), "bell-lapadula");
        assert_eq!(BrewerNash::new().name(), "brewer-nash");
    }

    #[test]
    fn violation_display() {
        let v = CohesionViolation::UnapprovedDependent {
            dependent: id(4, 0),
        };
        assert!(v.to_string().contains("4:0"));
    }
}

//! Ledger configuration: sequence length l, retention policy (l_max and
//! minimums), anchoring and idle filling.

use seldel_chain::BlockNumber;

/// How the Fig. 9 anchor is chosen when a summary block absorbs pruned
/// history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnchorPolicy {
    /// No anchoring (the plain concept of §IV-C).
    #[default]
    None,
    /// Anchor the middle sequence ω_{lβ/2} (§V-B1): every record older than
    /// lβ/2 keeps at least lβ/2 confirmations after pruning.
    MiddleSequence,
}

/// How many sequences to retire once the limit is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetireMode {
    /// Retire the fewest oldest sequences that bring the chain back under
    /// `max_live_blocks`.
    #[default]
    MinimumNeeded,
    /// Retire *all* closed sequences (subject to the minimums) — the
    /// behaviour of the paper's prototype: in Fig. 7 both old sequences
    /// are merged into the latest summary block at once, even though
    /// retiring one would have sufficed.
    FullCompaction,
}

/// Bounds on how much of the chain must survive pruning (§IV-D3: "To avoid
/// shortening the blockchain too much, a minimum length or a minimum number
/// of summary blocks can be specified … Another criterion … is a minimum
/// time span coverage").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// l_max: prune once the live chain exceeds this many blocks.
    /// `None` disables pruning (the chain degenerates to the baseline).
    pub max_live_blocks: Option<u64>,
    /// Minimum number of live blocks that must remain.
    pub min_live_blocks: u64,
    /// Minimum number of live summary blocks that must remain (the freshly
    /// created summary block counts).
    pub min_live_summaries: u64,
    /// Minimum covered virtual time span (ms) that must remain.
    pub min_timespan: Option<u64>,
    /// Retirement aggressiveness once the limit trips.
    pub mode: RetireMode,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_live_blocks: Some(64),
            min_live_blocks: 4,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        }
    }
}

impl RetentionPolicy {
    /// A policy that never prunes (baseline behaviour).
    pub fn keep_forever() -> RetentionPolicy {
        RetentionPolicy {
            max_live_blocks: None,
            min_live_blocks: 1,
            min_live_summaries: 0,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        }
    }

    /// A simple bounded policy with the given l_max.
    pub fn bounded(max_live_blocks: u64) -> RetentionPolicy {
        RetentionPolicy {
            max_live_blocks: Some(max_live_blocks),
            ..RetentionPolicy::default()
        }
    }
}

/// Idle filling (§IV-D3): "To prevent a long delay in deletion … regularly
/// adding empty blocks after a time interval if no transaction has
/// occurred."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleFillPolicy {
    /// Append an empty block once the tip is this many virtual ms old.
    pub max_idle_ms: u64,
}

/// Full ledger configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConfig {
    /// Sequence length l: every l-th block is a summary block, so each
    /// sequence ω holds `l` blocks ending in its Σ. The paper's evaluation
    /// uses l = 3 ("a summary block for every third block").
    pub sequence_length: u64,
    /// Retention bounds.
    pub retention: RetentionPolicy,
    /// Fig. 9 anchoring behaviour.
    pub anchoring: AnchorPolicy,
    /// Idle filler; `None` means deletion latency is unbounded on an idle
    /// chain (the trade-off the paper names in §IV-D3).
    pub idle_fill: Option<IdleFillPolicy>,
    /// Maximum entries the leader seals into one block; `None` (the
    /// historical behaviour) seals the whole mempool. With a cap, the
    /// sharded mempool drains **fair round-robin across author shards**,
    /// so a flooding author cannot occupy every slot of a block — the
    /// overflow stays queued for the next one.
    pub max_block_entries: Option<usize>,
    /// Chain identity note stored in the genesis block.
    pub chain_note: String,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            sequence_length: 10,
            retention: RetentionPolicy::default(),
            anchoring: AnchorPolicy::None,
            idle_fill: None,
            max_block_entries: None,
            chain_note: "selective-deletion chain".to_string(),
        }
    }
}

impl ChainConfig {
    /// The configuration of the paper's evaluation (§V): a summary block
    /// every third block (l = 3), l_max = 6, full compaction.
    ///
    /// With this configuration the ledger reproduces Figs. 6–8 exactly:
    /// Σ2 and Σ5 stay empty; at Σ8 the chain projects 9 > 6 blocks, so
    /// both closed sequences merge into Σ8 and the marker shifts to 6; one
    /// merge cycle later (Σ14) the next two sequences merge and the
    /// deletion-request entry from block 6 disappears.
    pub fn paper_evaluation() -> ChainConfig {
        ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy {
                max_live_blocks: Some(6),
                min_live_blocks: 3,
                min_live_summaries: 1,
                min_timespan: None,
                mode: RetireMode::FullCompaction,
            },
            anchoring: AnchorPolicy::None,
            idle_fill: None,
            max_block_entries: None,
            chain_note: "login audit chain".to_string(),
        }
    }

    /// Whether block number α is a summary slot: α ≡ l−1 (mod l), i.e. the
    /// 3rd, 6th, 9th … block for l = 3 (blocks 2, 5, 8 …).
    pub fn is_summary_slot(&self, number: BlockNumber) -> bool {
        (number.value() + 1).is_multiple_of(self.sequence_length)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `sequence_length < 2` (a sequence must hold at least one
    /// payload block plus its summary) or the retention minimums exceed
    /// l_max.
    pub fn assert_valid(&self) {
        assert!(
            self.sequence_length >= 2,
            "sequence_length must be at least 2, got {}",
            self.sequence_length
        );
        if let Some(max) = self.retention.max_live_blocks {
            assert!(
                max >= self.retention.min_live_blocks,
                "max_live_blocks {max} below min_live_blocks {}",
                self.retention.min_live_blocks
            );
            assert!(
                max >= self.sequence_length,
                "max_live_blocks {max} below sequence_length {}",
                self.sequence_length
            );
        }
        if let Some(cap) = self.max_block_entries {
            assert!(cap >= 1, "max_block_entries must be at least 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_slots_for_l3() {
        let cfg = ChainConfig {
            sequence_length: 3,
            ..Default::default()
        };
        let slots: Vec<u64> = (0..10)
            .filter(|&n| cfg.is_summary_slot(BlockNumber(n)))
            .collect();
        assert_eq!(slots, [2, 5, 8]);
    }

    #[test]
    fn summary_slots_for_l10() {
        let cfg = ChainConfig::default();
        assert!(cfg.is_summary_slot(BlockNumber(9)));
        assert!(cfg.is_summary_slot(BlockNumber(19)));
        assert!(!cfg.is_summary_slot(BlockNumber(10)));
    }

    #[test]
    fn paper_config_matches_evaluation() {
        let cfg = ChainConfig::paper_evaluation();
        assert_eq!(cfg.sequence_length, 3);
        cfg.assert_valid();
    }

    #[test]
    #[should_panic(expected = "sequence_length")]
    fn tiny_sequence_rejected() {
        ChainConfig {
            sequence_length: 1,
            ..Default::default()
        }
        .assert_valid();
    }

    #[test]
    #[should_panic(expected = "below sequence_length")]
    fn retention_below_sequence_rejected() {
        ChainConfig {
            sequence_length: 10,
            retention: RetentionPolicy::bounded(5),
            ..Default::default()
        }
        .assert_valid();
    }

    #[test]
    fn keep_forever_never_prunes() {
        assert_eq!(RetentionPolicy::keep_forever().max_live_blocks, None);
    }
}

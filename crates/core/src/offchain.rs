//! Off-chain payload storage via hash references (§V-B2).
//!
//! "The copying of much information can be avoided by working with hash
//! references. The data packets are stored separately and only linked in
//! the blockchain, as with other off-chain approaches."
//!
//! [`ContentStore`] keeps payload blobs outside the chain; entries carry a
//! small fixed-size *reference record* (`schema "offchain-ref"`) holding
//! the SHA-256 of the blob. Benefits for selective deletion:
//!
//! * summary blocks stay small — merging copies only the references;
//! * erasure can be *immediate* for the payload: dropping the blob from
//!   every store renders the data unreadable even before the reference is
//!   merged out (the related-work "encrypted / off-chain" pattern the
//!   paper discusses in §III, combined with its own summary mechanism).

use std::collections::BTreeMap;
use std::fmt;

use seldel_codec::DataRecord;
use seldel_crypto::{sha256, Digest32};

/// Schema name of reference records.
pub const OFFCHAIN_SCHEMA: &str = "offchain-ref";

/// YAML schema for reference records (register in the ledger's registry
/// when schema validation is on).
pub const OFFCHAIN_SCHEMA_YAML: &str = "\
record: offchain-ref
fields:
  digest: bytes
  len: u64
  label: str?
";

/// Errors from the content store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffChainError {
    /// No blob stored under this digest (never stored, or erased).
    NotFound(Digest32),
    /// The record is not a well-formed off-chain reference.
    MalformedReference,
    /// Stored blob does not hash to the requested digest (store
    /// corruption).
    DigestMismatch {
        /// The digest the reference claims.
        expected: Digest32,
        /// The digest of the stored bytes.
        actual: Digest32,
    },
}

impl fmt::Display for OffChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffChainError::NotFound(d) => write!(f, "no blob stored for digest {}", d.short()),
            OffChainError::MalformedReference => f.write_str("malformed off-chain reference"),
            OffChainError::DigestMismatch { expected, actual } => write!(
                f,
                "blob digest mismatch: expected {}, found {}",
                expected.short(),
                actual.short()
            ),
        }
    }
}

impl std::error::Error for OffChainError {}

/// A content-addressed blob store (one per node; erasure must be executed
/// on every store, which is the trust trade-off of all off-chain schemes).
#[derive(Debug, Clone, Default)]
pub struct ContentStore {
    blobs: BTreeMap<[u8; 32], Vec<u8>>,
}

impl ContentStore {
    /// Creates an empty store.
    pub fn new() -> ContentStore {
        ContentStore::default()
    }

    /// Stores a blob and returns a reference record for the chain.
    pub fn put(&mut self, label: &str, payload: Vec<u8>) -> DataRecord {
        let digest = sha256(&payload);
        let len = payload.len() as u64;
        self.blobs.insert(digest.into_bytes(), payload);
        DataRecord::new(OFFCHAIN_SCHEMA)
            .with(
                "digest",
                seldel_codec::Value::Bytes(digest.as_bytes().to_vec()),
            )
            .with("len", len)
            .with("label", label)
    }

    /// Resolves a reference record to its payload, verifying the digest.
    ///
    /// # Errors
    ///
    /// [`OffChainError::MalformedReference`] for non-reference records,
    /// [`OffChainError::NotFound`] when the blob was erased, and
    /// [`OffChainError::DigestMismatch`] on store corruption.
    pub fn resolve(&self, reference: &DataRecord) -> Result<&[u8], OffChainError> {
        let digest = Self::reference_digest(reference)?;
        let blob = self
            .blobs
            .get(digest.as_bytes())
            .ok_or(OffChainError::NotFound(digest))?;
        let actual = sha256(blob);
        if actual != digest {
            return Err(OffChainError::DigestMismatch {
                expected: digest,
                actual,
            });
        }
        Ok(blob)
    }

    /// Extracts the digest from a reference record.
    ///
    /// # Errors
    ///
    /// [`OffChainError::MalformedReference`] when the record does not carry
    /// a 32-byte `digest` field under the off-chain schema.
    pub fn reference_digest(reference: &DataRecord) -> Result<Digest32, OffChainError> {
        if reference.schema() != OFFCHAIN_SCHEMA {
            return Err(OffChainError::MalformedReference);
        }
        let bytes = reference
            .get("digest")
            .and_then(|v| v.as_bytes())
            .ok_or(OffChainError::MalformedReference)?;
        if bytes.len() != 32 {
            return Err(OffChainError::MalformedReference);
        }
        let mut array = [0u8; 32];
        array.copy_from_slice(bytes);
        Ok(Digest32::from_bytes(array))
    }

    /// Erases a blob — the off-chain half of the right to erasure. The
    /// on-chain reference becomes permanently unresolvable and is cleaned
    /// up by the normal deletion/summary machinery.
    ///
    /// Returns `true` when a blob was present.
    pub fn erase(&mut self, digest: &Digest32) -> bool {
        self.blobs.remove(digest.as_bytes()).is_some()
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total stored payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.blobs.values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_resolve_round_trip() {
        let mut store = ContentStore::new();
        let reference = store.put("report", b"large payload".to_vec());
        assert_eq!(reference.schema(), OFFCHAIN_SCHEMA);
        assert_eq!(store.resolve(&reference).unwrap(), b"large payload");
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 13);
    }

    #[test]
    fn reference_is_small_regardless_of_payload() {
        let mut store = ContentStore::new();
        let small = store.put("s", vec![0u8; 10]);
        let large = store.put("l", vec![1u8; 1_000_000]);
        let small_len = seldel_codec::Codec::to_canonical_bytes(&small).len();
        let large_len = seldel_codec::Codec::to_canonical_bytes(&large).len();
        assert!(
            large_len <= small_len + 8,
            "references must stay fixed-size"
        );
        assert!(large_len < 200);
    }

    #[test]
    fn erase_makes_reference_unresolvable() {
        let mut store = ContentStore::new();
        let reference = store.put("x", b"personal data".to_vec());
        let digest = ContentStore::reference_digest(&reference).unwrap();
        assert!(store.erase(&digest));
        assert!(matches!(
            store.resolve(&reference),
            Err(OffChainError::NotFound(_))
        ));
        // Idempotent.
        assert!(!store.erase(&digest));
    }

    #[test]
    fn malformed_references_rejected() {
        let store = ContentStore::new();
        let wrong_schema =
            DataRecord::new("other").with("digest", seldel_codec::Value::Bytes(vec![0; 32]));
        assert_eq!(
            store.resolve(&wrong_schema),
            Err(OffChainError::MalformedReference)
        );
        let short_digest = DataRecord::new(OFFCHAIN_SCHEMA)
            .with("digest", seldel_codec::Value::Bytes(vec![0; 16]))
            .with("len", 0u64);
        assert_eq!(
            store.resolve(&short_digest),
            Err(OffChainError::MalformedReference)
        );
    }

    #[test]
    fn corruption_detected() {
        let mut store = ContentStore::new();
        let reference = store.put("x", b"abc".to_vec());
        let digest = ContentStore::reference_digest(&reference).unwrap();
        // Corrupt the stored blob directly.
        store.blobs.insert(digest.into_bytes(), b"evil".to_vec());
        assert!(matches!(
            store.resolve(&reference),
            Err(OffChainError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn schema_yaml_parses() {
        seldel_codec::schema::RecordSchema::parse_yaml(OFFCHAIN_SCHEMA_YAML).unwrap();
    }
}

//! Declarative deletion policies: a selector DSL compiled into a validated
//! predicate, evaluated against the live chain in bulk.
//!
//! The paper's deletion workflow (§IV-D) erases one `(block α, entry)` id
//! per request. Real erasure obligations arrive as *policies* — "erase
//! everything author X wrote before τ" (the GDPR Art. 17 scenario the
//! redactable-blockchain literature keeps motivating). This module adds
//! that layer **without** touching the deletion lifecycle: a policy
//! compiles into a predicate, the predicate selects live candidates, and
//! every match flows through the exact same marked-deletion machinery as a
//! manual request — Σ derivation, tombstones, Merkle roots and the
//! physical prune behave identically.
//!
//! The flow has two halves:
//!
//! * **dry run** ([`SelectiveLedger::plan_policy`](crate::SelectiveLedger::plan_policy)):
//!   evaluate the selector, run the full per-id authorisation ladder, and
//!   report a [`DeletionPlan`] — matched ids, bytes, per-tenant counts —
//!   applying nothing;
//! * **apply** ([`SelectiveLedger::apply_policy`](crate::SelectiveLedger::apply_policy)):
//!   recompute the same plan and enqueue one signed deletion request per
//!   matched id. The id set a dry run reports is exactly the id set apply
//!   erases (property-tested against the sequential one-at-a-time oracle).
//!
//! Candidate sweeps read the **hot cache** ([`Blockchain::iter_hot`]) —
//! never a cold disk scan — and liveness is confirmed through the bulk
//! [`audit_live`](crate::SelectiveLedger::audit_live) path.

use std::collections::BTreeMap;
use std::fmt;

use seldel_chain::{
    BlockKind, BlockStore, Blockchain, EntryId, EntryNumber, EntryPayload, Expiry, Timestamp,
};
use seldel_crypto::VerifyingKey;

/// Maximum `And`/`Or`/`Not` nesting depth a selector may use. Policies are
/// operator-written configuration; a depth past this is a generation bug,
/// not a real erasure rule.
pub const MAX_SELECTOR_DEPTH: usize = 16;

/// The TTL class of a data set, keyed off its (optional) §IV-D4 expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlClass {
    /// No expiry: the record lives until explicitly deleted.
    Permanent,
    /// Any expiry (τ- or α-bounded).
    Temporary,
    /// Expires at a timestamp ([`Expiry::AtTimestamp`]).
    ByTimestamp,
    /// Expires at a block number ([`Expiry::AtBlock`]).
    ByBlock,
}

impl TtlClass {
    /// Whether a record with the given expiry belongs to this class.
    pub fn matches(&self, expiry: Option<Expiry>) -> bool {
        matches!(
            (self, expiry),
            (TtlClass::Permanent, None)
                | (TtlClass::Temporary, Some(_))
                | (TtlClass::ByTimestamp, Some(Expiry::AtTimestamp(_)))
                | (TtlClass::ByBlock, Some(Expiry::AtBlock(_)))
        )
    }
}

/// The selector DSL: which live data sets a deletion policy targets.
///
/// Leaves select on record metadata (author, age, TTL class, schema);
/// `And`/`Or`/`Not` compose them. A selector must pass
/// [`Selector::compile`] before it can run — compilation rejects
/// degenerate shapes (empty author sets, zero-arm combinators, blank
/// schemas, runaway nesting) so a malformed policy fails loudly at
/// registration instead of silently matching nothing or everything.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// The record's author is exactly this key.
    AuthorIs(VerifyingKey),
    /// The record's author is one of these keys (non-empty).
    AuthorIn(Vec<VerifyingKey>),
    /// The record was written strictly before τ (original block timestamp;
    /// summary-carried records keep their origin timestamp, Fig. 4, so age
    /// is merge-invariant).
    OlderThan(Timestamp),
    /// The record's TTL class matches.
    Ttl(TtlClass),
    /// The record's payload schema is exactly this name.
    SchemaIs(String),
    /// Every arm matches (non-empty).
    And(Vec<Selector>),
    /// At least one arm matches (non-empty).
    Or(Vec<Selector>),
    /// The inner selector does not match.
    Not(Box<Selector>),
}

impl Selector {
    /// Validates the selector and packages it as a [`CompiledPolicy`]
    /// named `name`.
    ///
    /// # Errors
    ///
    /// See [`PolicyError`].
    pub fn compile(self, name: impl Into<String>) -> Result<CompiledPolicy, PolicyError> {
        let name = name.into();
        if name.is_empty() {
            return Err(PolicyError::EmptyName);
        }
        self.validate(1)?;
        Ok(CompiledPolicy {
            name,
            selector: self,
        })
    }

    fn validate(&self, depth: usize) -> Result<(), PolicyError> {
        if depth > MAX_SELECTOR_DEPTH {
            return Err(PolicyError::TooDeep {
                max: MAX_SELECTOR_DEPTH,
            });
        }
        match self {
            Selector::AuthorIs(_) | Selector::OlderThan(_) | Selector::Ttl(_) => Ok(()),
            Selector::AuthorIn(keys) => {
                if keys.is_empty() {
                    Err(PolicyError::EmptyAuthorSet)
                } else {
                    Ok(())
                }
            }
            Selector::SchemaIs(schema) => {
                if schema.is_empty() {
                    Err(PolicyError::EmptySchema)
                } else {
                    Ok(())
                }
            }
            Selector::And(arms) | Selector::Or(arms) => {
                if arms.is_empty() {
                    return Err(PolicyError::EmptyCombinator);
                }
                arms.iter().try_for_each(|arm| arm.validate(depth + 1))
            }
            Selector::Not(inner) => inner.validate(depth + 1),
        }
    }

    /// Whether the (validated) selector matches a candidate.
    fn matches(&self, c: &Candidate) -> bool {
        match self {
            Selector::AuthorIs(key) => c.author == *key,
            Selector::AuthorIn(keys) => keys.contains(&c.author),
            Selector::OlderThan(t) => c.written_at < *t,
            Selector::Ttl(class) => class.matches(c.expiry),
            Selector::SchemaIs(schema) => c.schema == *schema,
            Selector::And(arms) => arms.iter().all(|arm| arm.matches(c)),
            Selector::Or(arms) => arms.iter().any(|arm| arm.matches(c)),
            Selector::Not(inner) => !inner.matches(c),
        }
    }
}

/// Why a selector failed to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// The policy name is empty.
    EmptyName,
    /// `AuthorIn` with no keys would match nothing — almost certainly a
    /// caller bug, and silently applying it would "succeed" vacuously.
    EmptyAuthorSet,
    /// `And`/`Or` with no arms has ambiguous semantics (vacuous truth vs.
    /// vacuous falsehood); both are refused.
    EmptyCombinator,
    /// `SchemaIs` with an empty name (no record has a blank schema).
    EmptySchema,
    /// Nesting exceeds [`MAX_SELECTOR_DEPTH`].
    TooDeep {
        /// The configured cap.
        max: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::EmptyName => write!(f, "policy name is empty"),
            PolicyError::EmptyAuthorSet => write!(f, "AuthorIn selector has no keys"),
            PolicyError::EmptyCombinator => write!(f, "And/Or selector has no arms"),
            PolicyError::EmptySchema => write!(f, "SchemaIs selector has an empty name"),
            PolicyError::TooDeep { max } => {
                write!(f, "selector nesting exceeds the depth cap of {max}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// A validated, named deletion policy — the only thing the ledger's
/// policy entry points accept. Construct via [`Selector::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolicy {
    name: String,
    selector: Selector,
}

impl CompiledPolicy {
    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The deletion reason stamped into every request this policy issues
    /// (visible in [`DeleteRequest::reason`](seldel_chain::DeleteRequest)).
    pub fn reason(&self) -> String {
        format!("policy:{}", self.name)
    }

    /// Whether the policy matches a candidate.
    pub fn matches(&self, c: &Candidate) -> bool {
        self.selector.matches(c)
    }

    /// A copy of this policy restricted to `owner`'s own records —
    /// the shape per-tenant registration stores, so a registered policy
    /// can never select foreign data regardless of how broad its
    /// selector is. Scoping never invalidates a compiled policy: it
    /// wraps the root in one extra `And` level, which is exempt from
    /// the depth cap applied at compile time.
    pub fn scoped_to(&self, owner: VerifyingKey) -> CompiledPolicy {
        CompiledPolicy {
            name: self.name.clone(),
            selector: Selector::And(vec![Selector::AuthorIs(owner), self.selector.clone()]),
        }
    }
}

/// Per-candidate metadata the selector evaluates: one row per live data
/// set, harvested in a single hot-cache sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The data set's stable id.
    pub id: EntryId,
    /// The author key.
    pub author: VerifyingKey,
    /// Original block timestamp (origin timestamp for carried records).
    pub written_at: Timestamp,
    /// Payload schema name.
    pub schema: String,
    /// The §IV-D4 expiry, when the record is temporary.
    pub expiry: Option<Expiry>,
    /// Canonical payload byte size.
    pub bytes: u64,
}

/// Sweeps the live chain for policy candidates: every data entry still in
/// its original block plus every carried summary record, in chain order.
/// Deletion-request entries are transport, not data, and are skipped.
///
/// Reads through the hot-block cache ([`Blockchain::iter_hot`]) so a
/// policy evaluation on a paged backend never triggers a cold disk scan.
pub fn sweep_candidates<S: BlockStore>(chain: &Blockchain<S>) -> Vec<Candidate> {
    let mut out = Vec::new();
    for block in chain.iter_hot() {
        match block.kind() {
            BlockKind::Normal => {
                for (i, entry) in block.entries().iter().enumerate() {
                    let EntryPayload::Data(record) = entry.payload() else {
                        continue;
                    };
                    out.push(Candidate {
                        id: EntryId::new(block.number(), EntryNumber(i as u32)),
                        author: entry.author(),
                        written_at: block.timestamp(),
                        schema: record.schema().to_string(),
                        expiry: entry.expiry(),
                        bytes: record.byte_size() as u64,
                    });
                }
            }
            BlockKind::Summary => {
                for record in block.summary_records() {
                    out.push(Candidate {
                        id: record.origin(),
                        author: record.author(),
                        written_at: record.origin_timestamp(),
                        schema: record.record().schema().to_string(),
                        expiry: record.expiry(),
                        bytes: record.record().byte_size() as u64,
                    });
                }
            }
            BlockKind::Genesis | BlockKind::Empty => {}
        }
    }
    out
}

/// Per-tenant slice of a [`DeletionPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSlice {
    /// Matched data sets owned by this tenant.
    pub count: u64,
    /// Their total payload bytes.
    pub bytes: u64,
}

/// What a policy evaluation found — the dry-run audit report, and the
/// exact work order an apply executes.
///
/// `matched` is the contract: a dry run reports it, apply enqueues one
/// deletion request per element, nothing more and nothing less. Ids are
/// sorted ascending; per-tenant rollups are keyed by the author's key
/// bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeletionPlan {
    /// Name of the policy that produced this plan.
    pub policy: String,
    /// Ids that matched the selector *and* passed the full per-id
    /// validation ladder (authorisation, cohesion), sorted ascending.
    pub matched: Vec<EntryId>,
    /// Total payload bytes behind `matched`.
    pub matched_bytes: u64,
    /// Matched work broken down by owning author key.
    pub per_tenant: BTreeMap<[u8; 32], TenantSlice>,
    /// Ids the selector matched but the validation ladder refused
    /// (e.g. a live dependent blocks cohesion), with the refusal reason.
    /// Reported, never silently dropped: a compliance sweep needs to know
    /// what it could *not* erase.
    pub blocked: Vec<(EntryId, String)>,
    /// Live candidates examined.
    pub scanned: usize,
}

impl DeletionPlan {
    /// An empty plan for `policy` over `scanned` candidates.
    pub(crate) fn new(policy: &str, scanned: usize) -> DeletionPlan {
        DeletionPlan {
            policy: policy.to_string(),
            scanned,
            ..DeletionPlan::default()
        }
    }

    /// Admits a validated candidate into the matched set (callers feed
    /// candidates in ascending id order, keeping `matched` sorted).
    pub(crate) fn admit(&mut self, c: &Candidate) {
        self.matched.push(c.id);
        self.matched_bytes += c.bytes;
        let slice = self.per_tenant.entry(c.author.to_bytes()).or_default();
        slice.count += 1;
        slice.bytes += c.bytes;
    }

    /// Records a selector hit the validation ladder refused.
    pub(crate) fn block(&mut self, id: EntryId, reason: String) {
        self.blocked.push((id, reason));
    }

    /// The matched ids, sorted ascending.
    pub fn matched(&self) -> &[EntryId] {
        &self.matched
    }

    /// Number of matched data sets.
    pub fn len(&self) -> usize {
        self.matched.len()
    }

    /// Whether the plan matched nothing.
    pub fn is_empty(&self) -> bool {
        self.matched.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::BlockNumber;
    use seldel_crypto::SigningKey;

    fn key(seed: u8) -> VerifyingKey {
        SigningKey::from_seed([seed; 32]).verifying_key()
    }

    fn candidate(seed: u8, ts: u64, schema: &str, expiry: Option<Expiry>) -> Candidate {
        Candidate {
            id: EntryId::new(BlockNumber(1), EntryNumber(0)),
            author: key(seed),
            written_at: Timestamp(ts),
            schema: schema.to_string(),
            expiry,
            bytes: 32,
        }
    }

    #[test]
    fn leaves_match_on_their_dimension() {
        let c = candidate(1, 50, "login", None);
        assert!(Selector::AuthorIs(key(1)).matches(&c));
        assert!(!Selector::AuthorIs(key(2)).matches(&c));
        assert!(Selector::AuthorIn(vec![key(2), key(1)]).matches(&c));
        assert!(!Selector::AuthorIn(vec![key(2), key(3)]).matches(&c));
        assert!(Selector::OlderThan(Timestamp(51)).matches(&c));
        assert!(!Selector::OlderThan(Timestamp(50)).matches(&c)); // strict
        assert!(Selector::SchemaIs("login".into()).matches(&c));
        assert!(!Selector::SchemaIs("audit".into()).matches(&c));
    }

    #[test]
    fn ttl_classes_partition_expiries() {
        let perm = candidate(1, 10, "x", None);
        let by_ts = candidate(1, 10, "x", Some(Expiry::AtTimestamp(Timestamp(99))));
        let by_block = candidate(1, 10, "x", Some(Expiry::AtBlock(BlockNumber(9))));
        assert!(Selector::Ttl(TtlClass::Permanent).matches(&perm));
        assert!(!Selector::Ttl(TtlClass::Permanent).matches(&by_ts));
        assert!(Selector::Ttl(TtlClass::Temporary).matches(&by_ts));
        assert!(Selector::Ttl(TtlClass::Temporary).matches(&by_block));
        assert!(!Selector::Ttl(TtlClass::Temporary).matches(&perm));
        assert!(Selector::Ttl(TtlClass::ByTimestamp).matches(&by_ts));
        assert!(!Selector::Ttl(TtlClass::ByTimestamp).matches(&by_block));
        assert!(Selector::Ttl(TtlClass::ByBlock).matches(&by_block));
        assert!(!Selector::Ttl(TtlClass::ByBlock).matches(&by_ts));
    }

    #[test]
    fn combinators_compose() {
        let c = candidate(1, 50, "login", None);
        let and = Selector::And(vec![
            Selector::AuthorIs(key(1)),
            Selector::OlderThan(Timestamp(100)),
        ]);
        assert!(and.matches(&c));
        let or = Selector::Or(vec![
            Selector::AuthorIs(key(2)),
            Selector::SchemaIs("login".into()),
        ]);
        assert!(or.matches(&c));
        assert!(!Selector::Not(Box::new(and)).matches(&c));
        let nand = Selector::And(vec![
            Selector::AuthorIs(key(1)),
            Selector::SchemaIs("audit".into()),
        ]);
        assert!(Selector::Not(Box::new(nand)).matches(&c));
    }

    #[test]
    fn compile_rejects_degenerate_shapes() {
        assert_eq!(
            Selector::AuthorIn(vec![]).compile("p").unwrap_err(),
            PolicyError::EmptyAuthorSet
        );
        assert_eq!(
            Selector::And(vec![]).compile("p").unwrap_err(),
            PolicyError::EmptyCombinator
        );
        assert_eq!(
            Selector::Or(vec![]).compile("p").unwrap_err(),
            PolicyError::EmptyCombinator
        );
        assert_eq!(
            Selector::SchemaIs(String::new()).compile("p").unwrap_err(),
            PolicyError::EmptySchema
        );
        assert_eq!(
            Selector::AuthorIs(key(1)).compile("").unwrap_err(),
            PolicyError::EmptyName
        );
        // Nested empties are found too.
        let nested = Selector::And(vec![
            Selector::AuthorIs(key(1)),
            Selector::Not(Box::new(Selector::Or(vec![]))),
        ]);
        assert_eq!(
            nested.compile("p").unwrap_err(),
            PolicyError::EmptyCombinator
        );
    }

    #[test]
    fn compile_caps_nesting_depth() {
        let mut sel = Selector::AuthorIs(key(1));
        for _ in 0..MAX_SELECTOR_DEPTH {
            sel = Selector::Not(Box::new(sel));
        }
        assert!(matches!(
            sel.compile("deep").unwrap_err(),
            PolicyError::TooDeep { .. }
        ));
        // One level under the cap compiles.
        let mut ok = Selector::AuthorIs(key(1));
        for _ in 0..MAX_SELECTOR_DEPTH - 1 {
            ok = Selector::Not(Box::new(ok));
        }
        assert!(ok.compile("deep").is_ok());
    }

    #[test]
    fn scoped_policy_only_matches_owner() {
        let broad = Selector::OlderThan(Timestamp(100))
            .compile("purge")
            .unwrap();
        let scoped = broad.scoped_to(key(1));
        assert!(scoped.matches(&candidate(1, 50, "x", None)));
        assert!(!scoped.matches(&candidate(2, 50, "x", None)));
        assert_eq!(scoped.name(), "purge");
        assert_eq!(scoped.reason(), "policy:purge");
    }

    #[test]
    fn scoping_survives_a_depth_cap_compile() {
        // A policy compiled right at the cap can still be scoped: scoping
        // adds a level but is applied post-validation by design.
        let mut sel = Selector::AuthorIs(key(1));
        for _ in 0..MAX_SELECTOR_DEPTH - 1 {
            sel = Selector::Not(Box::new(sel));
        }
        let compiled = sel.compile("edge").unwrap();
        let scoped = compiled.scoped_to(key(1));
        assert!(matches!(scoped.selector(), Selector::And(_)));
    }
}

//! Observable ledger events, used by tests, experiments and node logs.

use std::fmt;

use seldel_chain::{BlockNumber, EntryId, Timestamp};
use seldel_crypto::VerifyingKey;

/// Something noteworthy the ledger did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerEvent {
    /// A normal block was sealed.
    BlockSealed {
        /// Number of the sealed block.
        number: BlockNumber,
        /// Entries included.
        entries: usize,
    },
    /// An idle filler block was appended (§IV-D3).
    EmptyBlockAdded {
        /// Number of the filler block.
        number: BlockNumber,
    },
    /// A summary block Σ was created (§IV-B).
    SummaryCreated {
        /// Number of the summary block.
        number: BlockNumber,
        /// Records carried forward into it.
        records: usize,
        /// Whether a Fig. 9 anchor was embedded.
        anchored: bool,
    },
    /// Old sequences were merged and cut off (§IV-C).
    SequencesRetired {
        /// First retired block.
        from: BlockNumber,
        /// Last retired block (inclusive).
        to: BlockNumber,
        /// Records carried into the merging summary.
        carried: usize,
    },
    /// The genesis marker shifted (§IV-C).
    MarkerShifted {
        /// Previous marker.
        old: BlockNumber,
        /// New marker.
        new: BlockNumber,
    },
    /// A deletion request was accepted and its target marked (§IV-D).
    DeletionMarked {
        /// Target data set.
        target: EntryId,
        /// Requesting key.
        requester: VerifyingKey,
    },
    /// A deletion request was included but had no effect ("wrong request of
    /// deletions can be included in the blockchain, but these have no
    /// further effects", §V).
    DeletionIneffective {
        /// Target data set.
        target: EntryId,
        /// Human-readable reason.
        reason: String,
    },
    /// A marked data set was physically dropped during a merge.
    DeletionExecuted {
        /// Target data set.
        target: EntryId,
        /// Virtual time of execution.
        at: Timestamp,
    },
    /// A temporary entry expired and was dropped during a merge (§IV-D4).
    RecordExpired {
        /// The expired data set.
        origin: EntryId,
    },
}

impl fmt::Display for LedgerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerEvent::BlockSealed { number, entries } => {
                write!(f, "sealed block {number} with {entries} entries")
            }
            LedgerEvent::EmptyBlockAdded { number } => {
                write!(f, "added empty block {number}")
            }
            LedgerEvent::SummaryCreated {
                number,
                records,
                anchored,
            } => write!(
                f,
                "created summary block {number} ({records} records{})",
                if *anchored { ", anchored" } else { "" }
            ),
            LedgerEvent::SequencesRetired { from, to, carried } => {
                write!(f, "retired blocks {from}..={to} carrying {carried} records")
            }
            LedgerEvent::MarkerShifted { old, new } => {
                write!(f, "marker shifted {old} -> {new}")
            }
            LedgerEvent::DeletionMarked { target, .. } => {
                write!(f, "deletion marked for {target}")
            }
            LedgerEvent::DeletionIneffective { target, reason } => {
                write!(f, "deletion of {target} ineffective: {reason}")
            }
            LedgerEvent::DeletionExecuted { target, at } => {
                write!(f, "deletion of {target} executed at τ{at}")
            }
            LedgerEvent::RecordExpired { origin } => {
                write!(f, "record {origin} expired")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::EntryNumber;

    #[test]
    fn display_variants() {
        let e = LedgerEvent::MarkerShifted {
            old: BlockNumber(0),
            new: BlockNumber(6),
        };
        assert_eq!(e.to_string(), "marker shifted 0 -> 6");
        let e = LedgerEvent::DeletionExecuted {
            target: EntryId::new(BlockNumber(3), EntryNumber(1)),
            at: Timestamp(70),
        };
        assert!(e.to_string().contains("3:1"));
        let e = LedgerEvent::SummaryCreated {
            number: BlockNumber(8),
            records: 4,
            anchored: true,
        };
        assert!(e.to_string().contains("anchored"));
    }
}

//! Retention planning: which old sequences to merge and cut when the chain
//! exceeds l_max (§IV-C, Fig. 3).
//!
//! "If the blockchain grows larger than the specified length l_max, the
//! oldest sequence will be merged into the next summary block. … multiple
//! sequences can also being combined in one summary block." Minimum-length
//! guards (§IV-D3) stop retirement before the chain gets too short.

use seldel_chain::{BlockKind, BlockNumber, BlockStore, Blockchain};

use crate::config::ChainConfig;
use crate::sequence::{live_sequences, SequenceSpan};

/// The outcome of retention planning: sequences to retire, oldest first.
///
/// Empty plans are unrepresentable: the only constructor,
/// [`RetirePlan::new`], refuses an empty span list, so every accessor is
/// total — there is no "plans are non-empty" panic path a pathological
/// configuration could reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetirePlan {
    /// Non-empty by construction.
    spans: Vec<SequenceSpan>,
    new_marker: BlockNumber,
}

impl RetirePlan {
    /// Builds a plan from the sequences to retire (oldest first) and the
    /// genesis marker after cutting. Returns `None` for an empty span
    /// list — "retire nothing" is expressed as the absence of a plan
    /// (exactly how [`plan_retirement`] reports it), never as a plan with
    /// no contents.
    pub fn new(spans: Vec<SequenceSpan>, new_marker: BlockNumber) -> Option<RetirePlan> {
        if spans.is_empty() {
            return None;
        }
        Some(RetirePlan { spans, new_marker })
    }

    /// The closed sequences to merge into the upcoming summary block,
    /// oldest first (never empty).
    pub fn spans(&self) -> &[SequenceSpan] {
        &self.spans
    }

    /// The genesis marker after cutting (first surviving block number).
    pub fn new_marker(&self) -> BlockNumber {
        self.new_marker
    }

    /// Total number of blocks being retired.
    pub fn retired_blocks(&self) -> u64 {
        self.spans.iter().map(SequenceSpan::len).sum()
    }

    /// First retired block number (total: spans are non-empty by
    /// construction).
    pub fn first(&self) -> BlockNumber {
        self.spans[0].start
    }

    /// Last retired block number (total: spans are non-empty by
    /// construction).
    pub fn last(&self) -> BlockNumber {
        self.spans[self.spans.len() - 1].end
    }
}

/// Plans retirement for the moment a new summary block is appended.
///
/// `chain` is the chain *before* the new summary block; the projection
/// accounts for the +1 block and +1 summary the new Σ adds. Returns `None`
/// when nothing needs to (or may) be retired.
pub fn plan_retirement<S: BlockStore>(
    chain: &Blockchain<S>,
    config: &ChainConfig,
) -> Option<RetirePlan> {
    let max = config.retention.max_live_blocks?;
    let min_blocks = config.retention.min_live_blocks;
    let min_summaries = config.retention.min_live_summaries;
    let mode = config.retention.mode;

    let projected_len = chain.len() + 1; // including the new Σ
    if projected_len <= max {
        return None;
    }

    let spans = live_sequences(chain);
    let closed: Vec<SequenceSpan> = spans.iter().copied().filter(|s| s.closed).collect();
    // Hot-cache reads, not a disk scan: this runs on every summary slot
    // once the chain is at capacity.
    let live_summaries = chain
        .iter_hot()
        .filter(|b| b.kind() == BlockKind::Summary)
        .count() as u64
        + 1; // including the new Σ
    let tip_ts = chain.tip().timestamp();

    let mut retired_blocks = 0u64;
    let mut retired_summaries = 0u64;
    let mut take = 0usize;

    #[allow(clippy::explicit_counter_loop)] // `take` and the counters advance together
    for span in &closed {
        let under_limit = projected_len - retired_blocks <= max;
        if under_limit && mode == crate::config::RetireMode::MinimumNeeded {
            break;
        }
        let span_blocks = span.len();
        let remaining_blocks = projected_len - retired_blocks - span_blocks;
        if remaining_blocks < min_blocks {
            break;
        }
        // The new Σ counts as a surviving summary block.
        if live_summaries - retired_summaries - 1 < min_summaries {
            break;
        }
        if let Some(min_span) = config.retention.min_timespan {
            // Timestamp of the first block that would remain.
            let first_remaining = span.end.next();
            let Some(first_block) = chain.get(first_remaining) else {
                break;
            };
            if tip_ts.since(first_block.timestamp()) < min_span {
                break;
            }
        }
        retired_blocks += span_blocks;
        retired_summaries += 1;
        take += 1;
    }

    if take == 0 {
        return None;
    }
    let retired: Vec<SequenceSpan> = closed[..take].to_vec();
    let new_marker = retired[take - 1].end.next();
    RetirePlan::new(retired, new_marker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetentionPolicy;
    use seldel_chain::{Block, BlockBody, Seal, Timestamp};

    /// Chain with l = 3 summaries (slots 2, 5, 8, …), `n` blocks total.
    fn chain_l3(n: u64) -> Blockchain {
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        for i in 1..n {
            let prev = chain.tip().hash();
            let is_summary = (i + 1) % 3 == 0;
            let ts = if is_summary {
                chain.tip().timestamp()
            } else {
                Timestamp(i * 10)
            };
            let body = if is_summary {
                BlockBody::Summary {
                    records: vec![],
                    deletions: vec![],
                    anchor: None,
                }
            } else {
                BlockBody::Empty
            };
            chain
                .push(Block::new(
                    BlockNumber(i),
                    ts,
                    prev,
                    body,
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        chain
    }

    fn config_l3(l_max: u64) -> ChainConfig {
        ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy {
                max_live_blocks: Some(l_max),
                min_live_blocks: 3,
                min_live_summaries: 1,
                min_timespan: None,
                mode: crate::config::RetireMode::MinimumNeeded,
            },
            ..Default::default()
        }
    }

    #[test]
    fn no_plan_under_limit() {
        // 5 live + 1 new Σ = 6 ≤ 6.
        let chain = chain_l3(5);
        assert!(plan_retirement(&chain, &config_l3(6)).is_none());
    }

    #[test]
    fn retires_oldest_sequence_when_over() {
        // 8 live + 1 = 9 > 6 → retire ω1 [0..2] (3 blocks) → 6 ≤ 6.
        let chain = chain_l3(8);
        let plan = plan_retirement(&chain, &config_l3(6)).unwrap();
        assert_eq!(plan.spans().len(), 1);
        assert_eq!(plan.spans()[0].start, BlockNumber(0));
        assert_eq!(plan.spans()[0].end, BlockNumber(2));
        assert_eq!(plan.new_marker(), BlockNumber(3));
        assert_eq!(plan.retired_blocks(), 3);
        assert_eq!(plan.first(), BlockNumber(0));
        assert_eq!(plan.last(), BlockNumber(2));
    }

    #[test]
    fn merges_multiple_sequences_when_far_over() {
        // 14 live + 1 = 15 > 6 → retire ω1..ω3 (9 blocks) → 6.
        let chain = chain_l3(14);
        let plan = plan_retirement(&chain, &config_l3(6)).unwrap();
        assert_eq!(plan.spans().len(), 3);
        assert_eq!(plan.new_marker(), BlockNumber(9));
    }

    #[test]
    fn empty_plans_are_unrepresentable() {
        assert!(RetirePlan::new(vec![], BlockNumber(3)).is_none());
        let plan = RetirePlan::new(
            vec![SequenceSpan {
                start: BlockNumber(0),
                end: BlockNumber(2),
                closed: true,
            }],
            BlockNumber(3),
        )
        .unwrap();
        // first/last are total — no panic path left.
        assert_eq!(plan.first(), BlockNumber(0));
        assert_eq!(plan.last(), BlockNumber(2));
    }

    #[test]
    fn min_live_blocks_stops_retirement() {
        let mut cfg = config_l3(6);
        cfg.retention.min_live_blocks = 7; // would always be violated
        let chain = chain_l3(8);
        assert!(plan_retirement(&chain, &cfg).is_none());
    }

    #[test]
    fn min_summaries_stops_retirement() {
        // 8 live blocks have summaries at 2 and 5; with the new Σ, three
        // total. Requiring 3 minimum means none may be retired.
        let mut cfg = config_l3(6);
        cfg.retention.min_live_summaries = 3;
        let chain = chain_l3(8);
        assert!(plan_retirement(&chain, &cfg).is_none());
    }

    #[test]
    fn min_timespan_stops_retirement() {
        let mut cfg = config_l3(6);
        // Tip of chain_l3(8) is block 7 at τ70. First remaining after
        // retiring ω1 would be block 3 at τ30 → span 40 < 100 → blocked.
        cfg.retention.min_timespan = Some(100);
        let chain = chain_l3(8);
        assert!(plan_retirement(&chain, &cfg).is_none());
        // A permissive span allows it again.
        cfg.retention.min_timespan = Some(30);
        assert!(plan_retirement(&chain, &cfg).is_some());
    }

    #[test]
    fn unbounded_retention_never_plans() {
        let cfg = ChainConfig {
            sequence_length: 3,
            retention: RetentionPolicy::keep_forever(),
            ..Default::default()
        };
        let chain = chain_l3(50);
        assert!(plan_retirement(&chain, &cfg).is_none());
    }

    #[test]
    fn open_tail_never_retired() {
        // Chain ending mid-sequence: closed sequences only are candidates.
        let chain = chain_l3(7); // summaries at 2,5; block 6 open
        let plan = plan_retirement(&chain, &config_l3(4)).unwrap();
        assert!(plan.spans().iter().all(|s| s.closed));
        assert!(plan.last() <= BlockNumber(5));
    }
}

//! Sequence (ω) bookkeeping.
//!
//! "A sequence ω is a series of blocks including the summary block at the
//! end of each sequence" (§IV-C). The live chain is partitioned into
//! sequences by its summary blocks; the newest blocks after the last
//! summary form the (open) tail.

use seldel_chain::{BlockKind, BlockNumber, BlockStore, Blockchain};

/// A contiguous block range `[start, end]`, where `end` is the closing
/// summary block for closed sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceSpan {
    /// First block of the sequence.
    pub start: BlockNumber,
    /// Last block of the sequence (its summary block when closed).
    pub end: BlockNumber,
    /// Whether the span ends with a summary block.
    pub closed: bool,
}

impl SequenceSpan {
    /// Number of blocks in the span.
    pub const fn len(&self) -> u64 {
        self.end.value() - self.start.value() + 1
    }

    /// Spans are never empty.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Whether `number` falls inside this span.
    pub const fn contains(&self, number: BlockNumber) -> bool {
        self.start.value() <= number.value() && number.value() <= self.end.value()
    }
}

/// Partitions the live chain into sequences.
///
/// Closed sequences end at summary blocks; if blocks follow the last
/// summary, they form one final open span.
pub fn live_sequences<S: BlockStore>(chain: &Blockchain<S>) -> Vec<SequenceSpan> {
    let mut spans = Vec::new();
    let mut start: Option<BlockNumber> = None;
    // Runs on every summary slot once the chain is at capacity: read
    // through the hot cache, not the scan iterator (which re-reads every
    // frame from disk on a paged store).
    for block in chain.iter_hot() {
        let number = block.number();
        if start.is_none() {
            start = Some(number);
        }
        if block.kind() == BlockKind::Summary {
            spans.push(SequenceSpan {
                start: start.take().expect("start set above"),
                end: number,
                closed: true,
            });
        }
    }
    if let Some(start) = start {
        spans.push(SequenceSpan {
            start,
            end: chain.tip().number(),
            closed: false,
        });
    }
    spans
}

/// The sequence containing `number`, if live.
pub fn sequence_of<S: BlockStore>(
    chain: &Blockchain<S>,
    number: BlockNumber,
) -> Option<SequenceSpan> {
    live_sequences(chain)
        .into_iter()
        .find(|s| s.contains(number))
}

/// The middle sequence ω_{lβ/2} used by the Fig. 9 anchor: the closed
/// sequence containing the live chain's midpoint block.
///
/// Returns `None` when there is no closed sequence at the midpoint (e.g.
/// a very short chain).
pub fn middle_sequence<S: BlockStore>(chain: &Blockchain<S>) -> Option<SequenceSpan> {
    let mid = BlockNumber(chain.marker().value() + chain.len() / 2);
    let span = sequence_of(chain, mid)?;
    if span.closed {
        Some(span)
    } else {
        // Fall back to the last closed sequence before the midpoint.
        live_sequences(chain)
            .into_iter()
            .rfind(|s| s.closed && s.end < mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{Block, BlockBody, Seal, Timestamp};

    /// Builds a chain with summary blocks at every 3rd slot (l = 3):
    /// numbers 2, 5, 8, … up to `n` blocks total.
    fn chain_l3(n: u64) -> Blockchain {
        let mut chain = Blockchain::new(Block::genesis("t", Timestamp(0)));
        for i in 1..n {
            let prev = chain.tip().hash();
            let is_summary = (i + 1) % 3 == 0;
            let ts = if is_summary {
                chain.tip().timestamp()
            } else {
                Timestamp(i * 10)
            };
            let body = if is_summary {
                BlockBody::Summary {
                    records: vec![],
                    deletions: vec![],
                    anchor: None,
                }
            } else {
                BlockBody::Empty
            };
            chain
                .push(Block::new(
                    BlockNumber(i),
                    ts,
                    prev,
                    body,
                    Seal::Deterministic,
                ))
                .unwrap();
        }
        chain
    }

    #[test]
    fn partitions_into_sequences() {
        let chain = chain_l3(9); // blocks 0..8, summaries at 2,5,8
        let spans = live_sequences(&chain);
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[0],
            SequenceSpan {
                start: BlockNumber(0),
                end: BlockNumber(2),
                closed: true
            }
        );
        assert_eq!(
            spans[1],
            SequenceSpan {
                start: BlockNumber(3),
                end: BlockNumber(5),
                closed: true
            }
        );
        assert_eq!(
            spans[2],
            SequenceSpan {
                start: BlockNumber(6),
                end: BlockNumber(8),
                closed: true
            }
        );
        assert!(spans.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn open_tail_span() {
        let chain = chain_l3(8); // summaries at 2,5; blocks 6,7 open
        let spans = live_sequences(&chain);
        assert_eq!(spans.len(), 3);
        assert!(!spans[2].closed);
        assert_eq!(spans[2].start, BlockNumber(6));
        assert_eq!(spans[2].end, BlockNumber(7));
    }

    #[test]
    fn sequence_lookup() {
        let chain = chain_l3(9);
        let span = sequence_of(&chain, BlockNumber(4)).unwrap();
        assert_eq!(span.start, BlockNumber(3));
        assert!(span.contains(BlockNumber(4)));
        assert!(!span.contains(BlockNumber(2)));
        assert!(sequence_of(&chain, BlockNumber(99)).is_none());
    }

    #[test]
    fn middle_sequence_is_closed() {
        let chain = chain_l3(12); // summaries at 2,5,8,11
        let mid = middle_sequence(&chain).unwrap();
        assert!(mid.closed);
        // Midpoint block = 0 + 12/2 = 6 → sequence [6..8].
        assert_eq!(mid.start, BlockNumber(6));
        assert_eq!(mid.end, BlockNumber(8));
    }

    #[test]
    fn middle_sequence_none_for_tiny_chain() {
        let chain = chain_l3(2); // no summary yet
        assert!(middle_sequence(&chain).is_none());
    }
}

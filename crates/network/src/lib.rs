//! Deterministic virtual-time network simulator.
//!
//! The paper's prototype is a CORBA client-server system (§V); this crate
//! substitutes an in-process simulator that exercises the same message
//! flows — entry submission, block propagation, quorum votes, summary-hash
//! synchronisation checks — under **reproducible** scheduling: all latency,
//! loss and ordering decisions come from a seeded RNG and a totally ordered
//! event queue, so every run with the same seed is bit-identical.
//!
//! Fault injection covers the §V-B4 threat discussion: random loss,
//! network partitions, and per-node isolation (eclipse attacks).
//!
//! # Example
//!
//! ```
//! use seldel_network::{Context, NetConfig, NodeId, SimNetwork, SimNode};
//!
//! #[derive(Default)]
//! struct Echo {
//!     heard: Vec<String>,
//! }
//!
//! impl SimNode<String> for Echo {
//!     fn on_message(&mut self, _from: NodeId, msg: String, _ctx: &mut Context<'_, String>) {
//!         self.heard.push(msg);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut net = SimNetwork::new(NetConfig::default());
//! let a = net.add_node(Box::new(Echo::default()));
//! let b = net.add_node(Box::new(Echo::default()));
//! net.send_external(a, "ping".to_string());
//! net.run_until_idle();
//! assert_eq!(net.node_as::<Echo>(a).unwrap().heard, vec!["ping"]);
//! assert!(net.node_as::<Echo>(b).unwrap().heard.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Identifies a node within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The pseudo-sender used by [`SimNetwork::send_external`] (a client
    /// outside the simulated node set, e.g. the test driver).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == NodeId::EXTERNAL {
            f.write_str("ext")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Network behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Minimum one-way latency (virtual ms).
    pub min_latency_ms: u64,
    /// Maximum one-way latency (virtual ms).
    pub max_latency_ms: u64,
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// RNG seed; same seed ⇒ same run.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_latency_ms: 1,
            max_latency_ms: 10,
            drop_probability: 0.0,
            seed: 0xC0FFEE,
        }
    }
}

/// A simulated node. Implementations keep their own state and react to
/// messages and ticks.
pub trait SimNode<M> {
    /// Handles a delivered message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Handles a scheduled tick (no-op by default).
    fn on_tick(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Downcasting hook so drivers can inspect concrete node state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting hook so drivers can invoke concrete node APIs
    /// between simulation steps (e.g. leader-side administrative actions).
    /// Mirror [`SimNode::as_any`]: `fn as_any_mut(&mut self) -> &mut dyn Any { self }`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Side-effect collector handed to node callbacks.
///
/// Sends and tick requests are buffered and applied by the network after
/// the callback returns, preserving determinism.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: u64,
    me: NodeId,
    node_count: u32,
    outbox: &'a mut Vec<(NodeId, M)>,
    tick_requests: &'a mut Vec<u64>,
}

impl<'a, M: Clone> Context<'a, M> {
    /// Current virtual time (ms).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Sends a message to one peer.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends a message to every other node.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.node_count {
            let peer = NodeId(i);
            if peer != self.me {
                self.outbox.push((peer, msg.clone()));
            }
        }
    }

    /// Requests a tick `delay_ms` from now.
    pub fn schedule_tick(&mut self, delay_ms: u64) {
        self.tick_requests.push(self.now + delay_ms);
    }
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted for delivery.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_random: u64,
    /// Messages dropped by a partition.
    pub dropped_partition: u64,
    /// Messages dropped by per-node isolation (eclipse).
    pub dropped_isolation: u64,
    /// Ticks fired.
    pub ticks: u64,
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Tick { node: NodeId },
}

struct Scheduled<M> {
    at: u64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic simulator.
pub struct SimNetwork<M> {
    config: NetConfig,
    nodes: Vec<Option<Box<dyn SimNode<M>>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: u64,
    seq: u64,
    rng: StdRng,
    stats: NetStats,
    /// Partition groups; when non-empty, cross-group traffic is dropped.
    partitions: Vec<BTreeSet<NodeId>>,
    /// Eclipse filters: node -> the only peers allowed to reach it or be
    /// reached by it.
    isolation: Vec<Option<BTreeSet<NodeId>>>,
}

impl<M> std::fmt::Debug for SimNetwork<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M: Clone> SimNetwork<M> {
    /// Creates an empty network.
    pub fn new(config: NetConfig) -> SimNetwork<M> {
        SimNetwork {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            stats: NetStats::default(),
            partitions: Vec::new(),
            isolation: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn SimNode<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.isolation.push(None);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time (ms).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Injects a message from outside the node set, delivered with normal
    /// latency/loss semantics.
    pub fn send_external(&mut self, to: NodeId, msg: M) {
        self.enqueue_send(NodeId::EXTERNAL, to, msg);
    }

    /// Schedules a tick for `node` at `delay_ms` from now.
    pub fn schedule_tick(&mut self, node: NodeId, delay_ms: u64) {
        let at = self.now + delay_ms;
        self.push_event(at, EventKind::Tick { node });
    }

    /// Splits the network into partition groups; cross-group messages are
    /// dropped until [`SimNetwork::heal_partitions`].
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        self.partitions = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
    }

    /// Removes all partitions.
    pub fn heal_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Eclipses `target`: only `allowed` peers may exchange messages with
    /// it (§V-B4, eclipse/Sybil discussion).
    pub fn isolate(&mut self, target: NodeId, allowed: impl IntoIterator<Item = NodeId>) {
        self.isolation[target.0 as usize] = Some(allowed.into_iter().collect());
    }

    /// Lifts an eclipse.
    pub fn clear_isolation(&mut self, target: NodeId) {
        self.isolation[target.0 as usize] = None;
    }

    /// Runs all events scheduled up to and including virtual time `t`.
    pub fn run_until(&mut self, t: u64) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > t {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now = event.at;
            self.dispatch(event.kind);
        }
        self.now = self.now.max(t);
    }

    /// Runs until no events remain.
    pub fn run_until_idle(&mut self) {
        while let Some(Reverse(event)) = self.queue.pop() {
            self.now = event.at;
            self.dispatch(event.kind);
        }
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.0 as usize)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Runs a closure with mutable access to the boxed node.
    ///
    /// # Panics
    ///
    /// Panics when the id is unknown or the node is mid-dispatch.
    pub fn with_node_mut<R>(&mut self, id: NodeId, f: impl FnOnce(&mut dyn SimNode<M>) -> R) -> R {
        let slot = self
            .nodes
            .get_mut(id.0 as usize)
            .expect("unknown node id")
            .as_mut()
            .expect("node is mid-dispatch");
        f(slot.as_mut())
    }

    /// Typed variant of [`SimNetwork::with_node_mut`]: downcasts the node
    /// to `T` before running the closure, so drivers can call concrete
    /// node APIs (e.g. leader-side administrative actions) directly.
    ///
    /// # Panics
    ///
    /// Panics when the id is unknown, the node is mid-dispatch, or the
    /// node is not a `T`.
    pub fn with_node_as_mut<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        self.with_node_mut(id, |node| {
            f(node
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch"))
        })
    }

    fn blocked(&self, from: NodeId, to: NodeId) -> Option<&'static str> {
        if !self.partitions.is_empty() && from != NodeId::EXTERNAL {
            let group_of = |id: NodeId| self.partitions.iter().position(|g| g.contains(&id));
            if group_of(from) != group_of(to) {
                return Some("partition");
            }
        }
        for (id, peer) in [(from, to), (to, from)] {
            if id == NodeId::EXTERNAL {
                continue;
            }
            if let Some(allowed) = &self.isolation[id.0 as usize] {
                if peer != NodeId::EXTERNAL && !allowed.contains(&peer) {
                    return Some("isolation");
                }
            }
        }
        None
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.stats.sent += 1;
        match self.blocked(from, to) {
            Some("partition") => {
                self.stats.dropped_partition += 1;
                return;
            }
            Some(_) => {
                self.stats.dropped_isolation += 1;
                return;
            }
            None => {}
        }
        if self.config.drop_probability > 0.0
            && self.rng.random_range(0.0..1.0) < self.config.drop_probability
        {
            self.stats.dropped_random += 1;
            return;
        }
        let latency = if self.config.max_latency_ms > self.config.min_latency_ms {
            self.rng
                .random_range(self.config.min_latency_ms..=self.config.max_latency_ms)
        } else {
            self.config.min_latency_ms
        };
        let at = self.now + latency;
        self.push_event(at, EventKind::Deliver { from, to, msg });
    }

    fn push_event(&mut self, at: u64, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, kind }));
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        let node_id = match &kind {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Tick { node } => *node,
        };
        let index = node_id.0 as usize;
        let Some(slot) = self.nodes.get_mut(index) else {
            return; // message to unknown node: dropped silently
        };
        let Some(mut node) = slot.take() else {
            return; // re-entrant dispatch cannot happen; defensive
        };

        #[allow(clippy::type_complexity)]
        let action: Box<dyn FnOnce(&mut dyn SimNode<M>, &mut Context<'_, M>) + '_> = match kind {
            EventKind::Deliver { from, msg, .. } => {
                self.stats.delivered += 1;
                Box::new(move |node, ctx| node.on_message(from, msg, ctx))
            }
            EventKind::Tick { .. } => {
                self.stats.ticks += 1;
                Box::new(|node, ctx| node.on_tick(ctx))
            }
        };

        let mut outbox: Vec<(NodeId, M)> = Vec::new();
        let mut tick_requests: Vec<u64> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                me: node_id,
                node_count: self.nodes.len() as u32,
                outbox: &mut outbox,
                tick_requests: &mut tick_requests,
            };
            action(node.as_mut(), &mut ctx);
        }
        self.nodes[index] = Some(node);

        for (to, msg) in outbox {
            self.enqueue_send(node_id, to, msg);
        }
        for at in tick_requests {
            self.push_event(at, EventKind::Tick { node: node_id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node that records messages and can forward them once.
    #[derive(Default)]
    struct Relay {
        heard: Vec<(NodeId, u64, String)>,
        forward_to: Option<NodeId>,
        ticks: u64,
    }

    impl SimNode<String> for Relay {
        fn on_message(&mut self, from: NodeId, msg: String, ctx: &mut Context<'_, String>) {
            self.heard.push((from, ctx.now(), msg.clone()));
            if let Some(to) = self.forward_to {
                ctx.send(to, format!("fwd:{msg}"));
            }
        }
        fn on_tick(&mut self, ctx: &mut Context<'_, String>) {
            self.ticks += 1;
            if self.ticks < 3 {
                ctx.schedule_tick(10);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn net() -> SimNetwork<String> {
        SimNetwork::new(NetConfig::default())
    }

    #[test]
    fn delivers_with_latency() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        net.send_external(a, "hello".into());
        net.run_until_idle();
        let node = net.node_as::<Relay>(a).unwrap();
        assert_eq!(node.heard.len(), 1);
        let (from, at, ref msg) = node.heard[0];
        assert_eq!(from, NodeId::EXTERNAL);
        assert!((1..=10).contains(&at), "latency out of range: {at}");
        assert_eq!(msg, "hello");
    }

    #[test]
    fn forwarding_chain() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        let b = net.add_node(Box::new(Relay::default()));
        let relay = Relay {
            forward_to: Some(b),
            ..Default::default()
        };
        net.nodes[a.0 as usize] = Some(Box::new(relay));
        net.send_external(a, "x".into());
        net.run_until_idle();
        assert_eq!(net.node_as::<Relay>(b).unwrap().heard.len(), 1);
        assert!(net.node_as::<Relay>(b).unwrap().heard[0]
            .2
            .starts_with("fwd:"));
    }

    #[test]
    fn determinism_same_seed_same_timings() {
        let run = |seed: u64| -> Vec<u64> {
            let mut net: SimNetwork<String> = SimNetwork::new(NetConfig {
                seed,
                min_latency_ms: 1,
                max_latency_ms: 50,
                ..Default::default()
            });
            let a = net.add_node(Box::new(Relay::default()));
            for i in 0..10 {
                net.send_external(a, format!("m{i}"));
            }
            net.run_until_idle();
            net.node_as::<Relay>(a)
                .unwrap()
                .heard
                .iter()
                .map(|h| h.1)
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_drops_counted() {
        let mut net: SimNetwork<String> = SimNetwork::new(NetConfig {
            drop_probability: 1.0,
            ..Default::default()
        });
        let a = net.add_node(Box::new(Relay::default()));
        net.send_external(a, "x".into());
        net.run_until_idle();
        assert_eq!(net.stats().dropped_random, 1);
        assert!(net.node_as::<Relay>(a).unwrap().heard.is_empty());
    }

    #[test]
    fn partitions_block_cross_group_traffic() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        let b = net.add_node(Box::new(Relay::default()));
        let relay = Relay {
            forward_to: Some(b),
            ..Default::default()
        };
        net.nodes[a.0 as usize] = Some(Box::new(relay));
        net.partition(vec![vec![a], vec![b]]);
        net.send_external(a, "x".into()); // external reaches a
        net.run_until_idle();
        assert!(net.node_as::<Relay>(b).unwrap().heard.is_empty());
        assert_eq!(net.stats().dropped_partition, 1);
        // Healing restores traffic.
        net.heal_partitions();
        net.send_external(a, "y".into());
        net.run_until_idle();
        assert_eq!(net.node_as::<Relay>(b).unwrap().heard.len(), 1);
    }

    #[test]
    fn isolation_blocks_unlisted_peers() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        let b = net.add_node(Box::new(Relay::default()));
        let c = net.add_node(Box::new(Relay::default()));
        let relay = Relay {
            forward_to: Some(c),
            ..Default::default()
        };
        net.nodes[a.0 as usize] = Some(Box::new(relay));
        // c only talks to b.
        net.isolate(c, [b]);
        net.send_external(a, "x".into());
        net.run_until_idle();
        assert!(net.node_as::<Relay>(c).unwrap().heard.is_empty());
        assert_eq!(net.stats().dropped_isolation, 1);
        net.clear_isolation(c);
        net.send_external(a, "y".into());
        net.run_until_idle();
        assert_eq!(net.node_as::<Relay>(c).unwrap().heard.len(), 1);
    }

    #[test]
    fn ticks_fire_and_reschedule() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        net.schedule_tick(a, 5);
        net.run_until_idle();
        assert_eq!(net.node_as::<Relay>(a).unwrap().ticks, 3);
        assert_eq!(net.stats().ticks, 3);
    }

    #[test]
    fn run_until_respects_time_bound() {
        let mut net: SimNetwork<String> = SimNetwork::new(NetConfig {
            min_latency_ms: 100,
            max_latency_ms: 100,
            ..Default::default()
        });
        let a = net.add_node(Box::new(Relay::default()));
        net.send_external(a, "late".into());
        net.run_until(50);
        assert!(net.node_as::<Relay>(a).unwrap().heard.is_empty());
        assert_eq!(net.now(), 50);
        net.run_until(150);
        assert_eq!(net.node_as::<Relay>(a).unwrap().heard.len(), 1);
    }

    #[test]
    fn external_sender_unaffected_by_partitions() {
        let mut net = net();
        let a = net.add_node(Box::new(Relay::default()));
        net.partition(vec![vec![a]]);
        net.send_external(a, "x".into());
        net.run_until_idle();
        assert_eq!(net.node_as::<Relay>(a).unwrap().heard.len(), 1);
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        #[derive(Default)]
        struct Caster {
            heard: usize,
        }
        impl SimNode<String> for Caster {
            fn on_message(&mut self, _f: NodeId, msg: String, ctx: &mut Context<'_, String>) {
                self.heard += 1;
                if msg == "go" {
                    ctx.broadcast("wave".into());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net: SimNetwork<String> = SimNetwork::new(NetConfig::default());
        let ids: Vec<NodeId> = (0..4)
            .map(|_| net.add_node(Box::new(Caster::default())))
            .collect();
        net.send_external(ids[0], "go".into());
        net.run_until_idle();
        assert_eq!(net.node_as::<Caster>(ids[0]).unwrap().heard, 1); // only "go"
        for id in &ids[1..] {
            assert_eq!(net.node_as::<Caster>(*id).unwrap().heard, 1); // "wave"
        }
    }
}

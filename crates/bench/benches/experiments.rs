//! End-to-end experiment benches: the Fig. 9 attack race and the E1
//! growth loop, timed to show the harness itself is cheap enough for the
//! parameter sweeps in the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use seldel_sim::{simulate_race, LoginAudit, RaceConfig};

fn bench_attack_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_race");
    for depth in [1u64, 12] {
        group.bench_function(BenchmarkId::new("depth", depth), |b| {
            b.iter(|| {
                simulate_race(black_box(&RaceConfig {
                    attacker_fraction: 0.3,
                    depth,
                    trials: 1_000,
                    give_up_lead: 60,
                    seed: 0x51AC,
                }))
            })
        });
    }
    group.finish();
}

fn bench_paper_scenario(c: &mut Criterion) {
    // The full Fig. 6→8 storyline: 14 blocks, two merges, one deletion.
    c.bench_function("paper_scenario_fig6_to_fig8", |b| {
        b.iter(|| {
            let mut sim = LoginAudit::paper_setup();
            sim.run_fig6().unwrap();
            sim.run_fig7().unwrap();
            sim.run_fig8().unwrap();
            black_box(sim.ledger().chain().tip().hash())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_attack_race, bench_paper_scenario
}
criterion_main!(benches);

//! Criterion benches for the cryptographic substrate: hashing, signatures
//! and Merkle trees. These set the cost floor for every other number in
//! the harness (an entry costs one signature + its share of a Merkle root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seldel_crypto::{sha256, sha512, MerkleTree, SigningKey};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_sha512(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha512");
    let data = vec![0xcdu8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("1024", |b| b.iter(|| sha512(black_box(&data))));
    group.finish();
}

fn bench_ed25519(c: &mut Criterion) {
    let key = SigningKey::from_seed([7u8; 32]);
    let message = b"block 3 entry 1 deletion request";
    let signature = key.sign(message);
    let verifying = key.verifying_key();

    c.bench_function("ed25519/sign", |b| b.iter(|| key.sign(black_box(message))));
    c.bench_function("ed25519/verify", |b| {
        b.iter(|| verifying.verify(black_box(message), black_box(&signature)))
    });
    c.bench_function("ed25519/keygen", |b| {
        b.iter(|| SigningKey::from_seed(black_box([9u8; 32])))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [16usize, 256, 2048] {
        let data: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("leaf-{i}").into_bytes())
            .collect();
        group.throughput(Throughput::Elements(leaves as u64));
        group.bench_function(BenchmarkId::new("build", leaves), |b| {
            b.iter(|| MerkleTree::from_leaves(black_box(&data)))
        });
    }
    let data: Vec<Vec<u8>> = (0..256).map(|i| format!("leaf-{i}").into_bytes()).collect();
    let tree = MerkleTree::from_leaves(&data);
    let proof = tree.prove(137).expect("in range");
    let root = tree.root();
    group.bench_function("verify_proof/256", |b| {
        b.iter(|| proof.verify(black_box(&data[137]), black_box(&root)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_sha256, bench_sha512, bench_ed25519, bench_merkle
}
criterion_main!(benches);

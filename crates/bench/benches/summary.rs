//! Experiment E3 benches (§V-B2 "Size of summary blocks"): how long does
//! building the deterministic summary block take as the number of merged
//! records grows? Pairs with `exp_summary_size`, which reports byte sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seldel_bench::{bench_config, manual_chain};
use seldel_core::{build_summary_block, DeletionRegistry};

/// Builds a chain whose *next* summary slot will merge roughly
/// `records` carried records, and returns the pieces needed to re-run
/// `build_summary_block` in the bench loop.
fn merge_fixture(records: u64) -> (seldel_chain::Blockchain, seldel_core::ChainConfig) {
    // l = 10, l_max = 20; tip manually parked at 38 so slot 39 merges
    // sequence [10..19] — nine payload blocks of entries.
    let entries_per_block = (records / 9).max(1) as usize;
    manual_chain(bench_config(10, 20), 38, entries_per_block)
}

fn bench_summary_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("summary_build");
    group.sample_size(20);
    for records in [64u64, 256, 1024] {
        let (chain, config) = merge_fixture(records);
        let deletions = DeletionRegistry::new();
        let next = chain.tip().number().next();
        assert!(config.is_summary_slot(next), "fixture must sit at a slot");
        group.throughput(Throughput::Elements(records));
        group.bench_function(BenchmarkId::from_parameter(records), |b| {
            b.iter(|| {
                let (block, outcome) =
                    build_summary_block(black_box(&chain), &config, &deletions, next);
                black_box((block, outcome))
            })
        });
    }
    group.finish();
}

fn bench_summary_determinism_check(c: &mut Criterion) {
    // The sync check of §IV-B is a hash comparison; measure hashing a
    // realistic summary block.
    let (chain, config) = merge_fixture(256);
    let deletions = DeletionRegistry::new();
    let next = chain.tip().number().next();
    let (block, _) = build_summary_block(&chain, &config, &deletions, next);
    c.bench_function("summary_hash_sync_check", |b| {
        b.iter(|| black_box(&block).hash())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_summary_build, bench_summary_determinism_check
}
criterion_main!(benches);

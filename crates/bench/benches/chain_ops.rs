//! Chain-operation benches: sealing throughput (selective vs baseline
//! append — the §V-B3 consensus-extension overhead) and new-node
//! validation cost (E5: §V-B3 "nodes only accept a blockchain which is
//! traceable from its current status quo").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seldel_bench::{
    bench_config, build_ledger, build_unbounded_ledger, workload_entry, workload_key,
};
use seldel_chain::{
    validate_chain, BaselineChain, BlockStore, MemStore, SealedBlock, SegStore, Timestamp,
    ValidationOptions,
};
use seldel_core::SelectiveLedger;

fn bench_seal_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("seal_block");
    group.sample_size(20);
    let key = workload_key();

    group.bench_function("selective/8_entries", |b| {
        b.iter_batched(
            || {
                let entries: Vec<_> = (0..8).map(|i| workload_entry(&key, i, 32)).collect();
                (SelectiveLedger::new(bench_config(10, 40)), entries)
            },
            |(mut ledger, entries)| {
                for entry in entries {
                    ledger.submit_entry(entry).unwrap();
                }
                ledger.seal_block(Timestamp(10)).unwrap();
                black_box(ledger)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("baseline/8_entries", |b| {
        b.iter_batched(
            || {
                let entries: Vec<_> = (0..8).map(|i| workload_entry(&key, i, 32)).collect();
                (BaselineChain::new("b", Timestamp(0)), entries)
            },
            |(mut chain, entries)| {
                chain.append(Timestamp(10), entries).unwrap();
                black_box(chain)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_chain");
    group.sample_size(10);
    for blocks in [64u64, 256] {
        // Pruned selective chain: bounded live length regardless of blocks.
        let selective = build_ledger(10, 40, blocks, 2, 32);
        group.throughput(Throughput::Elements(selective.stats().live_blocks));
        group.bench_function(BenchmarkId::new("selective_full", blocks), |b| {
            b.iter(|| {
                validate_chain(black_box(selective.chain()), &ValidationOptions::default()).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("selective_structural", blocks), |b| {
            b.iter(|| {
                validate_chain(
                    black_box(selective.chain()),
                    &ValidationOptions::structural(),
                )
                .unwrap()
            })
        });

        // Unbounded chain: validation cost grows with history.
        let unbounded = build_unbounded_ledger(blocks, 2);
        group.bench_function(BenchmarkId::new("unbounded_full", blocks), |b| {
            b.iter(|| {
                validate_chain(black_box(unbounded.chain()), &ValidationOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_locate(c: &mut Criterion) {
    // Deletion targeting is "linear and very low as blocks are referenced
    // directly by number" (§IV-D); measure the id lookup on a live chain
    // and on a record carried into a summary block.
    let ledger = build_ledger(10, 40, 200, 4, 32);
    let live_id = ledger
        .chain()
        .live_records()
        .last()
        .map(|(id, _)| *id)
        .expect("records exist");
    let summarised_id = ledger
        .chain()
        .live_records()
        .first()
        .map(|(id, _)| *id)
        .expect("records exist");
    c.bench_function("locate/live_entry", |b| {
        b.iter(|| black_box(ledger.chain().locate(black_box(live_id))))
    });
    c.bench_function("locate/summarised_record", |b| {
        b.iter(|| black_box(ledger.chain().locate(black_box(summarised_id))))
    });
}

fn bench_locate_indexed_vs_scan(c: &mut Criterion) {
    // The maintained-index payoff: point lookups of the oldest summarised
    // record, indexed (O(log n)) vs the historical full scan (O(n)), at
    // growing live chain sizes.
    let mut group = c.benchmark_group("locate_indexed_vs_scan");
    group.sample_size(10);
    for live in [1_000u64, 10_000] {
        let ledger = build_ledger(10, live, live + 30, 1, 16);
        // Lowest origin id → carried into a summary block by the first
        // merge; the worst case for the historical newest-first scan.
        let oldest = ledger
            .chain()
            .live_records()
            .iter()
            .map(|(id, _)| *id)
            .min()
            .expect("records exist");
        assert!(ledger
            .chain()
            .locate(oldest)
            .is_some_and(|l| l.is_in_summary()));
        assert_eq!(
            ledger.chain().locate(oldest),
            ledger.chain().locate_scan(oldest),
            "paths must agree before comparing their cost"
        );
        group.bench_function(BenchmarkId::new("indexed", live), |b| {
            b.iter(|| black_box(ledger.chain().locate(black_box(oldest))))
        });
        group.bench_function(BenchmarkId::new("scan", live), |b| {
            b.iter(|| black_box(ledger.chain().locate_scan(black_box(oldest))))
        });
    }
    group.finish();
}

fn bench_store_backends(c: &mut Criterion) {
    // MemStore vs the append-only SegStore on the raw store operations
    // (push / point get / drain_front), with sealing and signing hoisted
    // out so backend cost differences are actually visible.
    let sealed: Vec<SealedBlock> = build_ledger(10, 400, 300, 2, 32)
        .chain()
        .iter_sealed()
        .map(|sealed| sealed.into_sealed())
        .collect();

    fn drive<S: BlockStore>(blocks: &[SealedBlock]) -> u64 {
        let mut store = S::default();
        for block in blocks {
            store.push(block.clone());
            if store.len() > 40 {
                store.drain_front(11);
            }
        }
        (0..store.len())
            .map(|i| store.get(i).expect("in range").block().number().value())
            .sum()
    }

    let mut group = c.benchmark_group("store_backend");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sealed.len() as u64));
    group.bench_function("mem/push_get_drain", |b| {
        b.iter(|| black_box(drive::<MemStore>(black_box(&sealed))))
    });
    group.bench_function("seg/push_get_drain", |b| {
        b.iter(|| black_box(drive::<SegStore>(black_box(&sealed))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_seal_block, bench_validation, bench_locate,
        bench_locate_indexed_vs_scan, bench_store_backends
}
criterion_main!(benches);

//! Regenerates the paper's figures as console output.
//!
//! * Figs. 1–5 are concept diagrams — each is demonstrated by a live,
//!   checked property of the implementation.
//! * Figs. 6–8 are the prototype's console listings — replayed exactly
//!   (genesis predecessor `DEADB`, Σ every third block, users ALPHA /
//!   BRAVO / CHARLIE, BRAVO's deletion of block 3 entry 1).
//!
//! Run with `cargo run -p seldel-bench --bin figures`.

use seldel_core::{build_summary_block, DeletionRegistry};
use seldel_sim::{LoginAudit, USERS};

fn heading(title: &str) {
    println!("\n==== {title} ====");
}

fn fig1_summary_block_insertion() {
    heading("Fig. 1 — extending the blockchain with a summary block");
    let mut sim = LoginAudit::paper_setup();
    for (i, user) in USERS.iter().enumerate() {
        sim.login(user, i as u64).expect("valid login");
    }
    sim.seal().expect("seal");
    let chain = sim.ledger().chain();
    let block1 = chain.get(seldel_chain::BlockNumber(1)).unwrap();
    let sigma = chain.get(seldel_chain::BlockNumber(2)).unwrap();
    println!(
        "block 1: number={} τ={}",
        block1.number(),
        block1.timestamp()
    );
    println!(
        "Σ2:      number={} τ={} (same τ as predecessor: {})",
        sigma.number(),
        sigma.timestamp(),
        sigma.timestamp() == block1.timestamp(),
    );
    println!(
        "Σ2 is derived locally and deterministically; its hash doubles as the\n\
         synchronisation check: {}",
        sigma.hash().short()
    );
}

fn fig2_sequences() {
    heading("Fig. 2 — sequences ω defined by the summary blocks");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    for span in seldel_core::live_sequences(sim.ledger().chain()) {
        println!(
            "ω[{}..={}] len={} closed={}",
            span.start,
            span.end,
            span.len(),
            span.closed
        );
    }
}

fn fig3_summarisation() {
    heading("Fig. 3 — summarisation after exceeding l_max");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    println!("before: marker m = {}", sim.ledger().chain().marker());
    sim.ledger_mut()
        .seal_block(seldel_chain::Timestamp(60))
        .unwrap();
    sim.ledger_mut()
        .seal_block(seldel_chain::Timestamp(70))
        .unwrap();
    let chain = sim.ledger().chain();
    println!(
        "after Σ8: marker m = {} (old sequences copied into Σ8 and cut off)",
        chain.marker()
    );
    let sigma8 = chain.get(seldel_chain::BlockNumber(8)).unwrap();
    println!("Σ8 carries {} records", sigma8.summary_records().len());
}

fn fig4_summary_record_structure() {
    heading("Fig. 4 — data structure of summary records");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    sim.run_fig7().expect("scripted run");
    let chain = sim.ledger().chain();
    let sigma8 = chain.get(seldel_chain::BlockNumber(8)).unwrap();
    println!("origin-id  origin-τ  record");
    for record in sigma8.summary_records().iter().take(4) {
        println!(
            "{:>9}  {:>8}  {}",
            record.origin().to_string(),
            record.origin_timestamp().to_string(),
            record.record()
        );
    }
    println!(
        "(block number, entry number and timestamp are kept exactly as\n\
         initially integrated; nonce and previous hash are dropped)"
    );
}

fn fig5_selective_deletion() {
    heading("Fig. 5 — selective deletion on request");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    let target = LoginAudit::bravo_target();
    println!(
        "target {} live before merge: {}",
        target,
        sim.ledger().record(target).is_some()
    );
    sim.run_fig7().expect("scripted run");
    println!(
        "target {} live after merge:  {}",
        target,
        sim.ledger().record(target).is_some()
    );
    println!(
        "registry record after merge: {:?} (executed records compact away \
         with their retired sequence; the Σ tombstone is the durable proof)",
        sim.ledger().deletion_status(target).map(|d| d.status)
    );
}

fn fig6_console() {
    heading("Fig. 6 — console output after three login rounds");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    print!("{}", sim.render());
}

fn fig7_console() {
    heading("Fig. 7 — BRAVO requests deletion of 3:1; two sequences merge");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    sim.run_fig7().expect("scripted run");
    print!("{}", sim.render());
}

fn fig8_console() {
    heading("Fig. 8 — one merge cycle ahead; deletion request gone");
    let mut sim = LoginAudit::paper_setup();
    sim.run_fig6().expect("scripted run");
    sim.run_fig7().expect("scripted run");
    sim.run_fig8().expect("scripted run");
    print!("{}", sim.render());
}

fn determinism_demo() {
    heading("§IV-B — summary determinism across nodes (I2)");
    // Two independent nodes with identical chain prefixes derive the next
    // summary block bit-identically. The chains are built manually so the
    // tip sits right before the merging slot Σ8.
    let (chain_a, config) = seldel_bench::manual_paper_chain(7);
    let (chain_b, _) = seldel_bench::manual_paper_chain(7);
    let next = chain_a.tip().number().next();
    let (sigma_a, _) = build_summary_block(&chain_a, &config, &DeletionRegistry::new(), next);
    let (sigma_b, _) = build_summary_block(&chain_b, &config, &DeletionRegistry::new(), next);
    println!("node A Σ{} hash: {}", next, sigma_a.hash());
    println!("node B Σ{} hash: {}", next, sigma_b.hash());
    println!("bit-identical: {}", sigma_a.hash() == sigma_b.hash());
}

fn main() {
    fig1_summary_block_insertion();
    fig2_sequences();
    fig3_summarisation();
    fig4_summary_record_structure();
    fig5_selective_deletion();
    fig6_console();
    fig7_console();
    fig8_console();
    determinism_demo();
}

//! Experiment E13 — the deletion policy engine under the multi-tenant
//! workload: dry-run plan latency, bulk apply cost, and the end-to-end
//! bulk-deletion latency (the E2 figure, but for a policy sweep instead
//! of a single request).
//!
//! Builds one Zipf-skewed multi-tenant chain, then for each policy in
//! the sweep measures (a) the dry-run `plan_policy` latency over the hot
//! cache, (b) the one-shot `apply_policy` cost (plan + enqueue of every
//! matched deletion), and (c) the blocks and wall time from apply until
//! every matched record is physically erased — marks applied at the
//! summary merge, retired sequences pruned. Results land in
//! `BENCH_policy.json`.
//!
//! Run with `cargo run -p seldel-bench --bin exp_policy --release`.
//! Pass `--baseline <path>` to compare bulk-erasure throughput against a
//! previously committed `BENCH_policy.json` first: a regression of more
//! than 20% on any policy row prints a GitHub `::warning::` annotation
//! and exits non-zero, which is how CI tracks the trajectory.

use std::time::Instant;

use seldel_bench::report::{render_json_report, row_field_f64, row_field_str, JsonField, JsonRow};
use seldel_codec::render::TextTable;
use seldel_core::{CompiledPolicy, Role, RoleTable, SelectiveLedger, Selector};
use seldel_crypto::SigningKey;
use seldel_sim::{drive_multi_tenant, tenant_chain_config, TenantConfig};

use seldel_chain::Timestamp;

/// The E13 workload: enough skewed tenants and summarised history that a
/// sweep touches both normal and Σ blocks, small enough for a CI smoke
/// run. `l_max` bounds the erasure horizon (E2: deletions execute at the
/// merge), so it also bounds the blocks-to-erasure series below.
fn workload() -> TenantConfig {
    TenantConfig {
        authors: 64,
        zipf_s: 1.05,
        blocks: 600,
        entries_per_block: 6,
        sequence_length: 5,
        l_max: 120,
        delete_every: 17,
        query_batch: 0,
        max_block_entries: None,
        ..Default::default()
    }
}

/// The workload's deterministic tenant keys (rank ↦ seed).
fn tenant_key(rank: usize) -> SigningKey {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&(rank as u64 + 1).to_le_bytes());
    seed[31] = 0xA7;
    SigningKey::from_seed(seed)
}

/// The compliance officer driving the sweep.
fn admin_key() -> SigningKey {
    SigningKey::from_seed([0xAD; 32])
}

/// The policy sweep: every selector leaf appears at least once, and the
/// matched-set sizes span an order of magnitude.
fn sweep() -> Vec<CompiledPolicy> {
    let mid = Timestamp(300 * 10);
    let early = Timestamp(150 * 10);
    vec![
        Selector::And(vec![
            Selector::AuthorIs(tenant_key(0).verifying_key()),
            Selector::OlderThan(mid),
        ])
        .compile("hot-tenant-aged")
        .expect("well-formed"),
        Selector::AuthorIn((5..13).map(|r| tenant_key(r).verifying_key()).collect())
            .compile("tail-cohort")
            .expect("well-formed"),
        Selector::And(vec![
            Selector::SchemaIs("tenant".to_string()),
            Selector::OlderThan(early),
        ])
        .compile("schema-aged")
        .expect("well-formed"),
        Selector::And(vec![
            Selector::Ttl(seldel_core::TtlClass::Permanent),
            Selector::Or(vec![
                Selector::AuthorIs(tenant_key(1).verifying_key()),
                Selector::AuthorIs(tenant_key(2).verifying_key()),
            ]),
            Selector::OlderThan(mid),
        ])
        .compile("permanent-pair-aged")
        .expect("well-formed"),
    ]
}

struct PolicyRow {
    policy: String,
    scanned: usize,
    matched: usize,
    matched_kib: f64,
    blocked: usize,
    tenants: usize,
    plan_ms: f64,
    apply_ms: f64,
    erase_blocks: u64,
    erase_ms: f64,
    erase_per_s: f64,
}

/// Runs `op` in `chunks` timed chunks of `reps` iterations each and
/// returns the **fastest** chunk's nanoseconds per iteration — robust
/// against transient load on shared runners.
fn min_over_chunks(reps: u32, chunks: u32, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..chunks {
        let start = Instant::now();
        for _ in 0..reps {
            op();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(reps));
    }
    best
}

fn measure_policy(base: &SelectiveLedger, policy: &CompiledPolicy, last_ts: u64) -> PolicyRow {
    let admin = admin_key();

    // (a) Dry-run latency: a pure hot-cache read, so min-over-chunks on
    // the shared ledger is sound.
    std::hint::black_box(base.plan_policy(&admin.verifying_key(), policy)); // warm-up
    let plan_ms = min_over_chunks(3, 5, || {
        std::hint::black_box(
            base.plan_policy(&admin.verifying_key(), std::hint::black_box(policy)),
        );
    }) / 1e6;

    // (b) + (c) Apply and drive to physical erasure on a detached clone,
    // so each policy in the sweep starts from the same chain.
    let mut ledger = base.clone();
    let started = Instant::now();
    let plan = ledger
        .apply_policy(&admin, policy)
        .expect("admin bulk erasure is authorised");
    let apply_ms = started.elapsed().as_nanos() as f64 / 1e6;
    assert!(!plan.is_empty(), "policy {:?} matched nothing", plan.policy);

    let erase_started = Instant::now();
    let mut now = last_ts;
    let mut erase_blocks = 0u64;
    while !ledger.audit_live(plan.matched()).iter().all(|live| !live) {
        now += 10;
        ledger.seal_block(Timestamp(now)).expect("monotone time");
        erase_blocks += 1;
        assert!(
            erase_blocks <= 4 * workload().l_max,
            "erasure failed to converge for {:?}",
            plan.policy
        );
    }
    let erase_ms = erase_started.elapsed().as_nanos() as f64 / 1e6;

    PolicyRow {
        policy: plan.policy.clone(),
        scanned: plan.scanned,
        matched: plan.len(),
        matched_kib: plan.matched_bytes as f64 / 1024.0,
        blocked: plan.blocked.len(),
        tenants: plan.per_tenant.len(),
        plan_ms,
        apply_ms,
        erase_blocks,
        erase_ms,
        erase_per_s: plan.len() as f64 / ((apply_ms + erase_ms) / 1e3),
    }
}

fn to_json(rows: &[PolicyRow]) -> String {
    let json_rows: Vec<JsonRow> = rows
        .iter()
        .map(|r| {
            JsonRow::new()
                .field("policy", r.policy.as_str())
                .field("scanned", r.scanned)
                .field("matched", r.matched)
                .field("matched_kib", JsonField::f1(r.matched_kib))
                .field("blocked", r.blocked)
                .field("tenants", r.tenants)
                .field(
                    "plan_ms",
                    JsonField::F64 {
                        value: r.plan_ms,
                        decimals: 3,
                    },
                )
                .field(
                    "apply_ms",
                    JsonField::F64 {
                        value: r.apply_ms,
                        decimals: 3,
                    },
                )
                .field("erase_blocks", r.erase_blocks)
                .field(
                    "erase_ms",
                    JsonField::F64 {
                        value: r.erase_ms,
                        decimals: 1,
                    },
                )
                .field("erase_per_s", JsonField::f0(r.erase_per_s))
        })
        .collect();
    render_json_report("policy", &[], &[("policy", json_rows)])
}

/// Reads the `policy → erase_per_s` rows out of a committed
/// `BENCH_policy.json` (our own line-per-row format; no JSON parser).
fn baseline_erase_rates(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            Some((
                row_field_str(line, "policy")?.to_string(),
                row_field_f64(line, "erase_per_s")?,
            ))
        })
        .collect()
}

/// Compares current bulk-erasure throughput to the committed baseline;
/// returns the regressed rows as human-readable complaints.
fn regressions(baseline: &str, rows: &[PolicyRow]) -> Vec<String> {
    let mut out = Vec::new();
    for (policy, base_rate) in baseline_erase_rates(baseline) {
        let Some(current) = rows.iter().find(|r| r.policy == policy) else {
            continue;
        };
        if current.erase_per_s < 0.8 * base_rate {
            out.push(format!(
                "{policy}: {:.0} erased ids/s vs baseline {:.0} ({}% of baseline)",
                current.erase_per_s,
                base_rate,
                (100.0 * current.erase_per_s / base_rate) as u64,
            ));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // Read the baseline up front: this run overwrites BENCH_policy.json.
    let baseline = baseline_path
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    let cfg = workload();
    println!(
        "E13: deletion policy engine — {} Zipf(s={}) tenants, {} blocks x {} entries,\n\
         dry-run plan latency, bulk apply cost and end-to-end erasure per policy.",
        cfg.authors, cfg.zipf_s, cfg.blocks, cfg.entries_per_block
    );

    let ledger = SelectiveLedger::builder(tenant_chain_config(&cfg))
        .roles(RoleTable::new().with(admin_key().verifying_key(), Role::Admin))
        .shards(cfg.shards)
        .build();
    let (base, report) = drive_multi_tenant(ledger, &cfg);
    println!(
        "workload: {} sealed blocks, {} live records, hottest tenant wrote {}/{} entries",
        report.sealed_blocks,
        report.live_records,
        report.hottest_author_entries,
        report.total_entries
    );

    let rows: Vec<PolicyRow> = sweep()
        .iter()
        .map(|policy| measure_policy(&base, policy, cfg.blocks * 10))
        .collect();

    let mut table = TextTable::new([
        "policy",
        "matched",
        "blocked",
        "tenants",
        "plan",
        "apply",
        "erasure",
        "throughput",
    ]);
    for r in &rows {
        table.row([
            r.policy.clone(),
            r.matched.to_string(),
            r.blocked.to_string(),
            r.tenants.to_string(),
            format!("{:.2} ms", r.plan_ms),
            format!("{:.2} ms", r.apply_ms),
            format!("{} blk / {:.0} ms", r.erase_blocks, r.erase_ms),
            format!("{:.0} ids/s", r.erase_per_s),
        ]);
    }
    println!("{}", table.render());

    std::fs::write("BENCH_policy.json", to_json(&rows)).expect("write BENCH_policy.json");
    println!("wrote BENCH_policy.json");

    if let Some(baseline) = baseline {
        let complaints = regressions(&baseline, &rows);
        if complaints.is_empty() {
            println!("baseline check: bulk-erasure throughput within 20% of the committed run");
        } else {
            for c in &complaints {
                // The GitHub annotation format; harmless noise elsewhere.
                println!("::warning title=exp_policy erasure regression::{c}");
            }
            eprintln!(
                "bulk-erasure throughput regressed >20% vs the committed baseline on {} row(s)",
                complaints.len()
            );
            std::process::exit(1);
        }
    }
}

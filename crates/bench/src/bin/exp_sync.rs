//! Experiment E4 — summary-hash synchronisation checks (§IV-B).
//!
//! Every anchor derives summary blocks locally; comparing Σ hashes is the
//! paper's consistency check. This binary runs three scenarios on the
//! deterministic simnet: the happy path, a partitioned straggler catching
//! up, and an injected divergence (a node whose deletion registry was
//! corrupted) being detected by the hash comparison.
//!
//! Run with `cargo run -p seldel-bench --bin exp_sync --release`.

use seldel_chain::{BlockNumber, Entry, EntryId, EntryNumber, Timestamp};
use seldel_codec::render::TextTable;
use seldel_codec::DataRecord;
use seldel_core::{build_summary_block, ChainConfig, DeletionRegistry, SelectiveLedger};
use seldel_crypto::SigningKey;
use seldel_network::{NetConfig, NodeId, SimNetwork};
use seldel_node::{AnchorNode, NodeMessage};

fn entry(n: u64) -> Entry {
    Entry::sign_data(
        &SigningKey::from_seed([0x31; 32]),
        DataRecord::new("log").with("n", n),
    )
}

fn cluster(seed: u64) -> (SimNetwork<NodeMessage>, Vec<NodeId>) {
    let mut net = SimNetwork::new(NetConfig {
        seed,
        ..NetConfig::default()
    });
    let leader = NodeId(0);
    let ids: Vec<NodeId> = (0..4)
        .map(|_| {
            let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
            net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)))
        })
        .collect();
    for id in &ids {
        net.schedule_tick(*id, 100);
    }
    (net, ids)
}

fn happy_path() {
    println!("E4a: happy path — 4 anchors, 20 blocks of traffic\n");
    let (mut net, ids) = cluster(1);
    for i in 0..20u64 {
        net.send_external(ids[0], NodeMessage::Submit(entry(i)));
        net.run_until(net.now() + 100);
    }
    net.run_until(net.now() + 500);
    let mut table = TextTable::new([
        "node",
        "tip",
        "summaries",
        "sync checks sent",
        "mismatches",
        "adoptions",
    ]);
    for id in &ids {
        let node = net.node_as::<AnchorNode>(*id).expect("anchor");
        let stats = node.stats();
        table.row([
            id.to_string(),
            node.ledger().chain().tip().number().to_string(),
            node.ledger().stats().summaries_created.to_string(),
            stats.sync_checks_sent.to_string(),
            stats.sync_mismatches.to_string(),
            stats.chains_adopted.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn straggler() {
    println!("E4b: partitioned straggler catches up via sync\n");
    let (mut net, ids) = cluster(2);
    net.partition(vec![vec![ids[0], ids[1], ids[2]], vec![ids[3]]]);
    for i in 0..8u64 {
        net.send_external(ids[0], NodeMessage::Submit(entry(i)));
        net.run_until(net.now() + 100);
    }
    let behind = net
        .node_as::<AnchorNode>(ids[3])
        .unwrap()
        .ledger()
        .chain()
        .tip()
        .number();
    net.heal_partitions();
    for i in 8..16u64 {
        net.send_external(ids[0], NodeMessage::Submit(entry(i)));
        net.run_until(net.now() + 100);
    }
    net.run_until(net.now() + 500);
    let node = net.node_as::<AnchorNode>(ids[3]).unwrap();
    println!(
        "straggler tip while cut off: {behind}; after heal: {} (leader: {})",
        node.ledger().chain().tip().number(),
        net.node_as::<AnchorNode>(ids[0])
            .unwrap()
            .ledger()
            .chain()
            .tip()
            .number()
    );
    println!(
        "blocks rejected: {}, chains adopted: {}\n",
        node.stats().blocks_rejected,
        node.stats().chains_adopted
    );
}

fn divergence_detection() {
    println!("E4c: divergence detection by Σ-hash comparison\n");
    // Two nodes share seven identical blocks; node B's deletion registry is
    // corrupted (an extra mark), so its derived Σ8 differs — the exact
    // failure §IV-B predicts would "result in a fork".
    let key = SigningKey::from_seed([0x32; 32]);
    let (chain_a, config) = seldel_bench::manual_paper_chain(7);
    let (chain_b, _) = seldel_bench::manual_paper_chain(7);

    let honest = DeletionRegistry::new();
    let mut corrupted = DeletionRegistry::new();
    corrupted.mark(
        EntryId::new(BlockNumber(1), EntryNumber(0)),
        key.verifying_key(),
        EntryId::new(BlockNumber(4), EntryNumber(0)),
        Timestamp(40),
    );

    let next = chain_a.tip().number().next();
    let (sigma_a, _) = build_summary_block(&chain_a, &config, &honest, next);
    let (sigma_b, _) = build_summary_block(&chain_b, &config, &corrupted, next);
    println!("node A Σ{next} hash: {}", sigma_a.hash());
    println!("node B Σ{next} hash: {}", sigma_b.hash());
    println!(
        "sync check detects divergence: {}",
        sigma_a.hash() != sigma_b.hash()
    );
}

fn main() {
    happy_path();
    straggler();
    divergence_detection();
}

//! Experiment E6 — temporary entries (§IV-D4).
//!
//! Entries carry `T: τ…` or `α…` expiries; once the chain passes the bound
//! they are not copied into summary blocks and vanish without any
//! authorisation. Reported: live-record counts over time for a mixed
//! workload, plus the supply-chain (best-before) use case.
//!
//! Run with `cargo run -p seldel-bench --bin exp_ttl --release`.

use seldel_chain::{BlockNumber, Entry, Expiry, Timestamp};
use seldel_codec::render::TextTable;
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, SelectiveLedger};
use seldel_crypto::SigningKey;
use seldel_sim::SupplyChain;

fn main() {
    println!("E6a: mixed workload — permanent, τ-expiring and α-expiring entries\n");
    let key = SigningKey::from_seed([0x41; 32]);
    let mut ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
    let mut table = TextTable::new(["tip block", "τ now", "live records", "expired total"]);
    for b in 1..=24u64 {
        let ts = Timestamp(b * 10);
        // One permanent record per block; one expiring at τ=120; one
        // expiring at block α=12.
        ledger
            .submit_entry(Entry::sign_data(
                &key,
                DataRecord::new("log")
                    .with("kind", "permanent")
                    .with("n", b),
            ))
            .unwrap();
        ledger
            .submit_entry(Entry::sign_data_with(
                &key,
                DataRecord::new("log").with("kind", "tau").with("n", b),
                Some(Expiry::AtTimestamp(Timestamp(120))),
                vec![],
            ))
            .unwrap();
        ledger
            .submit_entry(Entry::sign_data_with(
                &key,
                DataRecord::new("log").with("kind", "alpha").with("n", b),
                Some(Expiry::AtBlock(BlockNumber(12))),
                vec![],
            ))
            .unwrap();
        ledger.seal_block(ts).unwrap();
        if b % 4 == 0 {
            let stats = ledger.stats();
            table.row([
                stats.tip.to_string(),
                ts.to_string(),
                stats.live_records.to_string(),
                stats.expired_records.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    println!("E6b: supply-chain best-before cleanup\n");
    let mut supply = SupplyChain::new(ChainConfig::paper_evaluation());
    supply.register("milk-7", Timestamp(60)).unwrap();
    supply.seal(10).unwrap();
    supply.record_event("milk-7", "bottled", "plant-1").unwrap();
    supply.record_event("milk-7", "shipped", "dc-2").unwrap();
    supply.seal(10).unwrap();
    supply.register("engine-9", Timestamp(100_000)).unwrap();
    supply.seal(10).unwrap();
    let mut trace = TextTable::new(["τ now", "milk-7 trace", "engine-9 trace"]);
    for _ in 0..8 {
        for _ in 0..3 {
            supply.seal(10).unwrap();
        }
        trace.row([
            supply.now().to_string(),
            supply.trace_len("milk-7").to_string(),
            supply.trace_len("engine-9").to_string(),
        ]);
    }
    println!("{}", trace.render());
    println!(
        "shape check: τ/α-expired records disappear at the first merge after\n\
         their bound; permanent records persist. The perishable product's\n\
         whole trace self-erases after its best-before date (paper's\n\
         Industry-4.0 use case), the durable product's trace survives."
    );
}

//! Experiment E2 — deletion latency (§IV-D3 "Delayed Deletion").
//!
//! Sweeps l, l_max and the idle filler, reporting how long a deletion
//! request waits until its target is physically dropped.
//!
//! Run with `cargo run -p seldel-bench --bin exp_latency --release`.

use seldel_codec::render::TextTable;
use seldel_sim::{run_latency, LatencyConfig, Summary};

fn summarise(cfg: &LatencyConfig) -> (Summary, Summary, usize) {
    let samples = run_latency(cfg);
    let blocks: Vec<f64> = samples.iter().map(|s| s.blocks() as f64).collect();
    let millis: Vec<f64> = samples.iter().map(|s| s.millis() as f64).collect();
    (Summary::of(&blocks), Summary::of(&millis), samples.len())
}

fn main() {
    println!("E2: deletion latency = request → physical drop at the next merge\n");

    let mut table = TextTable::new([
        "l", "l_max", "filler", "executed", "mean blk", "p50 blk", "p90 blk", "mean ms",
    ]);
    for (l, l_max) in [(3u64, 9u64), (5, 15), (5, 30), (10, 30), (10, 60)] {
        let cfg = LatencyConfig {
            sequence_length: l,
            l_max,
            horizon_blocks: 400,
            block_interval_ms: 10,
            idle_fill_ms: None,
            deletions: 12,
        };
        let (blocks, millis, executed) = summarise(&cfg);
        table.row([
            l.to_string(),
            l_max.to_string(),
            "off".to_string(),
            executed.to_string(),
            format!("{:.1}", blocks.mean),
            format!("{:.0}", blocks.p50),
            format!("{:.0}", blocks.p90),
            format!("{:.0}", millis.mean),
        ]);
    }
    println!("{}", table.render());

    println!("idle filler on a sparse chain (1 block per virtual second):");
    let mut idle = TextTable::new(["filler", "executed", "mean blk", "mean ms"]);
    for filler in [None, Some(100u64)] {
        let cfg = LatencyConfig {
            sequence_length: 5,
            l_max: 30,
            horizon_blocks: 250,
            block_interval_ms: 1000,
            idle_fill_ms: filler,
            deletions: 8,
        };
        let (blocks, millis, executed) = summarise(&cfg);
        idle.row([
            filler.map_or("off".to_string(), |ms| format!("{ms} ms")),
            executed.to_string(),
            format!("{:.1}", blocks.mean),
            format!("{:.0}", millis.mean),
        ]);
    }
    println!("{}", idle.render());
    println!(
        "shape check: latency scales with l_max (position of the target in the\n\
         round-robin) and the idle filler bounds virtual-time latency on sparse\n\
         chains, as §IV-D3 claims."
    );
}

//! Experiment E1 — bounded chain growth (paper §I problem statement, §V-A
//! "Data Reduction").
//!
//! Prints the growth series of the selective-deletion chain against the
//! conventional baseline, plus an l_max sweep.
//!
//! Run with `cargo run -p seldel-bench --bin exp_growth --release`.

use seldel_codec::render::{human_bytes, ratio, TextTable};
use seldel_sim::{run_growth, sweep_l_max, GrowthConfig};

fn main() {
    let cfg = GrowthConfig {
        blocks: 600,
        entries_per_block: 4,
        sequence_length: 5,
        l_max: 30,
        sample_every: 60,
        payload_bytes: 64,
    };
    println!(
        "E1: growth under identical workload (l = {}, l_max = {}, {} entries/block)",
        cfg.sequence_length, cfg.l_max, cfg.entries_per_block
    );

    let samples = run_growth(&cfg);
    let mut table = TextTable::new([
        "appended",
        "selective blocks",
        "selective size",
        "baseline blocks",
        "baseline size",
        "size ratio",
    ]);
    for s in &samples {
        table.row([
            s.appended.to_string(),
            s.selective_blocks.to_string(),
            human_bytes(s.selective_bytes),
            s.baseline_blocks.to_string(),
            human_bytes(s.baseline_bytes),
            ratio(s.baseline_bytes as f64, s.selective_bytes as f64),
        ]);
    }
    println!("{}", table.render());

    println!("l_max sweep after 400 appended blocks:");
    let mut sweep = TextTable::new(["l_max", "live blocks", "live size"]);
    for (l_max, blocks, bytes) in sweep_l_max(400, &[10, 20, 40, 80, 160]) {
        sweep.row([l_max.to_string(), blocks.to_string(), human_bytes(bytes)]);
    }
    println!("{}", sweep.render());

    let last = samples.last().expect("samples exist");
    println!(
        "shape check: baseline grows without bound ({} blocks), selective stays\n\
         within l_max + l ({} blocks) while retaining {} live records.",
        last.baseline_blocks, last.selective_blocks, last.selective_records
    );
}

//! Experiment E1 — bounded chain growth (paper §I problem statement, §V-A
//! "Data Reduction").
//!
//! Prints the growth series of the selective-deletion chain against the
//! conventional baseline, plus an l_max sweep, and writes the
//! machine-readable chain-operation timings to `BENCH_chain_ops.json`
//! (indexed vs scan lookups, live-record materialisation, validation at
//! 1k/10k live blocks) so CI archives the performance trajectory.
//!
//! Run with `cargo run -p seldel-bench --bin exp_growth --release`.

use seldel_bench::report::write_chain_ops_report;
use seldel_codec::render::{human_bytes, ratio, TextTable};
use seldel_sim::{run_growth, sweep_l_max, GrowthConfig};

fn main() {
    let cfg = GrowthConfig {
        blocks: 600,
        entries_per_block: 4,
        sequence_length: 5,
        l_max: 30,
        sample_every: 60,
        payload_bytes: 64,
    };
    println!(
        "E1: growth under identical workload (l = {}, l_max = {}, {} entries/block)",
        cfg.sequence_length, cfg.l_max, cfg.entries_per_block
    );

    let samples = run_growth(&cfg);
    let mut table = TextTable::new([
        "appended",
        "selective blocks",
        "selective size",
        "baseline blocks",
        "baseline size",
        "size ratio",
    ]);
    for s in &samples {
        table.row([
            s.appended.to_string(),
            s.selective_blocks.to_string(),
            human_bytes(s.selective_bytes),
            s.baseline_blocks.to_string(),
            human_bytes(s.baseline_bytes),
            ratio(s.baseline_bytes as f64, s.selective_bytes as f64),
        ]);
    }
    println!("{}", table.render());

    println!("l_max sweep after 400 appended blocks:");
    let mut sweep = TextTable::new(["l_max", "live blocks", "live size"]);
    for (l_max, blocks, bytes) in sweep_l_max(400, &[10, 20, 40, 80, 160]) {
        sweep.row([l_max.to_string(), blocks.to_string(), human_bytes(bytes)]);
    }
    println!("{}", sweep.render());

    let last = samples.last().expect("samples exist");
    println!(
        "shape check: baseline grows without bound ({} blocks), selective stays\n\
         within l_max + l ({} blocks) while retaining {} live records.",
        last.baseline_blocks, last.selective_blocks, last.selective_records
    );

    println!("\nchain-op timings (written to BENCH_chain_ops.json):");
    let (ops, backends) =
        write_chain_ops_report("BENCH_chain_ops.json").expect("write BENCH_chain_ops.json");
    let mut timings = TextTable::new([
        "live blocks",
        "locate indexed",
        "locate scan",
        "speedup",
        "live_records",
        "validate (structural)",
    ]);
    for s in &ops {
        timings.row([
            s.live_blocks.to_string(),
            format!("{:.0} ns", s.locate_indexed_ns),
            format!("{:.0} ns", s.locate_scan_ns),
            format!("{:.1}x", s.locate_speedup()),
            format!("{:.1} us", s.live_records_ns / 1_000.0),
            format!("{:.1} us", s.validate_structural_ns / 1_000.0),
        ]);
    }
    println!("{}", timings.render());

    println!(
        "store backends on the same 1k-live-block workload (FileStore is\n\
         disk-rooted: sealing pays real segment writes and fsyncs):"
    );
    let mut table = TextTable::new([
        "backend",
        "seal throughput",
        "locate indexed",
        "locate scan",
        "validate (structural)",
    ]);
    for b in &backends {
        table.row([
            b.backend.to_string(),
            format!("{:.0} blocks/s", b.seal_blocks_per_s()),
            format!("{:.0} ns", b.locate_indexed_ns),
            format!("{:.0} ns", b.locate_scan_ns),
            format!("{:.1} us", b.validate_structural_ns / 1_000.0),
        ]);
    }
    println!("{}", table.render());
}

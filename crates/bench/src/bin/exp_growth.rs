//! Experiment E1 — bounded chain growth (paper §I problem statement, §V-A
//! "Data Reduction").
//!
//! Prints the growth series of the selective-deletion chain against the
//! conventional baseline, plus an l_max sweep, and writes the
//! machine-readable chain-operation timings to `BENCH_chain_ops.json`
//! (indexed vs scan lookups, live-record materialisation, validation at
//! 1k/10k live blocks) so CI archives the performance trajectory.
//!
//! Run with `cargo run -p seldel-bench --bin exp_growth --release`.
//!
//! The backend table includes the `FileStore` twice: synchronous, and in
//! pipelined-commit mode (`FileStore+pipelined`), where fill fsyncs run
//! on a background commit stage overlapped with the next seal. A
//! run-internal gate requires the pipelined mode to stay within 0.9x of
//! the synchronous throughput even without a baseline file.
//!
//! Pass `--baseline <path>` to compare against a previously committed
//! `BENCH_chain_ops.json`: seal throughput and indexed `locate` latency
//! must stay within 20% of the baseline on every backend and chain size
//! (locate additionally gets a 100 ns absolute allowance — indexed
//! lookups sit in the tens of nanoseconds, where a relative gate alone
//! would flag pure timer jitter), `validate_incremental` must not slow
//! down by more than 25%, and the incremental audit must stay at least
//! 10× faster than a full validation pass on the largest chain.
//! Violations print GitHub `::warning::` annotations and exit non-zero.

use seldel_bench::report::{
    row_field_f64, row_field_str, write_chain_ops_report, BackendSample, ChainOpsSample,
};
use seldel_codec::render::{human_bytes, ratio, TextTable};
use seldel_sim::{run_growth, sweep_l_max, GrowthConfig};

/// Minimum acceptable ratio of current to baseline throughput (and its
/// inverse for timings): 20% regression headroom over scheduler noise.
const FLOOR: f64 = 0.8;

/// The acceptance floor for incremental-vs-full validation speedup.
const MIN_INCREMENTAL_SPEEDUP: f64 = 10.0;

/// Absolute slack for the locate gates: sub-100 ns timings cannot be held
/// to a purely relative bound (±8 ns of scheduler jitter on a 25 ns
/// lookup already reads as ±30%).
const LOCATE_NOISE_FLOOR_NS: f64 = 100.0;

/// Absolute slack for the incremental-audit gate: the 1k-block audit runs
/// in ~10 us, where scheduler jitter alone swings the reading by more
/// than the relative bound. The 10k-block sample (~150 us) is what the
/// relative gate meaningfully holds.
const VALIDATE_NOISE_FLOOR_NS: f64 = 15_000.0;

/// Compares this run to the committed baseline report; returns complaints.
fn regressions(baseline: &str, ops: &[ChainOpsSample], backends: &[BackendSample]) -> Vec<String> {
    let mut complaints = Vec::new();
    for line in baseline.lines() {
        let Some(base_blocks) = row_field_f64(line, "live_blocks") else {
            continue;
        };
        if let Some(backend) = row_field_str(line, "backend") {
            // A backend row: gate seal throughput and locate latency.
            let Some(now) = backends
                .iter()
                .find(|b| b.backend == backend && b.live_blocks as f64 == base_blocks)
            else {
                continue;
            };
            if let Some(base_rate) = row_field_f64(line, "seal_blocks_per_s") {
                if now.seal_blocks_per_s() < base_rate * FLOOR {
                    complaints.push(format!(
                        "{backend}: {:.0} sealed blocks/s vs baseline {:.0} ({}% of baseline)",
                        now.seal_blocks_per_s(),
                        base_rate,
                        (100.0 * now.seal_blocks_per_s() / base_rate).round()
                    ));
                }
            }
            if let Some(base_ns) = row_field_f64(line, "locate_indexed_ns") {
                if now.locate_indexed_ns * FLOOR > base_ns + LOCATE_NOISE_FLOOR_NS {
                    complaints.push(format!(
                        "{backend}: locate {:.0} ns vs baseline {:.0} ({}% of baseline)",
                        now.locate_indexed_ns,
                        base_ns,
                        (100.0 * now.locate_indexed_ns / base_ns).round()
                    ));
                }
            }
        } else {
            // A sample row: gate the incremental audit and locate timings.
            let Some(now) = ops.iter().find(|s| s.live_blocks as f64 == base_blocks) else {
                continue;
            };
            if let Some(base_ns) = row_field_f64(line, "validate_incremental_ns") {
                if now.validate_incremental_ns * FLOOR > base_ns + VALIDATE_NOISE_FLOOR_NS {
                    complaints.push(format!(
                        "{} live blocks: validate_incremental {:.0} ns vs baseline {:.0} \
                         ({}% of baseline)",
                        now.live_blocks,
                        now.validate_incremental_ns,
                        base_ns,
                        (100.0 * now.validate_incremental_ns / base_ns).round()
                    ));
                }
            }
            if let Some(base_ns) = row_field_f64(line, "locate_indexed_ns") {
                if now.locate_indexed_ns * FLOOR > base_ns + LOCATE_NOISE_FLOOR_NS {
                    complaints.push(format!(
                        "{} live blocks: locate {:.0} ns vs baseline {:.0} ({}% of baseline)",
                        now.live_blocks,
                        now.locate_indexed_ns,
                        base_ns,
                        (100.0 * now.locate_indexed_ns / base_ns).round()
                    ));
                }
            }
        }
    }
    // Absolute floor, independent of the committed numbers: the audit must
    // keep its asymptotic edge over full validation on the largest chain.
    if let Some(largest) = ops.iter().max_by_key(|s| s.live_blocks) {
        if largest.incremental_speedup() < MIN_INCREMENTAL_SPEEDUP {
            complaints.push(format!(
                "{} live blocks: incremental audit only {:.1}x faster than full \
                 validation (floor {MIN_INCREMENTAL_SPEEDUP}x)",
                largest.live_blocks,
                largest.incremental_speedup()
            ));
        }
    }
    complaints
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    // Read the baseline up front: this run overwrites BENCH_chain_ops.json.
    let baseline = baseline_path
        .as_deref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    let cfg = GrowthConfig {
        blocks: 600,
        entries_per_block: 4,
        sequence_length: 5,
        l_max: 30,
        sample_every: 60,
        payload_bytes: 64,
    };
    println!(
        "E1: growth under identical workload (l = {}, l_max = {}, {} entries/block)",
        cfg.sequence_length, cfg.l_max, cfg.entries_per_block
    );

    let samples = run_growth(&cfg);
    let mut table = TextTable::new([
        "appended",
        "selective blocks",
        "selective size",
        "baseline blocks",
        "baseline size",
        "size ratio",
    ]);
    for s in &samples {
        table.row([
            s.appended.to_string(),
            s.selective_blocks.to_string(),
            human_bytes(s.selective_bytes),
            s.baseline_blocks.to_string(),
            human_bytes(s.baseline_bytes),
            ratio(s.baseline_bytes as f64, s.selective_bytes as f64),
        ]);
    }
    println!("{}", table.render());

    println!("l_max sweep after 400 appended blocks:");
    let mut sweep = TextTable::new(["l_max", "live blocks", "live size"]);
    for (l_max, blocks, bytes) in sweep_l_max(400, &[10, 20, 40, 80, 160]) {
        sweep.row([l_max.to_string(), blocks.to_string(), human_bytes(bytes)]);
    }
    println!("{}", sweep.render());

    let last = samples.last().expect("samples exist");
    println!(
        "shape check: baseline grows without bound ({} blocks), selective stays\n\
         within l_max + l ({} blocks) while retaining {} live records.",
        last.baseline_blocks, last.selective_blocks, last.selective_records
    );

    println!("\nchain-op timings (written to BENCH_chain_ops.json):");
    let (ops, backends) =
        write_chain_ops_report("BENCH_chain_ops.json").expect("write BENCH_chain_ops.json");
    let mut timings = TextTable::new([
        "live blocks",
        "locate indexed",
        "locate scan",
        "speedup",
        "live_records",
        "validate (structural)",
        "validate (incremental)",
        "vs full",
    ]);
    for s in &ops {
        timings.row([
            s.live_blocks.to_string(),
            format!("{:.0} ns", s.locate_indexed_ns),
            format!("{:.0} ns", s.locate_scan_ns),
            format!("{:.1}x", s.locate_speedup()),
            format!("{:.1} us", s.live_records_ns / 1_000.0),
            format!("{:.1} us", s.validate_structural_ns / 1_000.0),
            format!("{:.1} us", s.validate_incremental_ns / 1_000.0),
            format!("{:.1}x", s.incremental_speedup()),
        ]);
    }
    println!("{}", timings.render());

    println!(
        "store backends on the same 1k-live-block workload (FileStore is\n\
         disk-rooted: sealing pays real segment writes and fsyncs):"
    );
    let mut table = TextTable::new([
        "backend",
        "seal throughput",
        "locate indexed",
        "locate scan",
        "validate (structural)",
    ]);
    for b in &backends {
        table.row([
            b.backend.to_string(),
            format!("{:.0} blocks/s", b.seal_blocks_per_s()),
            format!("{:.0} ns", b.locate_indexed_ns),
            format!("{:.0} ns", b.locate_scan_ns),
            format!("{:.1} us", b.validate_structural_ns / 1_000.0),
        ]);
    }
    println!("{}", table.render());

    // Run-internal sanity gate, independent of any committed baseline:
    // the pipelined FileStore must at least match the synchronous one
    // (0.9x floor — on a fast disk fsyncs are nearly free, so parity is
    // a legitimate outcome; falling *behind* means the commit stage
    // serialised work the synchronous path overlapped for free).
    let plain = backends.iter().find(|b| b.backend == "FileStore");
    let piped = backends.iter().find(|b| b.backend == "FileStore+pipelined");
    if let (Some(plain), Some(piped)) = (plain, piped) {
        println!(
            "pipelined seal overlap: {:.0} blocks/s vs {:.0} blocks/s synchronous ({:.2}x)",
            piped.seal_blocks_per_s(),
            plain.seal_blocks_per_s(),
            piped.seal_blocks_per_s() / plain.seal_blocks_per_s()
        );
        if piped.seal_blocks_per_s() < plain.seal_blocks_per_s() * 0.9 {
            println!(
                "::warning title=exp_growth perf regression::pipelined FileStore sealed \
                 {:.0} blocks/s, below 0.9x of the synchronous {:.0} blocks/s",
                piped.seal_blocks_per_s(),
                plain.seal_blocks_per_s()
            );
            eprintln!("the pipelined commit stage slowed sealing down instead of overlapping it");
            std::process::exit(1);
        }
    }

    if let Some(baseline) = baseline {
        let complaints = regressions(&baseline, &ops, &backends);
        if complaints.is_empty() {
            println!(
                "baseline check: seal throughput and incremental audit within \
                 bounds of the committed run"
            );
        } else {
            for c in &complaints {
                println!("::warning title=exp_growth perf regression::{c}");
            }
            eprintln!(
                "chain-op performance regressed vs the committed baseline on {} check(s)",
                complaints.len()
            );
            std::process::exit(1);
        }
    }
}

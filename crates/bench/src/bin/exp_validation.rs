//! Experiment E5 — new-node validation cost (§V-B3).
//!
//! A joining node validates the chain "from its current status quo". With
//! selective deletion the live chain is bounded, so validation cost stays
//! flat; the unbounded chain's cost grows with its full history.
//!
//! Run with `cargo run -p seldel-bench --bin exp_validation --release`.

use std::time::Instant;

use seldel_bench::build_ttl_ledger;
use seldel_chain::{validate_chain, ValidationOptions};
use seldel_codec::render::TextTable;

fn time_validation(chain: &seldel_chain::Blockchain, opts: &ValidationOptions) -> (f64, u64) {
    let started = Instant::now();
    let report = validate_chain(chain, opts).expect("chains are valid");
    (
        started.elapsed().as_secs_f64() * 1000.0,
        report.blocks_checked,
    )
}

fn main() {
    println!("E5: validation cost for a joining node (retention workload)\n");
    println!(
        "workload: logging with a retention window — every record expires\n\
         1000 virtual ms (~100 blocks) after submission, as in the paper's\n\
         §II audit-log use case. full = hash links + every signature.\n"
    );
    let mut table = TextTable::new([
        "appended",
        "sel live blk",
        "sel records",
        "sel full ms",
        "unb live blk",
        "unb records",
        "unb full ms",
    ]);
    for appended in [100u64, 200, 400, 800] {
        let selective = build_ttl_ledger(10, 40, appended, 2, 1000, true);
        let unbounded = build_ttl_ledger(10, 40, appended, 2, 1000, false);
        let (sel_full, sel_blocks) =
            time_validation(selective.chain(), &ValidationOptions::default());
        let (unb_full, unb_blocks) =
            time_validation(unbounded.chain(), &ValidationOptions::default());
        table.row([
            appended.to_string(),
            sel_blocks.to_string(),
            selective.stats().live_records.to_string(),
            format!("{sel_full:.1}"),
            unb_blocks.to_string(),
            unbounded.stats().live_records.to_string(),
            format!("{unb_full:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: with a retention window the selective chain's live\n\
         record count — and therefore a joining node's validation cost —\n\
         plateaus, while the unbounded chain keeps every expired record and\n\
         validates in time linear in its full history (§V-B3)."
    );
}

//! Experiment E3 — size and build time of summary blocks (§V-B2).
//!
//! "By adding up the information in summary blocks, they become larger
//! over time. The creation of these summary blocks can take a long time,
//! depending on the amount of data to be copied" — this binary quantifies
//! both, including the growth across repeated merge cycles.
//!
//! Run with `cargo run -p seldel-bench --bin exp_summary_size --release`.

use std::time::Instant;

use seldel_bench::{bench_config, manual_chain, workload_entry, workload_key};
use seldel_chain::{BlockKind, Timestamp};
use seldel_codec::render::{human_bytes, TextTable};

fn main() {
    println!("E3a: summary block size/build time vs merged records\n");
    let mut table = TextTable::new(["records merged", "Σ size", "bytes/record", "build time"]);
    for entries_per_block in [2usize, 8, 32, 64] {
        // A manual chain stopped at tip 38 (l=10, l_max=20): the next slot
        // (39) merges sequence [10..19] — nine payload blocks of entries.
        let (chain, config) = manual_chain(bench_config(10, 20), 38, entries_per_block);
        let deletions = seldel_core::DeletionRegistry::new();
        let next = chain.tip().number().next();
        assert!(config.is_summary_slot(next));
        let started = Instant::now();
        let (block, outcome) = seldel_core::build_summary_block(&chain, &config, &deletions, next);
        let elapsed = started.elapsed();
        let size = block.byte_size() as u64;
        table.row([
            outcome.carried.to_string(),
            human_bytes(size),
            format!("{:.0}", size as f64 / outcome.carried.max(1) as f64),
            format!("{:.2?}", elapsed),
        ]);
    }
    println!("{}", table.render());

    println!("E3b: summary size across repeated merge cycles (records accumulate)\n");
    let key = workload_key();
    let mut ledger = seldel_core::SelectiveLedger::new(seldel_bench::bench_config(5, 15));
    let mut cycles = TextTable::new(["tip block", "Σ records", "Σ size"]);
    let mut counter = 0u64;
    let mut sampled = 0;
    let mut b = 0u64;
    while sampled < 8 {
        b += 1;
        counter += 1;
        ledger
            .submit_entry(workload_entry(&key, counter, 64))
            .expect("valid entry");
        ledger.seal_block(Timestamp(b * 10)).expect("monotone time");
        let tip = ledger.chain().tip();
        if tip.kind() == BlockKind::Summary && !tip.summary_records().is_empty() {
            cycles.row([
                tip.number().to_string(),
                tip.summary_records().len().to_string(),
                human_bytes(tip.byte_size() as u64),
            ]);
            sampled += 1;
        }
    }
    println!("{}", cycles.render());
    println!(
        "shape check: Σ size grows linearly with carried records; permanent\n\
         records accumulate across merge cycles exactly as §V-B2 warns (the\n\
         paper's mitigations — hash references / off-chain packaging — would\n\
         cap bytes/record)."
    );
}

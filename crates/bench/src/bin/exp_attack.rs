//! Fig. 9 / §V-B1 — hampering the 51 % attack, plus the §V-B4 eclipse
//! quantification.
//!
//! Without anchoring, pruned history is attested only by the latest
//! summary block: rewriting one block forges it. With the middle-sequence
//! anchor, every old record keeps ≥ lβ/2 confirmations, so the attacker
//! must re-mine lβ/2 blocks — exponentially harder for q < 0.5.
//!
//! Run with `cargo run -p seldel-bench --bin exp_attack --release`.

use seldel_codec::render::TextTable;
use seldel_sim::{
    analytic_catch_up, compare_anchoring, eclipse_success_rate, simulate_race, EclipseConfig,
    RaceConfig,
};

fn main() {
    println!("F9a: rewrite-race success probability (Monte Carlo, 20k trials)\n");
    let mut race = TextTable::new(["q", "depth", "simulated", "analytic (q/p)^z"]);
    for q in [0.10, 0.20, 0.30, 0.40, 0.45] {
        for depth in [1u64, 3, 6, 12, 24] {
            let result = simulate_race(&RaceConfig {
                attacker_fraction: q,
                depth,
                trials: 20_000,
                give_up_lead: 80,
                seed: 0x51AC ^ depth ^ (q * 1000.0) as u64,
            });
            race.row([
                format!("{q:.2}"),
                depth.to_string(),
                format!("{:.4}", result.success_rate),
                format!("{:.4}", analytic_catch_up(q, depth)),
            ]);
        }
    }
    println!("{}", race.render());

    println!("F9b: anchoring comparison for a live chain of lβ = 24 blocks\n");
    let mut cmp = TextTable::new([
        "q",
        "without anchor (z=1)",
        "with anchor (z=lβ/2=12)",
        "hardening",
    ]);
    for q in [0.20, 0.30, 0.40, 0.45] {
        let (without, with) = compare_anchoring(24, q, 20_000, 0xF19);
        let hardening = if with.success_rate > 0.0 {
            format!("{:.0}x", without.success_rate / with.success_rate)
        } else {
            "inf".to_string()
        };
        cmp.row([
            format!("{q:.2}"),
            format!("{:.4}", without.success_rate),
            format!("{:.5}", with.success_rate),
            hardening,
        ]);
    }
    println!("{}", cmp.render());

    println!("§V-B4: eclipse — majority of consulted anchors controlled by attacker\n");
    let mut eclipse = TextTable::new(["anchors", "controlled", "consulted", "stale majority"]);
    for controlled in [1usize, 2, 3, 4, 5, 6] {
        let cfg = EclipseConfig {
            anchors: 10,
            controlled,
            consulted: 5,
            trials: 40_000,
            seed: 0xEC11,
        };
        eclipse.row([
            cfg.anchors.to_string(),
            controlled.to_string(),
            cfg.consulted.to_string(),
            format!("{:.4}", eclipse_success_rate(&cfg)),
        ]);
    }
    println!("{}", eclipse.render());
    println!(
        "shape check: attack success decays exponentially in depth; anchoring\n\
         multiplies the required depth by lβ/2, and eclipse risk stays low while\n\
         honest anchors outnumber controlled ones among those consulted."
    );
}

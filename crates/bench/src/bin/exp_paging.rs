//! Experiment E11 — larger-than-RAM chains on the paged `FileStore`.
//!
//! Measures indexed `locate` / `locate_many` latency and resident
//! live-block bytes on disk-rooted chains sized at 1×, 2× and 4× the
//! hot-block cache budget, and writes `BENCH_paging.json`.
//!
//! Run with `cargo run -p seldel-bench --bin exp_paging --release`.
//!
//! Two gates run **unconditionally** (they are the tentpole's acceptance
//! criteria, not trend checks):
//!
//! * **flatness** — uniform-probe locate latency at 4× budget must stay
//!   within 25% of the 2× budget run (both are miss-dominated, so the
//!   cost per lookup must not grow with chain length);
//! * **boundedness** — at 4× budget the on-disk chain must be ≥ 3× the
//!   resident live-block bytes, and the resident bytes must not grow
//!   with the chain (within 50% of the 1×-budget run's footprint).
//!
//! Pass `--baseline <path>` to additionally compare `locate_uniform_ns`
//! and `locate_many_ns_per_id` per chain size against a previously
//! committed `BENCH_paging.json` with the same >20% gate the other
//! experiments use (plus a 100 ns absolute allowance, for the
//! all-hit within-budget row). Violations print GitHub `::warning::`
//! annotations and exit non-zero.

use seldel_bench::paging::{write_paging_report, PagingSample};
use seldel_bench::report::row_field_f64;
use seldel_codec::render::{human_bytes, TextTable};

/// Hot-cache budget the experiment runs with, in blocks.
const CACHE_BLOCKS: usize = 64;

/// Payload bytes per workload entry.
const PAYLOAD_BYTES: usize = 256;

/// Minimum acceptable ratio of baseline to current timing (20% regression
/// headroom over scheduler noise — the workspace-wide gate).
const FLOOR: f64 = 0.8;

/// Minimum chain-bytes : resident-bytes ratio at the largest size.
const MIN_PAGING_FACTOR: f64 = 3.0;

/// Absolute slack for the baseline locate gates: the within-budget row is
/// all cache hits (~100 ns), where a purely relative bound would flag
/// scheduler jitter as a regression.
const LOCATE_NOISE_FLOOR_NS: f64 = 100.0;

/// The in-run acceptance gates (flat latency, bounded residency).
fn structural_complaints(samples: &[PagingSample]) -> Vec<String> {
    let mut complaints = Vec::new();
    let [within, mid, large] = samples else {
        return vec![format!("expected 3 samples, got {}", samples.len())];
    };
    // Flatness: 4× vs 2× budget, both miss-dominated.
    if large.locate_uniform_ns * FLOOR > mid.locate_uniform_ns {
        complaints.push(format!(
            "locate latency grows with chain size: {:.0} ns at {} blocks vs {:.0} ns at {} \
             ({}% of the smaller chain)",
            large.locate_uniform_ns,
            large.live_blocks,
            mid.locate_uniform_ns,
            mid.live_blocks,
            (100.0 * large.locate_uniform_ns / mid.locate_uniform_ns).round()
        ));
    }
    // Boundedness: the chain dwarfs resident memory...
    if large.paging_factor() < MIN_PAGING_FACTOR {
        complaints.push(format!(
            "chain only {:.1}x resident memory at {} blocks (floor {MIN_PAGING_FACTOR}x): \
             {} on disk vs {} resident",
            large.paging_factor(),
            large.live_blocks,
            human_bytes(large.chain_bytes),
            human_bytes(large.resident_bytes)
        ));
    }
    // ...and residency tracks the cache budget, not the chain length.
    if large.resident_bytes as f64 > within.resident_bytes as f64 * 1.5 {
        complaints.push(format!(
            "resident bytes grow with the chain: {} at {} blocks vs {} at {}",
            human_bytes(large.resident_bytes),
            large.live_blocks,
            human_bytes(within.resident_bytes),
            within.live_blocks
        ));
    }
    complaints
}

/// Compares this run to the committed baseline report; returns complaints.
fn regressions(baseline: &str, samples: &[PagingSample]) -> Vec<String> {
    let mut complaints = Vec::new();
    for line in baseline.lines() {
        let Some(base_blocks) = row_field_f64(line, "live_blocks") else {
            continue;
        };
        let Some(now) = samples.iter().find(|s| s.live_blocks as f64 == base_blocks) else {
            continue;
        };
        for (name, current) in [
            ("locate_uniform_ns", now.locate_uniform_ns),
            ("locate_many_ns_per_id", now.locate_many_ns_per_id),
        ] {
            let Some(base_ns) = row_field_f64(line, name) else {
                continue;
            };
            if current * FLOOR > base_ns + LOCATE_NOISE_FLOOR_NS {
                complaints.push(format!(
                    "{} live blocks: {name} {current:.0} ns vs baseline {base_ns:.0} \
                     ({}% of baseline)",
                    now.live_blocks,
                    (100.0 * current / base_ns).round()
                ));
            }
        }
    }
    complaints
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    // Read the baseline up front: this run overwrites BENCH_paging.json.
    let baseline = baseline_path
        .as_deref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    println!(
        "E11: paged FileStore, hot-cache budget {CACHE_BLOCKS} blocks, chains at \
         1x/2x/4x the budget\n(written to BENCH_paging.json)"
    );
    let samples = write_paging_report("BENCH_paging.json", CACHE_BLOCKS, PAYLOAD_BYTES)
        .expect("write BENCH_paging.json");

    let mut table = TextTable::new([
        "live blocks",
        "chain bytes",
        "resident bytes",
        "paging factor",
        "locate uniform",
        "locate hot",
        "locate_many /id",
        "cache hit rate",
    ]);
    for s in &samples {
        let probes = s.cache_hits + s.cache_misses;
        table.row([
            s.live_blocks.to_string(),
            human_bytes(s.chain_bytes),
            human_bytes(s.resident_bytes),
            format!("{:.1}x", s.paging_factor()),
            format!("{:.0} ns", s.locate_uniform_ns),
            format!("{:.0} ns", s.locate_hot_ns),
            format!("{:.0} ns", s.locate_many_ns_per_id),
            if probes == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", 100.0 * s.cache_hits as f64 / probes as f64)
            },
        ]);
    }
    println!("{}", table.render());

    let mut complaints = structural_complaints(&samples);
    if complaints.is_empty() {
        println!(
            "paging check: locate flat past the cache budget, resident bytes bounded \
             by the budget while the chain grows {:.1}x past it",
            samples.last().expect("samples exist").paging_factor()
        );
    }
    if let Some(baseline) = baseline {
        let trend = regressions(&baseline, &samples);
        if trend.is_empty() && complaints.is_empty() {
            println!("baseline check: locate and locate_many within 20% of the committed run");
        }
        complaints.extend(trend);
    }
    if !complaints.is_empty() {
        for c in &complaints {
            println!("::warning title=exp_paging regression::{c}");
        }
        eprintln!(
            "paged-store performance violated {} check(s) (flatness/boundedness/baseline)",
            complaints.len()
        );
        std::process::exit(1);
    }
}

//! Experiment E7 — crash/restart recovery of the durable `FileStore`
//! backend (§IV-C physical deletion as a storage-layer obligation).
//!
//! Runs the `seldel-sim` crash matrix (mid-push torn frame, mid-prune
//! interrupted file operations, deferred-commit power cut with the
//! pipelined fsync stage stalled, clean close) in a scratch directory,
//! timing the reopen+recovery path, plus the `TamperPayload` fault
//! (one flipped bit in a closed store, caught on reopen + incremental
//! audit), and writes the machine-readable outcome to
//! `BENCH_recovery.json` so CI archives it alongside
//! `BENCH_chain_ops.json`.
//!
//! Run with `cargo run -p seldel-bench --bin exp_recovery --release`.
//!
//! Pass `--baseline <path>` to compare the timed recovery path against a
//! previously committed `BENCH_recovery.json`; a slowdown beyond 25% on
//! any crash point prints a GitHub `::warning::` annotation and exits
//! non-zero.

use std::time::Instant;

use seldel_bench::report::{render_json_report, row_field_f64, row_field_str, JsonField, JsonRow};
use seldel_chain::FileStore;
use seldel_codec::render::TextTable;
use seldel_core::SelectiveLedger;
use seldel_sim::{
    crash_chain_config, run_crash_restart, run_tamper_payload, CrashConfig, CrashPoint,
    CrashReport, TamperDetection, TamperReport,
};

/// One measured crash/restart run.
struct Row {
    report: CrashReport,
    /// Whole scenario wall time (workload + damage + recovery + resume).
    scenario_ms: f64,
    /// A dedicated timed reopen of the final directory: segment replay,
    /// chain reconstruction + full validation, Σ-state re-derivation.
    recovery_ms: f64,
}

fn run_point(base: &std::path::Path, point: CrashPoint) -> Row {
    let dir = base.join(point.to_string());
    let cfg = CrashConfig {
        point,
        ..Default::default()
    };
    let start = Instant::now();
    let report = run_crash_restart(&dir, &cfg);
    let scenario_ms = start.elapsed().as_secs_f64() * 1e3;
    // The scenario leaves the recovered store behind: time a fresh open of
    // exactly the state a restarting node would find.
    let start = Instant::now();
    let reopened = SelectiveLedger::builder(crash_chain_config())
        .store_backend::<FileStore>()
        .on_disk(&dir)
        .expect("final scenario state reopens");
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        reopened.chain().len(),
        report.final_live_blocks,
        "timed reopen saw a different chain than the scenario left"
    );
    Row {
        report,
        scenario_ms,
        recovery_ms,
    }
}

/// One timed tamper-detection run.
struct TamperRow {
    seed: u64,
    report: TamperReport,
    /// Reopen + incremental audit wall time on the tampered store.
    detect_ms: f64,
}

/// Short channel label for tables and JSON.
fn detection_label(detection: &TamperDetection) -> &'static str {
    match detection {
        TamperDetection::OpenRejected(_) => "open_rejected",
        TamperDetection::BlockFlagged(_) => "block_flagged",
        TamperDetection::TailTruncated { .. } => "tail_truncated",
        TamperDetection::TipHashDiverged => "tip_hash_diverged",
    }
}

fn run_tamper(base: &std::path::Path, seed: u64) -> TamperRow {
    let dir = base.join(format!("tamper-{seed}"));
    let cfg = CrashConfig::default();
    let start = Instant::now();
    let report = run_tamper_payload(&dir, &cfg, seed);
    let detect_ms = start.elapsed().as_secs_f64() * 1e3;
    TamperRow {
        seed,
        report,
        detect_ms,
    }
}

fn to_json(rows: &[Row], tampers: &[TamperRow]) -> String {
    let scenario_rows: Vec<JsonRow> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            JsonRow::new()
                .field("crash_point", r.point.to_string().as_str())
                .field("oracle_tip", r.oracle_tip)
                .field("recovered_tip", r.recovered_tip)
                .field("lost_blocks", r.lost_blocks)
                .field("reapplied_blocks", r.reapplied_blocks)
                .field("final_marker", r.final_marker)
                .field("final_live_blocks", r.final_live_blocks)
                .field("scenario_ms", JsonField::f1(row.scenario_ms))
                .field("recovery_ms", JsonField::f1(row.recovery_ms))
        })
        .collect();
    let tamper_rows: Vec<JsonRow> = tampers
        .iter()
        .map(|t| {
            JsonRow::new()
                .field("seed", t.seed)
                .field("segment", t.report.segment.as_str())
                .field("offset", t.report.offset)
                .field("detection", detection_label(&t.report.detection))
                .field("detect_ms", JsonField::f1(t.detect_ms))
        })
        .collect();
    render_json_report(
        "recovery",
        &[],
        &[("scenarios", scenario_rows), ("tamper", tamper_rows)],
    )
}

/// Compares timed recovery against the committed baseline; returns
/// complaints.
fn regressions(baseline: &str, rows: &[Row]) -> Vec<String> {
    let mut complaints = Vec::new();
    for line in baseline.lines() {
        let (Some(point), Some(base_ms)) = (
            row_field_str(line, "crash_point"),
            row_field_f64(line, "recovery_ms"),
        ) else {
            continue;
        };
        let Some(now) = rows.iter().find(|r| r.report.point.to_string() == point) else {
            continue;
        };
        // 25% headroom plus a small absolute grace: sub-10ms reopens are
        // dominated by filesystem cache noise on CI runners.
        if now.recovery_ms > base_ms * 1.25 + 5.0 {
            complaints.push(format!(
                "{point}: reopen took {:.1} ms vs baseline {:.1} ms ({}% of baseline)",
                now.recovery_ms,
                base_ms,
                (100.0 * now.recovery_ms / base_ms).round()
            ));
        }
    }
    complaints
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    // Read the baseline up front: this run overwrites BENCH_recovery.json.
    let baseline = baseline_path
        .as_deref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    let scratch = seldel_chain::testutil::ScratchDir::new("exp-recovery");
    let base = scratch.path().to_path_buf();
    println!(
        "E7: crash/restart recovery — FileStore vs a never-closed MemStore\n\
         oracle (identical workload; every run asserts bit-identity of the\n\
         live chain, sealed hashes and entry index after recovery)."
    );

    let rows: Vec<Row> = [
        CrashPoint::MidPush,
        CrashPoint::MidPrune,
        CrashPoint::DeferredCommit,
        CrashPoint::CleanClose,
    ]
    .into_iter()
    .map(|point| run_point(&base, point))
    .collect();

    let mut table = TextTable::new([
        "crash point",
        "oracle tip",
        "recovered tip",
        "lost",
        "re-applied",
        "final marker",
        "reopen (recovery)",
        "scenario total",
    ]);
    for row in &rows {
        let r = &row.report;
        table.row([
            r.point.to_string(),
            r.oracle_tip.to_string(),
            r.recovered_tip.to_string(),
            r.lost_blocks.to_string(),
            r.reapplied_blocks.to_string(),
            r.final_marker.to_string(),
            format!("{:.1} ms", row.recovery_ms),
            format!("{:.0} ms", row.scenario_ms),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: mid-prune and clean-close lose nothing (the Σ barrier\n\
         fsyncs carried records before the manifest); mid-push loses only\n\
         the torn tail frame; deferred-commit loses exactly the blocks past\n\
         the durable watermark — both re-applied from peers."
    );

    println!(
        "\nTamperPayload fault: one flipped bit in a closed store, caught on\n\
         reopen + incremental audit (every run asserts detection):"
    );
    let tampers: Vec<TamperRow> = [11, 42, 0xFEED]
        .into_iter()
        .map(|seed| run_tamper(&base, seed))
        .collect();
    let mut tamper_table = TextTable::new(["seed", "segment", "offset", "detection", "caught in"]);
    for t in &tampers {
        tamper_table.row([
            t.seed.to_string(),
            t.report.segment.clone(),
            t.report.offset.to_string(),
            detection_label(&t.report.detection).to_string(),
            format!("{:.1} ms", t.detect_ms),
        ]);
    }
    println!("{}", tamper_table.render());

    std::fs::write("BENCH_recovery.json", to_json(&rows, &tampers))
        .expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");

    if let Some(baseline) = baseline {
        let complaints = regressions(&baseline, &rows);
        if complaints.is_empty() {
            println!("baseline check: recovery timings within bounds of the committed run");
        } else {
            for c in &complaints {
                println!("::warning title=exp_recovery regression::{c}");
            }
            eprintln!(
                "recovery timings regressed vs the committed baseline on {} point(s)",
                complaints.len()
            );
            std::process::exit(1);
        }
    }
}

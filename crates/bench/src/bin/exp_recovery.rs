//! Experiment E7 — crash/restart recovery of the durable `FileStore`
//! backend (§IV-C physical deletion as a storage-layer obligation).
//!
//! Runs the `seldel-sim` crash matrix (mid-push torn frame, mid-prune
//! interrupted file operations, clean close) in a scratch directory,
//! timing the reopen+recovery path, and writes the machine-readable
//! outcome to `BENCH_recovery.json` so CI archives it alongside
//! `BENCH_chain_ops.json`.
//!
//! Run with `cargo run -p seldel-bench --bin exp_recovery --release`.

use std::time::Instant;

use seldel_bench::report::{render_json_report, JsonField, JsonRow};
use seldel_chain::FileStore;
use seldel_codec::render::TextTable;
use seldel_core::SelectiveLedger;
use seldel_sim::{crash_chain_config, run_crash_restart, CrashConfig, CrashPoint, CrashReport};

/// One measured crash/restart run.
struct Row {
    report: CrashReport,
    /// Whole scenario wall time (workload + damage + recovery + resume).
    scenario_ms: f64,
    /// A dedicated timed reopen of the final directory: segment replay,
    /// chain reconstruction + full validation, Σ-state re-derivation.
    recovery_ms: f64,
}

fn run_point(base: &std::path::Path, point: CrashPoint) -> Row {
    let dir = base.join(point.to_string());
    let cfg = CrashConfig {
        point,
        ..Default::default()
    };
    let start = Instant::now();
    let report = run_crash_restart(&dir, &cfg);
    let scenario_ms = start.elapsed().as_secs_f64() * 1e3;
    // The scenario leaves the recovered store behind: time a fresh open of
    // exactly the state a restarting node would find.
    let start = Instant::now();
    let reopened = SelectiveLedger::builder(crash_chain_config())
        .store_backend::<FileStore>()
        .on_disk(&dir)
        .expect("final scenario state reopens");
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        reopened.chain().len(),
        report.final_live_blocks,
        "timed reopen saw a different chain than the scenario left"
    );
    Row {
        report,
        scenario_ms,
        recovery_ms,
    }
}

fn to_json(rows: &[Row]) -> String {
    let scenario_rows: Vec<JsonRow> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            JsonRow::new()
                .field("crash_point", r.point.to_string().as_str())
                .field("oracle_tip", r.oracle_tip)
                .field("recovered_tip", r.recovered_tip)
                .field("lost_blocks", r.lost_blocks)
                .field("reapplied_blocks", r.reapplied_blocks)
                .field("final_marker", r.final_marker)
                .field("final_live_blocks", r.final_live_blocks)
                .field("scenario_ms", JsonField::f1(row.scenario_ms))
                .field("recovery_ms", JsonField::f1(row.recovery_ms))
        })
        .collect();
    render_json_report("recovery", &[], &[("scenarios", scenario_rows)])
}

fn main() {
    let scratch = seldel_chain::testutil::ScratchDir::new("exp-recovery");
    let base = scratch.path().to_path_buf();
    println!(
        "E7: crash/restart recovery — FileStore vs a never-closed MemStore\n\
         oracle (identical workload; every run asserts bit-identity of the\n\
         live chain, sealed hashes and entry index after recovery)."
    );

    let rows: Vec<Row> = [
        CrashPoint::MidPush,
        CrashPoint::MidPrune,
        CrashPoint::CleanClose,
    ]
    .into_iter()
    .map(|point| run_point(&base, point))
    .collect();

    let mut table = TextTable::new([
        "crash point",
        "oracle tip",
        "recovered tip",
        "lost",
        "re-applied",
        "final marker",
        "reopen (recovery)",
        "scenario total",
    ]);
    for row in &rows {
        let r = &row.report;
        table.row([
            r.point.to_string(),
            r.oracle_tip.to_string(),
            r.recovered_tip.to_string(),
            r.lost_blocks.to_string(),
            r.reapplied_blocks.to_string(),
            r.final_marker.to_string(),
            format!("{:.1} ms", row.recovery_ms),
            format!("{:.0} ms", row.scenario_ms),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: mid-prune and clean-close lose nothing (the Σ barrier\n\
         fsyncs carried records before the manifest); mid-push loses only\n\
         the torn tail frame, re-applied from peers."
    );

    std::fs::write("BENCH_recovery.json", to_json(&rows)).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}

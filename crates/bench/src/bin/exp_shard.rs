//! Experiment E9 — the sharded query & intake subsystem under the
//! multi-tenant workload: indexed-lookup throughput and recovery-rebuild
//! time at 1/4/16 shards, per storage backend.
//!
//! Builds one Zipf-skewed multi-tenant chain per backend
//! (`MemStore`/`SegStore`/disk-rooted `FileStore`), then for each shard
//! count measures (a) batched `locate_many` throughput over a shuffled
//! probe set of live ids and (b) the index rebuild a recovery replay
//! pays (`ShardedIndex::build_from_store` over the final store; for the
//! `FileStore` the in-memory snapshot is used so the series isolates
//! index work from disk reads). Results land in `BENCH_shard.json`.
//!
//! Run with `cargo run -p seldel-bench --bin exp_shard --release`.
//! Pass `--baseline <path>` to compare indexed-lookup throughput against
//! a previously committed `BENCH_shard.json` first: a regression of more
//! than 20% on any (backend, shards) row prints a GitHub `::warning::`
//! annotation and exits non-zero, which is how CI tracks the trajectory.

use std::time::Instant;

use seldel_bench::report::{render_json_report, row_field_f64, row_field_str, JsonField, JsonRow};
use seldel_chain::{BlockStore, EntryId, FileStore, ShardMap, ShardedIndex};
use seldel_codec::render::TextTable;
use seldel_core::SelectiveLedger;
use seldel_sim::{drive_multi_tenant, run_multi_tenant_in, tenant_chain_config, TenantConfig};

/// The shard-count series the ROADMAP asks for.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Probes per timed `locate_many` batch (live ids, tiled and shuffled).
const LOOKUP_BATCH: usize = 16_384;

/// The E9 workload: enough skewed tenants and live records that index
/// depth and cache footprint matter, small enough for a CI smoke run.
fn workload() -> TenantConfig {
    TenantConfig {
        authors: 64,
        zipf_s: 1.05,
        blocks: 1_500,
        entries_per_block: 8,
        sequence_length: 5,
        l_max: 750,
        delete_every: 13,
        query_batch: 0, // queries are what we time below, not the build
        max_block_entries: None,
        ..Default::default()
    }
}

struct LookupRow {
    backend: &'static str,
    shards: usize,
    lookup_ns: f64,
    lookups_per_s: f64,
    speedup_vs_one: f64,
}

struct RebuildRow {
    backend: &'static str,
    shards: usize,
    live_blocks: u64,
    live_records: u64,
    rebuild_ms: f64,
    speedup_vs_one: f64,
}

/// Runs `op` in `chunks` timed chunks of `reps` iterations each and
/// returns the **fastest** chunk's nanoseconds per iteration — the
/// standard robust estimator against transient load on shared runners.
fn min_over_chunks(reps: u32, chunks: u32, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..chunks {
        let start = Instant::now();
        for _ in 0..reps {
            op();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(reps));
    }
    best
}

/// Tiles the live ids up to [`LOOKUP_BATCH`] and shuffles them with a
/// fixed stride so probes hop across the key space (and across shards)
/// the way independent tenant queries do.
fn probe_batch(live: &[EntryId]) -> Vec<EntryId> {
    assert!(!live.is_empty(), "workload leaves live records");
    let mut tiled: Vec<EntryId> = Vec::with_capacity(LOOKUP_BATCH);
    while tiled.len() < LOOKUP_BATCH {
        tiled.extend_from_slice(live);
    }
    tiled.truncate(LOOKUP_BATCH);
    let n = tiled.len();
    (0..n).map(|i| tiled[(i * 48_271) % n]).collect()
}

fn measure_backend<S: BlockStore>(
    backend: &'static str,
    ledger: &SelectiveLedger<S>,
    lookups: &mut Vec<LookupRow>,
    rebuilds: &mut Vec<RebuildRow>,
) {
    let chain = ledger.chain();
    // Probe the records that actually exercise the index: summarised
    // (carried) records whose origin blocks were pruned. Live in-block
    // entries short-circuit through the O(1) direct block lookup and
    // would dilute the series with work no shard layout can change.
    let live: Vec<EntryId> = chain
        .live_records()
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| chain.get(id.block).is_none())
        .collect();
    let batch = probe_batch(&live);

    let mut one_shard_ns = 0.0f64;
    let mut one_shard_rebuild = 0.0f64;
    for &shards in &SHARD_COUNTS {
        // A detached snapshot per shard count (FileStore clones are
        // in-memory, so the lookup series never mixes disk latency in).
        let mut sharded = chain.clone();
        sharded.reshard(shards);

        // Min over chunks: the fastest chunk is the least perturbed by
        // transient machine load, which keeps the CI regression gate from
        // tripping on scheduler noise instead of real regressions.
        std::hint::black_box(sharded.locate_many(&batch)); // warm-up
        let lookup_ns = min_over_chunks(6, 5, || {
            std::hint::black_box(sharded.locate_many(std::hint::black_box(&batch)));
        }) / batch.len() as f64;
        let lookups_per_s = 1e9 / lookup_ns;
        if shards == 1 {
            one_shard_ns = lookup_ns;
        }
        lookups.push(LookupRow {
            backend,
            shards,
            lookup_ns,
            lookups_per_s,
            speedup_vs_one: one_shard_ns / lookup_ns,
        });

        let map = ShardMap::new(shards);
        std::hint::black_box(ShardedIndex::build_from_store(map, sharded.store())); // warm-up
        let rebuild_ms = min_over_chunks(4, 5, || {
            std::hint::black_box(ShardedIndex::build_from_store(map, sharded.store()));
        }) / 1e6;
        if shards == 1 {
            one_shard_rebuild = rebuild_ms;
        }
        rebuilds.push(RebuildRow {
            backend,
            shards,
            live_blocks: sharded.len(),
            live_records: sharded.record_count(),
            rebuild_ms,
            speedup_vs_one: one_shard_rebuild / rebuild_ms,
        });
    }
}

fn to_json(lookups: &[LookupRow], rebuilds: &[RebuildRow]) -> String {
    let lookup_rows: Vec<JsonRow> = lookups
        .iter()
        .map(|r| {
            JsonRow::new()
                .field("backend", r.backend)
                .field("shards", r.shards)
                .field("batch", LOOKUP_BATCH)
                .field("lookup_ns", JsonField::f1(r.lookup_ns))
                .field("lookups_per_s", JsonField::f0(r.lookups_per_s))
                .field(
                    "speedup_vs_one_shard",
                    JsonField::F64 {
                        value: r.speedup_vs_one,
                        decimals: 2,
                    },
                )
        })
        .collect();
    let rebuild_rows: Vec<JsonRow> = rebuilds
        .iter()
        .map(|r| {
            JsonRow::new()
                .field("backend", r.backend)
                .field("shards", r.shards)
                .field("live_blocks", r.live_blocks)
                .field("live_records", r.live_records)
                .field(
                    "rebuild_ms",
                    JsonField::F64 {
                        value: r.rebuild_ms,
                        decimals: 3,
                    },
                )
                .field(
                    "speedup_vs_one_shard",
                    JsonField::F64 {
                        value: r.speedup_vs_one,
                        decimals: 2,
                    },
                )
        })
        .collect();
    render_json_report(
        "shard",
        &[],
        &[("lookup", lookup_rows), ("rebuild", rebuild_rows)],
    )
}

/// Reads the `(backend, shards) → lookups_per_s` rows out of a committed
/// `BENCH_shard.json` (our own line-per-row format; no JSON parser).
fn baseline_lookup_rates(text: &str) -> Vec<(String, u64, f64)> {
    text.lines()
        .filter_map(|line| {
            Some((
                row_field_str(line, "backend")?.to_string(),
                row_field_f64(line, "shards")? as u64,
                row_field_f64(line, "lookups_per_s")?,
            ))
        })
        .collect()
}

/// Compares current lookup throughput to the committed baseline; returns
/// the regressed rows as human-readable complaints.
fn regressions(baseline: &str, lookups: &[LookupRow]) -> Vec<String> {
    let mut out = Vec::new();
    for (backend, shards, base_rate) in baseline_lookup_rates(baseline) {
        let Some(current) = lookups
            .iter()
            .find(|r| r.backend == backend && r.shards as u64 == shards)
        else {
            continue;
        };
        if current.lookups_per_s < 0.8 * base_rate {
            out.push(format!(
                "{backend}/{shards} shards: {:.0} lookups/s vs baseline {:.0} ({}% of baseline)",
                current.lookups_per_s,
                base_rate,
                (100.0 * current.lookups_per_s / base_rate) as u64,
            ));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // Read the baseline up front: this run overwrites BENCH_shard.json.
    let baseline = baseline_path
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    let cfg = workload();
    println!(
        "E9: sharded query & intake — {} Zipf(s={}) tenants, {} blocks x {} entries,\n\
         indexed-lookup throughput (locate_many over {} shuffled probes) and\n\
         recovery index rebuild at {:?} shards per backend.",
        cfg.authors, cfg.zipf_s, cfg.blocks, cfg.entries_per_block, LOOKUP_BATCH, SHARD_COUNTS
    );

    let mut lookups: Vec<LookupRow> = Vec::new();
    let mut rebuilds: Vec<RebuildRow> = Vec::new();

    let (mem, report) = run_multi_tenant_in::<seldel_chain::MemStore>(&cfg);
    println!(
        "workload: {} sealed blocks, {} live records, hottest tenant wrote {}/{} entries",
        report.sealed_blocks,
        report.live_records,
        report.hottest_author_entries,
        report.total_entries
    );
    measure_backend("MemStore", &mem, &mut lookups, &mut rebuilds);
    drop(mem);

    let (seg, _) = run_multi_tenant_in::<seldel_chain::SegStore>(&cfg);
    measure_backend("SegStore", &seg, &mut lookups, &mut rebuilds);
    drop(seg);

    let scratch = seldel_chain::testutil::ScratchDir::new("exp-shard");
    let file_store = FileStore::open(scratch.path()).expect("scratch store opens");
    let ledger = SelectiveLedger::builder(tenant_chain_config(&cfg))
        .shards(cfg.shards)
        .store_backend::<FileStore>()
        .open_store(file_store)
        .expect("fresh store");
    let (file, _) = drive_multi_tenant(ledger, &cfg);
    measure_backend("FileStore", &file, &mut lookups, &mut rebuilds);
    drop(file);

    let mut table = TextTable::new(["backend", "shards", "lookup", "throughput", "vs 1 shard"]);
    for r in &lookups {
        table.row([
            r.backend.to_string(),
            r.shards.to_string(),
            format!("{:.0} ns", r.lookup_ns),
            format!("{:.2} M/s", r.lookups_per_s / 1e6),
            format!("{:.2}x", r.speedup_vs_one),
        ]);
    }
    println!("{}", table.render());

    let mut table = TextTable::new(["backend", "shards", "rebuild", "vs 1 shard"]);
    for r in &rebuilds {
        table.row([
            r.backend.to_string(),
            r.shards.to_string(),
            format!("{:.2} ms", r.rebuild_ms),
            format!("{:.2}x", r.speedup_vs_one),
        ]);
    }
    println!("{}", table.render());

    std::fs::write("BENCH_shard.json", to_json(&lookups, &rebuilds))
        .expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");

    if let Some(baseline) = baseline {
        let complaints = regressions(&baseline, &lookups);
        if complaints.is_empty() {
            println!("baseline check: indexed-lookup throughput within 20% of the committed run");
        } else {
            for c in &complaints {
                // The GitHub annotation format; harmless noise elsewhere.
                println!("::warning title=exp_shard lookup regression::{c}");
            }
            eprintln!(
                "indexed-lookup throughput regressed >20% vs the committed baseline on {} row(s)",
                complaints.len()
            );
            std::process::exit(1);
        }
    }
}

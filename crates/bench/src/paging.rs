//! Experiment E11 — paged storage (`BENCH_paging.json`).
//!
//! The paged `FileStore` promises a live chain several times larger than
//! resident memory with **flat** locate latency: cold reads are served
//! straight from the segment files through the offset table, hot reads
//! from the bounded LRU cache, and only the cache plus the offset table
//! stay resident. This module measures exactly that promise: for chain
//! sizes at 1×, 2× and 4× the hot-cache budget it times indexed `locate`
//! under a uniform (cache-hostile) probe pattern, repeated hot-id
//! lookups, and batched `locate_many`, and records the resident
//! live-block bytes next to the on-disk chain bytes.
//!
//! The sweep probe is a **cyclic scan** over every live id — the
//! canonical LRU-adversarial pattern: within budget it converges to all
//! hits, past budget it is all misses (each id is evicted before its next
//! probe), independent of *how far* past budget the chain is. That makes
//! the interesting comparisons:
//!
//! * **1× vs beyond-budget** — the gap is the price of a page-in (one
//!   `open`+`seek`+`read`+decode);
//! * **2× vs 4×** — both all-miss, so the latency must be flat: locate
//!   cost depends on the frame, not the chain length. This is the gate
//!   `exp_paging` enforces;
//! * **resident vs chain bytes** — resident bytes must track the cache
//!   budget while the chain bytes quadruple.

use std::time::Instant;

use seldel_chain::testutil::ScratchDir;
use seldel_chain::{
    Block, BlockBody, BlockNumber, BlockStore, Blockchain, EntryId, EntryNumber, FileStore, Seal,
    Timestamp,
};

use seldel_telemetry::TelemetrySnapshot;

use crate::report::{
    collect_telemetry, render_json_report, telemetry_sections, JsonField, JsonRow,
};
use crate::{workload_entry, workload_key};

/// One measured chain size.
#[derive(Debug, Clone)]
pub struct PagingSample {
    /// Live blocks in the chain (genesis included).
    pub live_blocks: u64,
    /// Hot-cache budget the store ran with, in blocks.
    pub cache_blocks: usize,
    /// Total canonical bytes of the live chain (the on-disk side).
    pub chain_bytes: u64,
    /// Live-block bytes resident in memory after the probe workload
    /// (hot-cache contents; the offset table is excluded by design).
    pub resident_bytes: u64,
    /// Indexed `locate` under a cyclic scan over every live id —
    /// LRU-adversarial: all misses once the chain exceeds the budget.
    pub locate_uniform_ns: f64,
    /// Indexed `locate` of one repeatedly probed id — the hot path.
    pub locate_hot_ns: f64,
    /// Batched `locate_many` over the same cyclic probes, per id.
    pub locate_many_ns_per_id: f64,
    /// Hot-cache hits accumulated by the probe workload.
    pub cache_hits: u64,
    /// Hot-cache misses accumulated by the probe workload.
    pub cache_misses: u64,
}

impl PagingSample {
    /// How many times larger the on-disk chain is than resident memory.
    pub fn paging_factor(&self) -> f64 {
        if self.resident_bytes == 0 {
            return f64::INFINITY;
        }
        self.chain_bytes as f64 / self.resident_bytes as f64
    }
}

/// Times `op` over `iters` runs and returns nanoseconds per run.
fn time_ns<T>(iters: u32, mut op: impl FnMut() -> T) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Builds a disk-rooted chain of `blocks` single-entry payload blocks on a
/// paged store capped at `cache_blocks` hot blocks, then measures the
/// locate paths and the resident footprint.
pub fn measure_paged(cache_blocks: usize, blocks: u64, payload_bytes: usize) -> PagingSample {
    let scratch = ScratchDir::new("bench-paging");
    let store = FileStore::open_with_capacity(scratch.path(), 64)
        .expect("scratch store opens")
        .with_hot_cache_capacity(cache_blocks);
    let key = workload_key();
    let mut chain: Blockchain<FileStore> =
        Blockchain::with_genesis_in(store, Block::genesis("paging", Timestamp(0)));
    for b in 1..=blocks {
        let prev = chain.tip_hash();
        chain
            .push(Block::new(
                BlockNumber(b),
                Timestamp(b * 10),
                prev,
                BlockBody::Normal {
                    entries: vec![workload_entry(&key, b, payload_bytes)],
                },
                Seal::Deterministic,
            ))
            .expect("workload blocks link");
    }

    let ids: Vec<EntryId> = (1..=blocks)
        .map(|b| EntryId::new(BlockNumber(b), EntryNumber(0)))
        .collect();

    // Warm the cache to steady state (fills it within budget; past budget
    // the pattern is all-miss anyway, warm or cold).
    for id in &ids {
        std::hint::black_box(chain.locate(*id));
    }
    // The cyclic sweep: oldest to newest, over and over.
    let mut cursor = 0usize;
    let locate_uniform_ns = time_ns(2_048, || {
        let id = ids[cursor];
        cursor = (cursor + 1) % ids.len();
        chain.locate(std::hint::black_box(id))
    });
    // Hot probe: the same id over and over — must be cache-served.
    let hot = ids[ids.len() / 2];
    let locate_hot_ns = time_ns(10_000, || chain.locate(std::hint::black_box(hot)));
    // Batched lookups over the same cyclic order.
    let batch: Vec<EntryId> = ids.iter().cycle().take(256).copied().collect();
    let locate_many_ns_per_id =
        time_ns(8, || chain.locate_many(std::hint::black_box(&batch))) / batch.len() as f64;

    let store = chain.store();
    PagingSample {
        live_blocks: chain.len(),
        cache_blocks,
        chain_bytes: chain.total_byte_size(),
        resident_bytes: store.resident_bytes(),
        locate_uniform_ns,
        locate_hot_ns,
        locate_many_ns_per_id,
        cache_hits: store.hot_cache_hits(),
        cache_misses: store.hot_cache_misses(),
    }
}

/// Renders the samples as the `BENCH_paging.json` document, with
/// `telemetry` appended as the `telemetry_*` sections.
pub fn to_paging_json(samples: &[PagingSample], telemetry: &TelemetrySnapshot) -> String {
    let rows: Vec<JsonRow> = samples
        .iter()
        .map(|s| {
            JsonRow::new()
                .field("live_blocks", s.live_blocks)
                .field("cache_blocks", s.cache_blocks)
                .field("chain_bytes", s.chain_bytes)
                .field("resident_bytes", s.resident_bytes)
                .field("locate_uniform_ns", JsonField::f1(s.locate_uniform_ns))
                .field("locate_hot_ns", JsonField::f1(s.locate_hot_ns))
                .field(
                    "locate_many_ns_per_id",
                    JsonField::f1(s.locate_many_ns_per_id),
                )
                .field("cache_hits", s.cache_hits)
                .field("cache_misses", s.cache_misses)
        })
        .collect();
    let mut sections = vec![("samples", rows)];
    sections.extend(telemetry_sections(telemetry));
    render_json_report("paging", &[("unit", JsonField::from("ns"))], &sections)
}

/// Measures chains at 1×, 2× and 4× the cache budget and writes
/// `BENCH_paging.json`. Returns the samples for printing and gating.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_paging_report(
    path: &str,
    cache_blocks: usize,
    payload_bytes: usize,
) -> std::io::Result<Vec<PagingSample>> {
    let budget = cache_blocks as u64;
    let samples: Vec<PagingSample> = [budget, 2 * budget, 4 * budget]
        .iter()
        .map(|&blocks| measure_paged(cache_blocks, blocks, payload_bytes))
        .collect();
    // Untimed collection pass at the 2× (all-miss) size: the committed
    // report shows the cache hit/miss/evict traffic and fsync quantiles
    // behind the timings above, which ran with telemetry at default-off.
    let telemetry = collect_telemetry(|| {
        measure_paged(cache_blocks, 2 * budget, payload_bytes);
    });
    std::fs::write(path, to_paging_json(&samples, &telemetry))?;
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paged_measurement_pages_instead_of_residing() {
        // Tiny but real: 8-block cache, 32-block chain — the sample must
        // show a chain several times its resident footprint and working
        // locate paths on the miss-dominated pattern.
        let sample = measure_paged(8, 32, 64);
        assert_eq!(sample.live_blocks, 33);
        assert!(sample.resident_bytes > 0, "cache holds something");
        assert!(
            sample.paging_factor() >= 3.0,
            "chain must dwarf resident memory, factor {:.1}",
            sample.paging_factor()
        );
        assert!(sample.cache_misses > 0, "cyclic probes must miss");
        assert!(sample.cache_hits > 0, "hot probes must hit");
        assert!(sample.locate_uniform_ns > 0.0 && sample.locate_many_ns_per_id > 0.0);
    }

    #[test]
    fn paging_json_round_trips_through_the_row_extractors() {
        use crate::report::{row_field_f64, row_field_str};
        let sample = PagingSample {
            live_blocks: 257,
            cache_blocks: 64,
            chain_bytes: 100_000,
            resident_bytes: 25_000,
            locate_uniform_ns: 900.0,
            locate_hot_ns: 80.0,
            locate_many_ns_per_id: 450.0,
            cache_hits: 10,
            cache_misses: 2_000,
        };
        assert!((sample.paging_factor() - 4.0).abs() < 1e-9);
        let reg = seldel_telemetry::Registry::new();
        reg.counter("fstore.cache.evict").add(12);
        let json = to_paging_json(&[sample], &reg.snapshot());
        assert!(json.starts_with("{\n  \"benchmark\": \"paging\",\n"));
        assert!(json.contains("\"fstore.cache.evict\", \"value\": 12"));
        let row = json
            .lines()
            .find(|l| l.contains("\"live_blocks\""))
            .expect("sample row");
        assert_eq!(row_field_f64(row, "locate_uniform_ns"), Some(900.0));
        assert_eq!(row_field_f64(row, "resident_bytes"), Some(25_000.0));
        assert_eq!(row_field_str(row, "missing"), None);
    }
}

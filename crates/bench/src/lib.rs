//! Shared fixtures for the benchmark suite and the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a regenerator in
//! this crate: criterion benches (`benches/`) measure the mechanisms,
//! `src/bin/exp_*.rs` print the experiment tables, and `src/bin/figures.rs`
//! replays the console outputs of Figs. 6–8. See EXPERIMENTS.md at the
//! workspace root for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use seldel_chain::{BlockStore, Entry, MemStore, Timestamp};
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, RetentionPolicy, RetireMode, SelectiveLedger};
use seldel_crypto::SigningKey;

pub mod paging;
pub mod report;

/// Deterministic workload key shared by fixtures.
pub fn workload_key() -> SigningKey {
    SigningKey::from_seed([0xBE; 32])
}

/// A signed log entry with `payload_bytes` of filler.
pub fn workload_entry(key: &SigningKey, n: u64, payload_bytes: usize) -> Entry {
    Entry::sign_data(
        key,
        DataRecord::new("log")
            .with("n", n)
            .with("payload", "x".repeat(payload_bytes).as_str()),
    )
}

/// A ledger configuration with sequence length `l` and limit `l_max`
/// (minimum-needed retirement, no anchoring).
pub fn bench_config(l: u64, l_max: u64) -> ChainConfig {
    ChainConfig {
        sequence_length: l,
        retention: RetentionPolicy {
            max_live_blocks: Some(l_max),
            min_live_blocks: l,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        ..Default::default()
    }
}

/// Builds a ledger and drives `blocks` payload blocks of `entries_per_block`
/// entries each through it.
pub fn build_ledger(
    l: u64,
    l_max: u64,
    blocks: u64,
    entries_per_block: usize,
    payload_bytes: usize,
) -> SelectiveLedger {
    build_ledger_in::<MemStore>(l, l_max, blocks, entries_per_block, payload_bytes)
}

/// [`build_ledger`] on an explicit storage backend.
pub fn build_ledger_in<S: BlockStore>(
    l: u64,
    l_max: u64,
    blocks: u64,
    entries_per_block: usize,
    payload_bytes: usize,
) -> SelectiveLedger<S> {
    let ledger = SelectiveLedger::builder(bench_config(l, l_max))
        .store_backend::<S>()
        .build();
    drive_ledger(ledger, blocks, entries_per_block, payload_bytes)
}

/// [`build_ledger`] over a caller-provided store instance — the way to
/// bench a **rooted** durable backend (e.g. a `FileStore` opened on a
/// scratch directory) instead of its in-memory default.
pub fn build_ledger_with_store<S: BlockStore>(
    store: S,
    l: u64,
    l_max: u64,
    blocks: u64,
    entries_per_block: usize,
    payload_bytes: usize,
) -> SelectiveLedger<S> {
    let ledger = SelectiveLedger::builder(bench_config(l, l_max))
        .store_backend::<S>()
        .open_store(store)
        .expect("bench stores open on fresh directories");
    drive_ledger(ledger, blocks, entries_per_block, payload_bytes)
}

fn drive_ledger<S: BlockStore>(
    mut ledger: SelectiveLedger<S>,
    blocks: u64,
    entries_per_block: usize,
    payload_bytes: usize,
) -> SelectiveLedger<S> {
    let key = workload_key();
    let mut counter = 0u64;
    for b in 1..=blocks {
        for _ in 0..entries_per_block {
            counter += 1;
            ledger
                .submit_entry(workload_entry(&key, counter, payload_bytes))
                .expect("workload entries are valid");
        }
        ledger.seal_block(Timestamp(b * 10)).expect("monotone time");
    }
    ledger
}

/// Like [`build_ledger`] but every entry expires `ttl_ms` of virtual time
/// after submission — the logging-with-retention workload the paper's §II
/// use case describes. Pass `bounded: false` for the unbounded comparator
/// (expired entries are never cleaned because no merges happen).
pub fn build_ttl_ledger(
    l: u64,
    l_max: u64,
    blocks: u64,
    entries_per_block: usize,
    ttl_ms: u64,
    bounded: bool,
) -> SelectiveLedger {
    let key = workload_key();
    let config = if bounded {
        bench_config(l, l_max)
    } else {
        ChainConfig {
            sequence_length: l,
            retention: RetentionPolicy::keep_forever(),
            ..Default::default()
        }
    };
    let mut ledger = SelectiveLedger::new(config);
    let mut counter = 0u64;
    for b in 1..=blocks {
        let ts = Timestamp(b * 10);
        for _ in 0..entries_per_block {
            counter += 1;
            let entry = Entry::sign_data_with(
                &key,
                DataRecord::new("log").with("n", counter),
                Some(seldel_chain::Expiry::AtTimestamp(Timestamp(
                    ts.millis() + ttl_ms,
                ))),
                vec![],
            );
            ledger
                .submit_entry(entry)
                .expect("workload entries are valid");
        }
        ledger.seal_block(ts).expect("monotone time");
    }
    ledger
}

/// An unbounded ledger (baseline-like retention) for validation benches.
pub fn build_unbounded_ledger(blocks: u64, entries_per_block: usize) -> SelectiveLedger {
    let key = workload_key();
    let mut ledger = SelectiveLedger::new(ChainConfig {
        sequence_length: 10,
        retention: RetentionPolicy::keep_forever(),
        ..Default::default()
    });
    let mut counter = 0u64;
    for b in 1..=blocks {
        for _ in 0..entries_per_block {
            counter += 1;
            ledger
                .submit_entry(workload_entry(&key, counter, 32))
                .expect("workload entries are valid");
        }
        ledger.seal_block(Timestamp(b * 10)).expect("monotone time");
    }
    ledger
}

/// Builds a chain **manually** under `config`, filling summary slots via
/// [`seldel_core::build_summary_block`] with an empty deletion registry,
/// and stops with the tip at `tip` — callers pick a `tip` such that
/// `tip + 1` is a summary slot to drive the next Σ themselves (the ledger
/// API fills slots eagerly, so this is the only way to observe slot
/// construction from outside).
pub fn manual_chain(
    config: ChainConfig,
    tip: u64,
    entries_per_block: usize,
) -> (seldel_chain::Blockchain, ChainConfig) {
    use seldel_chain::{Block, BlockBody, Seal};

    let key = workload_key();
    let registry = seldel_core::DeletionRegistry::new();
    let mut chain =
        seldel_chain::Blockchain::new(Block::genesis(config.chain_note.clone(), Timestamp(0)));
    while chain.tip().number().value() < tip {
        let next = chain.tip().number().next();
        if config.is_summary_slot(next) {
            let (block, outcome) =
                seldel_core::build_summary_block(&chain, &config, &registry, next);
            chain.push(block).expect("summary links");
            if let Some(plan) = outcome.plan {
                chain
                    .truncate_front(plan.new_marker())
                    .expect("plan is live");
            }
        } else {
            let prev = chain.tip().hash();
            let entries = (0..entries_per_block)
                .map(|i| workload_entry(&key, next.value() * 1000 + i as u64, 32))
                .collect();
            chain
                .push(Block::new(
                    next,
                    Timestamp(next.value() * 10),
                    prev,
                    BlockBody::Normal { entries },
                    Seal::Deterministic,
                ))
                .expect("normal blocks link");
        }
    }
    (chain, config)
}

/// [`manual_chain`] with the paper's evaluation configuration and one
/// entry per block.
pub fn manual_paper_chain(tip: u64) -> (seldel_chain::Blockchain, ChainConfig) {
    manual_chain(ChainConfig::paper_evaluation(), tip, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let bounded = build_ledger(5, 20, 60, 2, 16);
        assert!(bounded.stats().live_blocks <= 25);
        assert_eq!(bounded.stats().live_records, 120);
        let unbounded = build_unbounded_ledger(30, 1);
        assert!(unbounded.stats().live_blocks > 30);
    }

    #[test]
    fn manual_chain_stops_before_slot() {
        let (chain, config) = manual_paper_chain(7);
        assert_eq!(chain.tip().number().value(), 7);
        assert!(config.is_summary_slot(chain.tip().number().next()));
    }
}

//! Machine-readable chain-operation timings (`BENCH_chain_ops.json`).
//!
//! The experiment binaries historically printed human tables only, which
//! left the repository's performance trajectory unrecorded. This module
//! measures the hot read paths the storage refactor targets — point
//! lookups (indexed vs full scan), `live_records` materialisation, chain
//! validation — on 1k- and 10k-live-block chains, plus two series the
//! ROADMAP asked for: **seal throughput** (blocks/s through the full
//! submit→seal→Σ pipeline) and **per-backend timings** comparing
//! `MemStore`, `SegStore` and a disk-rooted `FileStore` on the same
//! workload. Everything is serialised as JSON so CI can archive the
//! trajectory run over run.
//!
//! The JSON writer is hand-rolled: the workspace is dependency-free by
//! design (no serde), and every report is a flat list of numbers. The
//! [`render_json_report`] builder below is shared by every `BENCH_*.json`
//! producer (`exp_growth` via [`to_json`], `exp_recovery`, `exp_shard`) so
//! the documents stay uniform and the writer exists exactly once.

use std::fmt;
use std::time::Instant;

use seldel_chain::{
    validate_chain, validate_incremental, BlockStore, EntryId, FileStore, MemStore, SegStore,
    ValidationOptions,
};
use seldel_core::SelectiveLedger;
use seldel_telemetry::{Registry, TelemetrySnapshot};

use crate::{build_ledger, build_ledger_with_store};

/// One field value of a flat benchmark row.
#[derive(Debug, Clone)]
pub enum JsonField {
    /// A JSON string (escaped minimally; benchmark labels are plain).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float rendered with a fixed number of decimals.
    F64 {
        /// The value.
        value: f64,
        /// Decimals to render (`1` matches the historical reports).
        decimals: usize,
    },
}

impl JsonField {
    /// A float at one decimal — the house style for nanosecond timings.
    pub fn f1(value: f64) -> JsonField {
        JsonField::F64 { value, decimals: 1 }
    }

    /// A float rendered with no decimals (rates like blocks/s).
    pub fn f0(value: f64) -> JsonField {
        JsonField::F64 { value, decimals: 0 }
    }
}

impl From<u64> for JsonField {
    fn from(v: u64) -> JsonField {
        JsonField::U64(v)
    }
}

impl From<usize> for JsonField {
    fn from(v: usize) -> JsonField {
        JsonField::U64(v as u64)
    }
}

impl From<&str> for JsonField {
    fn from(v: &str) -> JsonField {
        JsonField::Str(v.to_string())
    }
}

impl fmt::Display for JsonField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonField::Str(s) => {
                debug_assert!(
                    !s.contains(['"', '\\']) && !s.chars().any(|c| c.is_control()),
                    "benchmark labels must not need JSON escaping"
                );
                write!(f, "\"{s}\"")
            }
            JsonField::U64(v) => write!(f, "{v}"),
            JsonField::F64 { value, decimals } => write!(f, "{value:.decimals$}"),
        }
    }
}

/// One flat row (rendered as a single-line JSON object).
#[derive(Debug, Clone, Default)]
pub struct JsonRow {
    fields: Vec<(&'static str, JsonField)>,
}

impl JsonRow {
    /// An empty row.
    pub fn new() -> JsonRow {
        JsonRow::default()
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, name: &'static str, value: impl Into<JsonField>) -> JsonRow {
        self.fields.push((name, value.into()));
        self
    }
}

impl fmt::Display for JsonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{name}\": {value}")?;
        }
        write!(f, "}}")
    }
}

/// Renders a `BENCH_*.json` document: a `benchmark` name, optional
/// top-level scalar fields, then one array section per `(name, rows)`
/// pair — the shape every report in this workspace shares.
pub fn render_json_report(
    benchmark: &str,
    top_fields: &[(&'static str, JsonField)],
    sections: &[(&'static str, Vec<JsonRow>)],
) -> String {
    // Members are joined (never suffixed) with commas, so the document
    // stays valid JSON for any combination of empty inputs.
    let mut members: Vec<String> = Vec::new();
    members.push(format!("  \"benchmark\": \"{benchmark}\""));
    for (name, value) in top_fields {
        members.push(format!("  \"{name}\": {value}"));
    }
    for (name, rows) in sections {
        if rows.is_empty() {
            members.push(format!("  \"{name}\": []"));
            continue;
        }
        let lines: Vec<String> = rows.iter().map(|row| format!("    {row}")).collect();
        members.push(format!("  \"{name}\": [\n{}\n  ]", lines.join(",\n")));
    }
    format!("{{\n{}\n}}\n", members.join(",\n"))
}

/// Extracts `"name": <number>` from a single-line row — the counterpart
/// of [`render_json_report`] used by regression checks reading a
/// previously committed report back (no full JSON parser needed for our
/// own line-per-row format).
pub fn row_field_f64(line: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts `"name": "<string>"` from a single-line row (see
/// [`row_field_f64`]).
pub fn row_field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\": \"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Timings for one chain size, in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct ChainOpsSample {
    /// Live blocks in the measured chain.
    pub live_blocks: u64,
    /// Live data sets.
    pub live_records: u64,
    /// Indexed `locate` of the oldest (summarised) record.
    pub locate_indexed_ns: f64,
    /// Full-scan `locate_scan` of the same record (the pre-index path).
    pub locate_scan_ns: f64,
    /// One `live_records()` materialisation.
    pub live_records_ns: f64,
    /// One structural validation pass (cached-hash linkage checks).
    pub validate_structural_ns: f64,
    /// One full validation pass (signatures + anchors).
    pub validate_full_ns: f64,
    /// One incremental audit (cached Merkle roots + linkage, no signature
    /// re-verification) — the steady-state restart/receive check.
    pub validate_incremental_ns: f64,
}

impl ChainOpsSample {
    /// Scan-vs-index speedup for point lookups.
    pub fn locate_speedup(&self) -> f64 {
        if self.locate_indexed_ns <= 0.0 {
            return f64::INFINITY;
        }
        self.locate_scan_ns / self.locate_indexed_ns
    }

    /// Full-vs-incremental validation speedup.
    pub fn incremental_speedup(&self) -> f64 {
        if self.validate_incremental_ns <= 0.0 {
            return f64::INFINITY;
        }
        self.validate_full_ns / self.validate_incremental_ns
    }
}

/// Per-backend timings on an identically sized, identically built chain.
#[derive(Debug, Clone)]
pub struct BackendSample {
    /// Backend name (`MemStore` / `SegStore` / `FileStore` /
    /// `FileStore+pipelined`).
    pub backend: &'static str,
    /// Live blocks in the measured chain.
    pub live_blocks: u64,
    /// Nanoseconds per sealed block through the full submit→seal→Σ
    /// pipeline (entry intake, linkage checks, automatic summaries,
    /// retention pruning — and, for `FileStore`, the disk writes).
    pub seal_ns: f64,
    /// Indexed `locate` of the oldest (summarised) record.
    pub locate_indexed_ns: f64,
    /// Full-scan `locate_scan` of the same record.
    pub locate_scan_ns: f64,
    /// One structural validation pass.
    pub validate_structural_ns: f64,
    /// Peak resident live-block bytes after the build + read workload —
    /// full chain bytes for the in-memory backends, hot-cache bytes for
    /// the paged `FileStore` (see `BlockStore::resident_bytes`).
    pub resident_bytes: u64,
}

impl BackendSample {
    /// Seal throughput in blocks per second.
    pub fn seal_blocks_per_s(&self) -> f64 {
        if self.seal_ns <= 0.0 {
            return f64::INFINITY;
        }
        1e9 / self.seal_ns
    }
}

/// Times `op` over `iters` runs and returns nanoseconds per run.
fn time_ns<T>(iters: u32, mut op: impl FnMut() -> T) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Measures chain operations on a freshly built ledger with roughly
/// `live_blocks` live blocks (l = 10, one entry per payload block).
pub fn measure_chain_ops(live_blocks: u64) -> ChainOpsSample {
    // Drive enough payload blocks past l_max that merges happened and the
    // oldest records live in summary blocks near the marker — the worst
    // case for the historical newest-first scan. The +3l overshoot
    // guarantees summary slots beyond the l_max threshold actually fire.
    let ledger: SelectiveLedger = build_ledger(10, live_blocks, live_blocks + 30, 1, 16);
    let chain = ledger.chain();
    // The record with the lowest origin id: its original block was pruned
    // by the first merge, so it lives in a summary block near the marker.
    let oldest = chain
        .live_records()
        .iter()
        .map(|(id, _)| *id)
        .min()
        .expect("workload leaves records");
    assert!(
        chain.locate(oldest).is_some_and(|l| l.is_in_summary()),
        "oldest record must be summarised for a meaningful comparison"
    );

    let locate_indexed_ns = time_ns(10_000, || chain.locate(std::hint::black_box(oldest)));
    let locate_scan_ns = time_ns(50, || chain.locate_scan(std::hint::black_box(oldest)));
    let live_records_ns = time_ns(10, || chain.live_records().len());
    let validate_structural_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::structural()).expect("chain is valid")
    });
    // Averaged over a few passes: a single cold run is too noisy for the
    // cross-PR regression tracking this report feeds.
    let validate_full_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::default()).expect("chain is valid")
    });
    let validate_incremental_ns =
        time_ns(20, || validate_incremental(chain).expect("chain is valid"));

    ChainOpsSample {
        live_blocks: chain.len(),
        live_records: chain.record_count(),
        locate_indexed_ns,
        locate_scan_ns,
        live_records_ns,
        validate_structural_ns,
        validate_full_ns,
        validate_incremental_ns,
    }
}

/// Measures seal throughput and the hot read paths on one backend.
///
/// The ledger is driven through `live_blocks + 3l` payload blocks (same
/// shape as [`measure_chain_ops`]); sealing is timed over the whole build
/// so the number covers merges, Σ derivation and retention pruning — the
/// operations a durable backend pays disk I/O for.
pub fn measure_backend_ops<S: BlockStore>(
    backend: &'static str,
    store: S,
    live_blocks: u64,
) -> BackendSample {
    let blocks = live_blocks + 30;
    let start = Instant::now();
    let mut ledger = build_ledger_with_store(store, 10, live_blocks, blocks, 1, 16);
    // Land every deferred fsync inside the timed region so a pipelined
    // backend is charged for its whole durability bill, not just the
    // overlapped part (no-op on in-memory backends).
    ledger.commit_durable();
    let seal_ns = start.elapsed().as_nanos() as f64 / blocks as f64;

    let chain = ledger.chain();
    let oldest = chain
        .live_records()
        .iter()
        .map(|(id, _)| *id)
        .min()
        .expect("workload leaves records");
    let locate_indexed_ns = time_ns(10_000, || chain.locate(std::hint::black_box(oldest)));
    let locate_scan_ns = time_ns(50, || chain.locate_scan(std::hint::black_box(oldest)));
    let validate_structural_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::structural()).expect("chain is valid")
    });
    BackendSample {
        backend,
        live_blocks: chain.len(),
        seal_ns,
        locate_indexed_ns,
        locate_scan_ns,
        validate_structural_ns,
        resident_bytes: chain.store().resident_bytes(),
    }
}

/// Measures the shipped backends on `live_blocks`-sized chains: the three
/// synchronous ones plus the `FileStore` in pipelined-commit mode (fill
/// fsyncs overlapped with sealing by the background commit stage; the
/// timed region still ends on a full durability barrier). Both durable
/// rows run rooted in scratch directories (real disk writes), removed
/// afterwards.
pub fn measure_backends(live_blocks: u64) -> Vec<BackendSample> {
    vec![
        measure_backend_ops("MemStore", MemStore::default(), live_blocks),
        measure_backend_ops("SegStore", SegStore::default(), live_blocks),
        best_durable_sample("FileStore", live_blocks, |dir| {
            FileStore::open(dir).expect("scratch store opens")
        }),
        best_durable_sample("FileStore+pipelined", live_blocks, |dir| {
            FileStore::open(dir)
                .expect("scratch store opens")
                .with_pipelined_commits()
        }),
    ]
}

/// Disk-rooted seal timings jitter ±10% run to run on shared hosts, which
/// would make the run-internal pipelined-vs-plain gate flaky. Each durable
/// row therefore takes the best of three passes — the work is
/// deterministic, so the minimum wall time is the least-interfered
/// measurement — against a fresh scratch directory per pass.
fn best_durable_sample(
    backend: &'static str,
    live_blocks: u64,
    make: impl Fn(&std::path::Path) -> FileStore,
) -> BackendSample {
    (0..3)
        .map(|pass| {
            let scratch =
                seldel_chain::testutil::ScratchDir::new(&format!("bench-{backend}-{pass}"));
            measure_backend_ops(backend, make(scratch.path()), live_blocks)
        })
        .min_by(|a, b| a.seal_ns.total_cmp(&b.seal_ns))
        .expect("three passes ran")
}

/// Runs `workload` with telemetry recording into a clean global registry
/// and returns the frozen snapshot.
///
/// This is the **untimed collection pass** the report writers use: the
/// timed measurements above run with telemetry at its default-off state
/// (so the gates never pay for instrumentation), then the same workload
/// shape is repeated once under recording so the committed `BENCH_*.json`
/// carries the internals — fsync quantiles, group-commit batch sizes,
/// cache hit/miss traffic. The global enable switch is restored on the
/// way out, and the whole pass holds the telemetry test lock so parallel
/// test binaries cannot interleave their registries.
pub fn collect_telemetry(workload: impl FnOnce()) -> TelemetrySnapshot {
    let _serial = seldel_telemetry::testing::serial();
    let was_enabled = seldel_telemetry::enabled();
    seldel_telemetry::set_enabled(true);
    Registry::global().reset();
    workload();
    let snap = Registry::global().snapshot();
    seldel_telemetry::set_enabled(was_enabled);
    snap
}

/// The three `telemetry_*` sections every `BENCH_*.json` document embeds:
/// name/value rows for counters and gauges, name/count/sum/max/p50/p95/p99
/// rows for histograms (nanoseconds for `.ns` span histograms).
pub fn telemetry_sections(snap: &TelemetrySnapshot) -> Vec<(&'static str, Vec<JsonRow>)> {
    let counters: Vec<JsonRow> = snap
        .counters
        .iter()
        .map(|c| {
            JsonRow::new()
                .field("name", c.name.as_str())
                .field("value", c.value)
        })
        .collect();
    let gauges: Vec<JsonRow> = snap
        .gauges
        .iter()
        .map(|g| {
            JsonRow::new()
                .field("name", g.name.as_str())
                .field("value", g.value)
        })
        .collect();
    let histograms: Vec<JsonRow> = snap
        .histograms
        .iter()
        .map(|h| {
            JsonRow::new()
                .field("name", h.name.as_str())
                .field("count", h.count)
                .field("sum", h.sum)
                .field("max", h.max)
                .field("p50", h.p50)
                .field("p95", h.p95)
                .field("p99", h.p99)
        })
        .collect();
    vec![
        ("telemetry_counters", counters),
        ("telemetry_gauges", gauges),
        ("telemetry_histograms", histograms),
    ]
}

/// Verifies the indexed and scan paths agree on a sample of ids (sanity
/// guard so the speedup numbers compare equal work).
pub fn check_lookup_agreement(ledger: &SelectiveLedger, ids: &[EntryId]) -> bool {
    let chain = ledger.chain();
    ids.iter()
        .all(|id| chain.locate(*id) == chain.locate_scan(*id))
}

/// Renders the samples as the `BENCH_chain_ops.json` document (through
/// the shared [`render_json_report`] writer), with `telemetry` appended
/// as the `telemetry_*` sections.
pub fn to_json(
    samples: &[ChainOpsSample],
    backends: &[BackendSample],
    telemetry: &TelemetrySnapshot,
) -> String {
    let sample_rows: Vec<JsonRow> = samples
        .iter()
        .map(|s| {
            JsonRow::new()
                .field("live_blocks", s.live_blocks)
                .field("live_records", s.live_records)
                .field("locate_indexed_ns", JsonField::f1(s.locate_indexed_ns))
                .field("locate_scan_ns", JsonField::f1(s.locate_scan_ns))
                .field("locate_speedup", JsonField::f1(s.locate_speedup()))
                .field("live_records_ns", JsonField::f1(s.live_records_ns))
                .field(
                    "validate_structural_ns",
                    JsonField::f1(s.validate_structural_ns),
                )
                .field("validate_full_ns", JsonField::f1(s.validate_full_ns))
                .field(
                    "validate_incremental_ns",
                    JsonField::f1(s.validate_incremental_ns),
                )
                .field(
                    "incremental_speedup",
                    JsonField::f1(s.incremental_speedup()),
                )
        })
        .collect();
    let backend_rows: Vec<JsonRow> = backends
        .iter()
        .map(|b| {
            JsonRow::new()
                .field("backend", b.backend)
                .field("live_blocks", b.live_blocks)
                .field("seal_ns", JsonField::f1(b.seal_ns))
                .field("seal_blocks_per_s", JsonField::f0(b.seal_blocks_per_s()))
                .field("locate_indexed_ns", JsonField::f1(b.locate_indexed_ns))
                .field("locate_scan_ns", JsonField::f1(b.locate_scan_ns))
                .field(
                    "validate_structural_ns",
                    JsonField::f1(b.validate_structural_ns),
                )
                .field("resident_bytes", b.resident_bytes)
        })
        .collect();
    let mut sections = vec![("samples", sample_rows), ("backends", backend_rows)];
    sections.extend(telemetry_sections(telemetry));
    render_json_report("chain_ops", &[("unit", JsonField::from("ns"))], &sections)
}

/// Measures the standard 1k/10k sizes plus the per-backend series and
/// writes `BENCH_chain_ops.json` into the current directory. Returns the
/// measurements for printing.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_chain_ops_report(
    path: &str,
) -> std::io::Result<(Vec<ChainOpsSample>, Vec<BackendSample>)> {
    let samples: Vec<ChainOpsSample> = [1_000u64, 10_000]
        .iter()
        .map(|&n| measure_chain_ops(n))
        .collect();
    let backends = measure_backends(1_000);
    // Untimed collection pass (see [`collect_telemetry`]): a disk-rooted
    // **pipelined** workload with a deliberately tight hot cache, so the
    // committed report shows fsync quantiles, group-commit batch sizes,
    // commit-queue depth and real cache hit/miss/evict traffic.
    let telemetry = collect_telemetry(|| {
        let scratch = seldel_chain::testutil::ScratchDir::new("bench-telemetry");
        let store = FileStore::open(scratch.path())
            .expect("scratch store opens")
            .with_hot_cache_capacity(32)
            .with_pipelined_commits();
        measure_backend_ops("FileStore+pipelined", store, 200);
    });
    std::fs::write(path, to_json(&samples, &backends, &telemetry))?;
    Ok((samples, backends))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let sample = ChainOpsSample {
            live_blocks: 100,
            live_records: 90,
            locate_indexed_ns: 50.0,
            locate_scan_ns: 5000.0,
            live_records_ns: 1000.0,
            validate_structural_ns: 2000.0,
            validate_full_ns: 9000.0,
            validate_incremental_ns: 450.0,
        };
        assert!((sample.locate_speedup() - 100.0).abs() < 1e-9);
        assert!((sample.incremental_speedup() - 20.0).abs() < 1e-9);
        let backend = BackendSample {
            backend: "MemStore",
            live_blocks: 100,
            seal_ns: 2_000_000.0,
            locate_indexed_ns: 50.0,
            locate_scan_ns: 5000.0,
            validate_structural_ns: 2000.0,
            resident_bytes: 123_456,
        };
        assert!((backend.seal_blocks_per_s() - 500.0).abs() < 1e-9);
        // A private registry stands in for a collection pass.
        let reg = Registry::new();
        reg.counter("fstore.cache.hit").add(7);
        reg.gauge("fstore.commit.queue_peak").set(3);
        reg.histogram("fstore.fsync.ns").record(125_000);
        let telemetry = reg.snapshot();
        let json = to_json(
            &[sample.clone(), sample],
            &[backend.clone(), backend],
            &telemetry,
        );
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"live_blocks\"").count(), 4);
        assert_eq!(json.matches("\"seal_blocks_per_s\"").count(), 2);
        // Exactly one separating comma inside each of the two rows arrays
        // (the three telemetry sections here hold one row each).
        assert_eq!(json.matches("},\n").count(), 2);
        assert!(json.contains("\"telemetry_counters\""));
        let row = json
            .lines()
            .find(|l| l.contains("fstore.fsync.ns"))
            .expect("histogram row");
        assert_eq!(row_field_str(row, "name"), Some("fstore.fsync.ns"));
        assert_eq!(row_field_f64(row, "count"), Some(1.0));
        assert_eq!(row_field_f64(row, "max"), Some(125_000.0));
    }

    #[test]
    fn collection_pass_captures_store_internals() {
        // A small disk-rooted workload under recording must surface the
        // instrumented internals: fsync spans, cache traffic, seal spans.
        let telemetry = collect_telemetry(|| {
            let scratch = seldel_chain::testutil::ScratchDir::new("bench-collect");
            let store = FileStore::open(scratch.path())
                .expect("scratch store opens")
                .with_hot_cache_capacity(8);
            measure_backend_ops("FileStore", store, 60);
        });
        assert!(!telemetry.is_empty());
        let fsync = telemetry
            .histogram("fstore.fsync.ns")
            .expect("fsync span recorded");
        assert!(fsync.count > 0 && fsync.max >= fsync.p50);
        assert!(telemetry.counter("fstore.cache.hit").unwrap_or(0) > 0);
        assert!(telemetry.counter("chain.locate").unwrap_or(0) > 0);
        assert!(telemetry.histogram("ledger.seal.ns").is_some());
    }

    #[test]
    fn shared_writer_round_trips_through_the_row_extractors() {
        let rows = vec![
            JsonRow::new()
                .field("backend", "MemStore")
                .field("shards", 4u64)
                .field("lookups_per_s", JsonField::f0(123_456.0)),
            JsonRow::new()
                .field("backend", "SegStore")
                .field("shards", 16u64)
                .field("lookups_per_s", JsonField::f0(99.0)),
        ];
        let json = render_json_report(
            "shard",
            &[("unit", JsonField::from("ns"))],
            &[("lookup", rows)],
        );
        assert!(json.starts_with("{\n  \"benchmark\": \"shard\",\n"));
        assert!(json.contains("\"unit\": \"ns\","));
        assert!(json.trim_end().ends_with('}'));
        // Line-per-row: the extractors read back what the writer wrote.
        let mut seen = Vec::new();
        for line in json.lines() {
            if let (Some(backend), Some(rate)) = (
                row_field_str(line, "backend"),
                row_field_f64(line, "lookups_per_s"),
            ) {
                seen.push((backend.to_string(), rate));
            }
        }
        assert_eq!(
            seen,
            vec![
                ("MemStore".to_string(), 123_456.0),
                ("SegStore".to_string(), 99.0)
            ]
        );
        assert_eq!(row_field_f64("{\"x\": 1.5}", "y"), None);
        assert_eq!(row_field_str("{\"x\": 1.5}", "x"), None);
    }

    #[test]
    fn shared_writer_stays_valid_json_on_empty_inputs() {
        // No sections: the last member must not trail a comma.
        let json = render_json_report("x", &[("unit", JsonField::from("ns"))], &[]);
        assert_eq!(json, "{\n  \"benchmark\": \"x\",\n  \"unit\": \"ns\"\n}\n");
        // No top fields, one empty section: an empty array, no comma.
        let json = render_json_report("x", &[], &[("rows", Vec::new())]);
        assert_eq!(json, "{\n  \"benchmark\": \"x\",\n  \"rows\": []\n}\n");
        assert!(
            !json.contains(",\n}"),
            "trailing comma before closing brace"
        );
    }

    #[test]
    fn backend_measurement_covers_every_backend_mode() {
        let backends = measure_backends(60);
        let names: Vec<&str> = backends.iter().map(|b| b.backend).collect();
        assert_eq!(
            names,
            ["MemStore", "SegStore", "FileStore", "FileStore+pipelined"]
        );
        for b in &backends {
            assert!(b.seal_ns > 0.0, "{}: no seal time", b.backend);
            assert!(b.live_blocks >= 55 && b.live_blocks <= 70, "{b:?}");
        }
    }

    #[test]
    fn small_measurement_runs_and_agrees() {
        let sample = measure_chain_ops(60);
        assert!(sample.live_blocks >= 55 && sample.live_blocks <= 70);
        assert!(sample.locate_indexed_ns > 0.0);
        let ledger: SelectiveLedger = build_ledger(10, 60, 90, 1, 16);
        let ids: Vec<EntryId> = ledger
            .chain()
            .live_records()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert!(check_lookup_agreement(&ledger, &ids));
    }
}

//! Machine-readable chain-operation timings (`BENCH_chain_ops.json`).
//!
//! The experiment binaries historically printed human tables only, which
//! left the repository's performance trajectory unrecorded. This module
//! measures the hot read paths the storage refactor targets — point
//! lookups (indexed vs full scan), `live_records` materialisation, chain
//! validation — on 1k- and 10k-live-block chains, plus two series the
//! ROADMAP asked for: **seal throughput** (blocks/s through the full
//! submit→seal→Σ pipeline) and **per-backend timings** comparing
//! `MemStore`, `SegStore` and a disk-rooted `FileStore` on the same
//! workload. Everything is serialised as JSON so CI can archive the
//! trajectory run over run.
//!
//! The JSON writer is hand-rolled: the workspace is dependency-free by
//! design (no serde), and the report is a flat list of numbers.

use std::time::Instant;

use seldel_chain::{
    validate_chain, BlockStore, EntryId, FileStore, MemStore, SegStore, ValidationOptions,
};
use seldel_core::SelectiveLedger;

use crate::{build_ledger, build_ledger_with_store};

/// Timings for one chain size, in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct ChainOpsSample {
    /// Live blocks in the measured chain.
    pub live_blocks: u64,
    /// Live data sets.
    pub live_records: u64,
    /// Indexed `locate` of the oldest (summarised) record.
    pub locate_indexed_ns: f64,
    /// Full-scan `locate_scan` of the same record (the pre-index path).
    pub locate_scan_ns: f64,
    /// One `live_records()` materialisation.
    pub live_records_ns: f64,
    /// One structural validation pass (cached-hash linkage checks).
    pub validate_structural_ns: f64,
    /// One full validation pass (signatures + anchors).
    pub validate_full_ns: f64,
}

impl ChainOpsSample {
    /// Scan-vs-index speedup for point lookups.
    pub fn locate_speedup(&self) -> f64 {
        if self.locate_indexed_ns <= 0.0 {
            return f64::INFINITY;
        }
        self.locate_scan_ns / self.locate_indexed_ns
    }
}

/// Per-backend timings on an identically sized, identically built chain.
#[derive(Debug, Clone)]
pub struct BackendSample {
    /// Backend name (`MemStore` / `SegStore` / `FileStore`).
    pub backend: &'static str,
    /// Live blocks in the measured chain.
    pub live_blocks: u64,
    /// Nanoseconds per sealed block through the full submit→seal→Σ
    /// pipeline (entry intake, linkage checks, automatic summaries,
    /// retention pruning — and, for `FileStore`, the disk writes).
    pub seal_ns: f64,
    /// Indexed `locate` of the oldest (summarised) record.
    pub locate_indexed_ns: f64,
    /// Full-scan `locate_scan` of the same record.
    pub locate_scan_ns: f64,
    /// One structural validation pass.
    pub validate_structural_ns: f64,
}

impl BackendSample {
    /// Seal throughput in blocks per second.
    pub fn seal_blocks_per_s(&self) -> f64 {
        if self.seal_ns <= 0.0 {
            return f64::INFINITY;
        }
        1e9 / self.seal_ns
    }
}

/// Times `op` over `iters` runs and returns nanoseconds per run.
fn time_ns<T>(iters: u32, mut op: impl FnMut() -> T) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Measures chain operations on a freshly built ledger with roughly
/// `live_blocks` live blocks (l = 10, one entry per payload block).
pub fn measure_chain_ops(live_blocks: u64) -> ChainOpsSample {
    // Drive enough payload blocks past l_max that merges happened and the
    // oldest records live in summary blocks near the marker — the worst
    // case for the historical newest-first scan. The +3l overshoot
    // guarantees summary slots beyond the l_max threshold actually fire.
    let ledger: SelectiveLedger = build_ledger(10, live_blocks, live_blocks + 30, 1, 16);
    let chain = ledger.chain();
    // The record with the lowest origin id: its original block was pruned
    // by the first merge, so it lives in a summary block near the marker.
    let oldest = chain
        .live_records()
        .iter()
        .map(|(id, _)| *id)
        .min()
        .expect("workload leaves records");
    assert!(
        matches!(
            chain.locate(oldest),
            Some(seldel_chain::Located::InSummary { .. })
        ),
        "oldest record must be summarised for a meaningful comparison"
    );

    let locate_indexed_ns = time_ns(10_000, || chain.locate(std::hint::black_box(oldest)));
    let locate_scan_ns = time_ns(50, || chain.locate_scan(std::hint::black_box(oldest)));
    let live_records_ns = time_ns(10, || chain.live_records().len());
    let validate_structural_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::structural()).expect("chain is valid")
    });
    // Averaged over a few passes: a single cold run is too noisy for the
    // cross-PR regression tracking this report feeds.
    let validate_full_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::default()).expect("chain is valid")
    });

    ChainOpsSample {
        live_blocks: chain.len(),
        live_records: chain.record_count(),
        locate_indexed_ns,
        locate_scan_ns,
        live_records_ns,
        validate_structural_ns,
        validate_full_ns,
    }
}

/// Measures seal throughput and the hot read paths on one backend.
///
/// The ledger is driven through `live_blocks + 3l` payload blocks (same
/// shape as [`measure_chain_ops`]); sealing is timed over the whole build
/// so the number covers merges, Σ derivation and retention pruning — the
/// operations a durable backend pays disk I/O for.
pub fn measure_backend_ops<S: BlockStore>(
    backend: &'static str,
    store: S,
    live_blocks: u64,
) -> BackendSample {
    let blocks = live_blocks + 30;
    let start = Instant::now();
    let ledger = build_ledger_with_store(store, 10, live_blocks, blocks, 1, 16);
    let seal_ns = start.elapsed().as_nanos() as f64 / blocks as f64;

    let chain = ledger.chain();
    let oldest = chain
        .live_records()
        .iter()
        .map(|(id, _)| *id)
        .min()
        .expect("workload leaves records");
    let locate_indexed_ns = time_ns(10_000, || chain.locate(std::hint::black_box(oldest)));
    let locate_scan_ns = time_ns(50, || chain.locate_scan(std::hint::black_box(oldest)));
    let validate_structural_ns = time_ns(3, || {
        validate_chain(chain, &ValidationOptions::structural()).expect("chain is valid")
    });
    BackendSample {
        backend,
        live_blocks: chain.len(),
        seal_ns,
        locate_indexed_ns,
        locate_scan_ns,
        validate_structural_ns,
    }
}

/// Measures all three shipped backends on `live_blocks`-sized chains. The
/// `FileStore` runs rooted in a scratch directory (real disk writes),
/// which is removed afterwards.
pub fn measure_backends(live_blocks: u64) -> Vec<BackendSample> {
    let scratch = seldel_chain::testutil::ScratchDir::new("bench-fstore");
    let file_store = FileStore::open(scratch.path()).expect("scratch store opens");
    vec![
        measure_backend_ops("MemStore", MemStore::default(), live_blocks),
        measure_backend_ops("SegStore", SegStore::default(), live_blocks),
        measure_backend_ops("FileStore", file_store, live_blocks),
    ]
}

/// Verifies the indexed and scan paths agree on a sample of ids (sanity
/// guard so the speedup numbers compare equal work).
pub fn check_lookup_agreement(ledger: &SelectiveLedger, ids: &[EntryId]) -> bool {
    let chain = ledger.chain();
    ids.iter()
        .all(|id| chain.locate(*id) == chain.locate_scan(*id))
}

/// Renders the samples as the `BENCH_chain_ops.json` document.
pub fn to_json(samples: &[ChainOpsSample], backends: &[BackendSample]) -> String {
    let mut out =
        String::from("{\n  \"benchmark\": \"chain_ops\",\n  \"unit\": \"ns\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"live_blocks\": {}, \"live_records\": {}, \
             \"locate_indexed_ns\": {:.1}, \"locate_scan_ns\": {:.1}, \
             \"locate_speedup\": {:.1}, \"live_records_ns\": {:.1}, \
             \"validate_structural_ns\": {:.1}, \"validate_full_ns\": {:.1}}}{}\n",
            s.live_blocks,
            s.live_records,
            s.locate_indexed_ns,
            s.locate_scan_ns,
            s.locate_speedup(),
            s.live_records_ns,
            s.validate_structural_ns,
            s.validate_full_ns,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"backends\": [\n");
    for (i, b) in backends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"live_blocks\": {}, \
             \"seal_ns\": {:.1}, \"seal_blocks_per_s\": {:.0}, \
             \"locate_indexed_ns\": {:.1}, \"locate_scan_ns\": {:.1}, \
             \"validate_structural_ns\": {:.1}}}{}\n",
            b.backend,
            b.live_blocks,
            b.seal_ns,
            b.seal_blocks_per_s(),
            b.locate_indexed_ns,
            b.locate_scan_ns,
            b.validate_structural_ns,
            if i + 1 == backends.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measures the standard 1k/10k sizes plus the per-backend series and
/// writes `BENCH_chain_ops.json` into the current directory. Returns the
/// measurements for printing.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_chain_ops_report(
    path: &str,
) -> std::io::Result<(Vec<ChainOpsSample>, Vec<BackendSample>)> {
    let samples: Vec<ChainOpsSample> = [1_000u64, 10_000]
        .iter()
        .map(|&n| measure_chain_ops(n))
        .collect();
    let backends = measure_backends(1_000);
    std::fs::write(path, to_json(&samples, &backends))?;
    Ok((samples, backends))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let sample = ChainOpsSample {
            live_blocks: 100,
            live_records: 90,
            locate_indexed_ns: 50.0,
            locate_scan_ns: 5000.0,
            live_records_ns: 1000.0,
            validate_structural_ns: 2000.0,
            validate_full_ns: 9000.0,
        };
        assert!((sample.locate_speedup() - 100.0).abs() < 1e-9);
        let backend = BackendSample {
            backend: "MemStore",
            live_blocks: 100,
            seal_ns: 2_000_000.0,
            locate_indexed_ns: 50.0,
            locate_scan_ns: 5000.0,
            validate_structural_ns: 2000.0,
        };
        assert!((backend.seal_blocks_per_s() - 500.0).abs() < 1e-9);
        let json = to_json(&[sample.clone(), sample], &[backend.clone(), backend]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"live_blocks\"").count(), 4);
        assert_eq!(json.matches("\"seal_blocks_per_s\"").count(), 2);
        // Exactly one separating comma inside each of the two arrays.
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn backend_measurement_covers_all_three_backends() {
        let backends = measure_backends(60);
        let names: Vec<&str> = backends.iter().map(|b| b.backend).collect();
        assert_eq!(names, ["MemStore", "SegStore", "FileStore"]);
        for b in &backends {
            assert!(b.seal_ns > 0.0, "{}: no seal time", b.backend);
            assert!(b.live_blocks >= 55 && b.live_blocks <= 70, "{b:?}");
        }
    }

    #[test]
    fn small_measurement_runs_and_agrees() {
        let sample = measure_chain_ops(60);
        assert!(sample.live_blocks >= 55 && sample.live_blocks <= 70);
        assert!(sample.locate_indexed_ns > 0.0);
        let ledger: SelectiveLedger = build_ledger(10, 60, 90, 1, 16);
        let ids: Vec<EntryId> = ledger
            .chain()
            .live_records()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert!(check_lookup_agreement(&ledger, &ids));
    }
}

//! Client nodes: lightweight participants that submit entries and obtain
//! the chain status quo from several anchors.
//!
//! §V-B4: "the blockchain system has to have some anchor nodes, whereas
//! clients obtain the current status quo of the blockchain" — consulting
//! *several* anchors and taking the majority view is the standard defence
//! against node-isolation (eclipse) attacks, and is what
//! [`ClientNode::majority_status`] implements.

use std::any::Any;
use std::collections::BTreeMap;

use seldel_chain::EntryId;
use seldel_codec::DataRecord;
use seldel_network::{Context, NodeId, SimNode};

use crate::messages::{NodeMessage, StatusQuo};

/// A client connected to a set of anchor nodes.
#[derive(Debug)]
pub struct ClientNode {
    anchors: Vec<NodeId>,
    /// Status-quo replies keyed by the answering anchor.
    status_replies: BTreeMap<NodeId, StatusQuo>,
    /// Last query results: id → (record, live).
    query_results: BTreeMap<EntryId, (Option<DataRecord>, bool)>,
    /// Entries forwarded to anchors.
    submitted: u64,
}

impl ClientNode {
    /// Creates a client talking to the given anchors.
    pub fn new(anchors: Vec<NodeId>) -> ClientNode {
        ClientNode {
            anchors,
            status_replies: BTreeMap::new(),
            query_results: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// The anchors this client consults.
    pub fn anchors(&self) -> &[NodeId] {
        &self.anchors
    }

    /// Number of entries submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// All status-quo replies received since the last check.
    pub fn status_replies(&self) -> &BTreeMap<NodeId, StatusQuo> {
        &self.status_replies
    }

    /// The majority status quo among received replies, with its vote count.
    ///
    /// Returns `None` before any reply arrives. An eclipsed client (most of
    /// its anchors controlled or filtered by an attacker) receives a
    /// skewed majority — the eclipse experiment measures exactly this.
    pub fn majority_status(&self) -> Option<(StatusQuo, usize)> {
        let mut votes: BTreeMap<(u64, [u8; 32]), (StatusQuo, usize)> = BTreeMap::new();
        for sq in self.status_replies.values() {
            let key = (sq.tip.value(), *sq.tip_hash.as_bytes());
            let slot = votes.entry(key).or_insert((*sq, 0));
            slot.1 += 1;
        }
        votes.into_values().max_by_key(|(_, count)| *count)
    }

    /// The last answer to a query for `id`.
    pub fn query_result(&self, id: EntryId) -> Option<&(Option<DataRecord>, bool)> {
        self.query_results.get(&id)
    }
}

impl SimNode<NodeMessage> for ClientNode {
    fn on_message(&mut self, from: NodeId, msg: NodeMessage, ctx: &mut Context<'_, NodeMessage>) {
        match msg {
            // Driver commands.
            NodeMessage::ClientSubmit(entry) => {
                // Submit to the first anchor; anchors forward to the leader.
                if let Some(anchor) = self.anchors.first() {
                    ctx.send(*anchor, NodeMessage::Submit(entry));
                    self.submitted += 1;
                }
            }
            NodeMessage::ClientCheckStatus => {
                self.status_replies.clear();
                for anchor in &self.anchors {
                    ctx.send(*anchor, NodeMessage::StatusQuoRequest);
                }
            }
            NodeMessage::ClientQuery { id } => {
                if let Some(anchor) = self.anchors.first() {
                    ctx.send(*anchor, NodeMessage::Query { id });
                }
            }
            // Anchor replies.
            NodeMessage::StatusQuoReply(sq) => {
                self.status_replies.insert(from, sq);
            }
            NodeMessage::QueryReply { id, record, live } => {
                self.query_results.insert(id, (record, live));
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::AnchorNode;
    use seldel_chain::{BlockNumber, Entry, EntryNumber};
    use seldel_codec::DataRecord;
    use seldel_core::{ChainConfig, SelectiveLedger};
    use seldel_crypto::SigningKey;
    use seldel_network::{NetConfig, SimNetwork};

    fn entry(seed: u8, n: u64) -> Entry {
        Entry::sign_data(
            &SigningKey::from_seed([seed; 32]),
            DataRecord::new("login").with("user", "A").with("n", n),
        )
    }

    fn cluster_with_client() -> (SimNetwork<NodeMessage>, Vec<NodeId>, NodeId) {
        let mut net = SimNetwork::new(NetConfig::default());
        let leader = NodeId(0);
        let anchors: Vec<NodeId> = (0..3)
            .map(|_| {
                let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
                net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)))
            })
            .collect();
        for id in &anchors {
            net.schedule_tick(*id, 100);
        }
        let client = net.add_node(Box::new(ClientNode::new(anchors.clone())));
        (net, anchors, client)
    }

    #[test]
    fn client_submission_reaches_chain() {
        let (mut net, anchors, client) = cluster_with_client();
        net.send_external(client, NodeMessage::ClientSubmit(entry(1, 1)));
        net.run_until(500);
        let leader = net.node_as::<AnchorNode>(anchors[0]).unwrap();
        assert_eq!(leader.stats().entries_accepted, 1);
        assert!(leader.ledger().chain().record_count() >= 1);
        assert_eq!(net.node_as::<ClientNode>(client).unwrap().submitted(), 1);
    }

    #[test]
    fn client_majority_status_consistent() {
        let (mut net, _anchors, client) = cluster_with_client();
        net.send_external(client, NodeMessage::ClientSubmit(entry(1, 1)));
        net.run_until(400);
        net.send_external(client, NodeMessage::ClientCheckStatus);
        net.run_until(600);
        let c = net.node_as::<ClientNode>(client).unwrap();
        let (sq, votes) = c.majority_status().expect("replies arrived");
        assert_eq!(votes, 3, "all anchors agree");
        assert!(sq.tip >= BlockNumber(1));
    }

    #[test]
    fn eclipsed_client_sees_stale_majority() {
        let (mut net, anchors, client) = cluster_with_client();
        // Warm up with some traffic.
        for i in 0..4u64 {
            net.send_external(client, NodeMessage::ClientSubmit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        // Eclipse: client may only talk to anchor 2, which we also cut off
        // from the others (attacker-controlled stale view).
        net.partition(vec![vec![anchors[0], anchors[1]], vec![anchors[2], client]]);
        for i in 4..10u64 {
            net.send_external(anchors[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.send_external(client, NodeMessage::ClientCheckStatus);
        net.run_until(net.now() + 200);
        let c = net.node_as::<ClientNode>(client).unwrap();
        let (stale, votes) = c.majority_status().expect("one reply");
        assert_eq!(votes, 1, "only the eclipsing anchor answered");
        let honest_tip = net
            .node_as::<AnchorNode>(anchors[0])
            .unwrap()
            .status_quo()
            .tip;
        assert!(stale.tip < honest_tip, "eclipsed view must lag");
    }

    #[test]
    fn client_query_round_trip() {
        let (mut net, _anchors, client) = cluster_with_client();
        net.send_external(client, NodeMessage::ClientSubmit(entry(1, 1)));
        net.run_until(400);
        let id = EntryId::new(BlockNumber(1), EntryNumber(0));
        net.send_external(client, NodeMessage::ClientQuery { id });
        net.run_until(net.now() + 200);
        let c = net.node_as::<ClientNode>(client).unwrap();
        let (record, live) = c.query_result(id).expect("query answered");
        assert!(live);
        assert_eq!(
            record.as_ref().unwrap().get("user").unwrap().as_str(),
            Some("A")
        );
    }
}

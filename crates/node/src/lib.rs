//! Node layer: anchor nodes and clients over the simulated network.
//!
//! This crate assembles the distributed deployment of the paper's §V
//! prototype: anchor nodes hold full chain copies and form the quorum
//! (§IV-A); a sealing leader distributes normal blocks; **summary blocks
//! are derived locally by every anchor and never travel on the wire**
//! (§IV-B) — their hashes do, as synchronisation checks. Clients submit
//! entries and obtain the status quo from several anchors (§V-B4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod client;
pub mod messages;

pub use anchor::{AnchorNode, AnchorStats};
pub use client::ClientNode;
pub use messages::{NodeMessage, StatusQuo};

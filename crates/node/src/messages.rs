//! Wire messages between clients and anchor nodes.
//!
//! This is the message vocabulary of the paper's prototype (§V, client-
//! server over CORBA), carried here over the deterministic simulator.

use seldel_chain::{Block, BlockNumber, Entry, EntryId};
use seldel_codec::DataRecord;
use seldel_consensus::Ballot;
use seldel_core::{CompiledPolicy, DeletionPlan};
use seldel_crypto::{Digest32, VerifyingKey};

/// A node's advertised view of the chain (the "status quo" clients obtain
/// from anchor nodes, §V-B4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusQuo {
    /// The shifting genesis marker m.
    pub marker: BlockNumber,
    /// The tip block number.
    pub tip: BlockNumber,
    /// The tip block hash.
    pub tip_hash: Digest32,
}

/// Messages exchanged in the simulated deployment.
#[derive(Debug, Clone)]
pub enum NodeMessage {
    /// Client/driver → anchor: submit a signed entry (data or deletion).
    Submit(Entry),
    /// Leader anchor → replicas: a sealed normal/empty block. Summary
    /// blocks are **never** sent — every node derives them locally (§IV-B).
    NewBlock(Block),
    /// Anchor → anchors: summary-hash synchronisation check ("this
    /// information can be used to check synchronisation by comparing the
    /// hash of its summary block", §IV-B).
    SyncCheck {
        /// Summary block number.
        number: BlockNumber,
        /// Hash of the sender's locally derived summary block.
        summary_hash: Digest32,
        /// Payload commitment of that block — diverging record/tombstone
        /// sets are reported as such even when (hypothetically) the block
        /// hashes already differ for header-level reasons.
        payload_root: Digest32,
    },
    /// Anchor → anchor: request live blocks starting at `from`.
    SyncRequest {
        /// First wanted block number.
        from: BlockNumber,
    },
    /// Anchor → anchor: live blocks for adoption.
    SyncResponse {
        /// Contiguous live blocks, oldest first.
        blocks: Vec<Block>,
    },
    /// Client → anchor: ask for the current status quo.
    StatusQuoRequest,
    /// Anchor → client: status quo reply.
    StatusQuoReply(StatusQuo),
    /// Quorum ballot (deletion approval / marker shift / chain adoption).
    Vote(Ballot),
    /// Client → anchor: look up a data set.
    Query {
        /// The data set id.
        id: EntryId,
    },
    /// Anchor → client: lookup result.
    QueryReply {
        /// The queried id.
        id: EntryId,
        /// The record, when physically present.
        record: Option<DataRecord>,
        /// Whether the record is live (present and not deletion-marked).
        live: bool,
    },
    /// Client → anchor: dry-run a deletion policy — evaluate the selector
    /// and the full per-id authorisation ladder as `requester`, applying
    /// nothing. Any anchor can serve this (it is a pure read); the reply
    /// reports what a bulk erasure *would* do.
    PolicyPlanRequest {
        /// Whose authority the per-id validation ladder runs under.
        requester: VerifyingKey,
        /// The compiled policy to evaluate.
        policy: CompiledPolicy,
    },
    /// Anchor → client: the dry-run audit report.
    PolicyPlanReply {
        /// Matched ids, bytes, per-tenant rollups and blocked hits.
        plan: DeletionPlan,
    },
    /// Driver → client: forward an entry to the client's anchors.
    ClientSubmit(Entry),
    /// Driver → client: consult all configured anchors for a status quo.
    ClientCheckStatus,
    /// Driver → client: query a record through the client's first anchor.
    ClientQuery {
        /// The data set id.
        id: EntryId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let msg = NodeMessage::SyncRequest {
            from: BlockNumber(4),
        };
        let cloned = msg.clone();
        assert!(format!("{cloned:?}").contains("SyncRequest"));
    }
}
